//! Key distributions: uniform and Zipfian.
//!
//! The Zipfian generator uses the rejection-inversion method of
//! Hörmann & Derflinger ("Rejection-inversion to generate variates from
//! monotone discrete distributions", 1996) — the same algorithm used by
//! YCSB and `rand_distr` — so it supports large key spaces (10⁶+) without
//! precomputing a CDF table.

use rand::Rng;

/// A key distribution over `[0, n)`.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian over the key space (popular keys get most traffic).
    Zipfian(Zipf),
}

impl KeyDist {
    /// Uniform distribution over `[0, n)`.
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0);
        KeyDist::Uniform { n }
    }

    /// Zipfian distribution over `[0, n)` with exponent `theta`
    /// (typically 0.99, YCSB's default).
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipf::new(n, theta))
    }

    /// Key-space size.
    pub fn key_space(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipfian(z) => z.n,
        }
    }

    /// Draw a key.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian(z) => z.sample(rng),
        }
    }
}

/// Zipfian sampler (rejection-inversion, Hörmann & Derflinger 1996).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Number of elements.
    pub n: u64,
    /// Exponent (s > 0, s != 1 handled; s == 1 uses the harmonic case).
    s: f64,
    // Precomputed constants.
    h_x1: f64,
    h_half: f64,
    dd: f64,
}

impl Zipf {
    /// Create a sampler over `[0, n)` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(s > 0.0, "exponent must be positive");
        let nf = n as f64;
        let h_x1 = Self::h(1.5, s) - 1.0;
        let h_half = Self::h(0.5, s);
        let dd = Self::h(nf + 0.5, s) - h_half;
        Zipf {
            n,
            s,
            h_x1,
            h_half,
            dd,
        }
    }

    /// H(x) = integral of x^-s  (antiderivative, branch for s == 1).
    #[inline]
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            x.powf(1.0 - s) / (1.0 - s)
        }
    }

    /// Inverse of H.
    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            ((1.0 - self.s) * x).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw a rank in `[0, n)` (0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_half + rng.gen::<f64>() * self.dd;
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0);
            let k = (k as u64).min(self.n);
            // Acceptance test.
            if u >= Self::h(k as f64 + 0.5, self.s) - (k as f64).powf(-self.s)
                || k == 1 && u >= self.h_x1
            {
                return k - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_space() {
        let d = KeyDist::uniform(100);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 95);
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let d = KeyDist::zipfian(1_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        let samples = 50_000;
        for _ in 0..samples {
            let k = d.sample(&mut rng);
            assert!(k < 1_000);
            if k < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 keys should draw a large
        // share of traffic (~45% theoretically); be generous.
        assert!(
            head as f64 > samples as f64 * 0.25,
            "zipf not skewed enough: head={head}"
        );
    }

    #[test]
    fn zipf_theta_one_harmonic_branch() {
        let d = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert!(d.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_small_spaces() {
        for n in [1u64, 2, 3] {
            let d = Zipf::new(n, 0.8);
            let mut rng = SmallRng::seed_from_u64(9);
            for _ in 0..1_000 {
                assert!(d.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let d = Zipf::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 50];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        // Monotone on a coarse scale: rank 0 >> rank 10 >> rank 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }
}
