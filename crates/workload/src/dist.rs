//! Key distributions: uniform, Zipfian (rank-ordered and scrambled) and
//! sequential.
//!
//! The Zipfian generator uses the rejection-inversion method of
//! Hörmann & Derflinger ("Rejection-inversion to generate variates from
//! monotone discrete distributions", 1996) — the same algorithm used by
//! YCSB and `rand_distr` — so it supports large key spaces (10⁶+) without
//! precomputing a CDF table.
//!
//! Rank-ordered Zipf has a measurement trap: the hottest keys are
//! `0, 1, 2, …`, i.e. they all cluster at the bottom of the key space.
//! Any structure that partitions by key range (the sharded front-end's
//! `RangePrefixPartitioner` routes 4096-key blocks) then melts exactly
//! one partition *by accident of rank labelling*, not because the
//! workload is inherently that adversarial. [`ScrambledZipf`] keeps the
//! Zipfian frequency *curve* but decorrelates rank from key via a
//! splitmix64 bijection (YCSB's `ScrambledZipfianGenerator` does the
//! same with FNV), so hot keys disperse across the whole space.
//! [`Sequential`] covers the other end: a globally ordered append
//! pattern (timeseries ingest), the worst case for an unbalanced BST
//! and the best case for a range partitioner.

use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::seed::splitmix64;

/// A key distribution over `[0, n)`.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian over the key space (popular keys get most traffic; the
    /// hottest keys are the *smallest* keys).
    Zipfian(Zipf),
    /// Zipfian frequencies with the rank→key mapping scrambled by a
    /// splitmix64 bijection: same skew, hot keys dispersed over the
    /// whole key space.
    ScrambledZipfian(ScrambledZipf),
    /// Sequential: `0, 1, 2, … (mod n)`, globally ordered across every
    /// clone (all workers share one cursor).
    Sequential(Sequential),
}

impl KeyDist {
    /// Uniform distribution over `[0, n)`.
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0);
        KeyDist::Uniform { n }
    }

    /// Zipfian distribution over `[0, n)` with exponent `theta`
    /// (typically 0.99, YCSB's default).
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipf::new(n, theta))
    }

    /// Scrambled-Zipfian distribution over `[0, n)` with exponent
    /// `theta`: Zipfian traffic shares, hot keys spread across the key
    /// space instead of clustering at 0.
    pub fn scrambled_zipfian(n: u64, theta: f64) -> Self {
        KeyDist::ScrambledZipfian(ScrambledZipf::new(n, theta))
    }

    /// Sequential distribution over `[0, n)`: one shared monotone
    /// cursor, wrapping at `n`.
    pub fn sequential(n: u64) -> Self {
        assert!(n > 0);
        KeyDist::Sequential(Sequential::new(n))
    }

    /// Key-space size.
    pub fn key_space(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipfian(z) => z.n,
            KeyDist::ScrambledZipfian(z) => z.zipf.n,
            KeyDist::Sequential(s) => s.n,
        }
    }

    /// Draw a key.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian(z) => z.sample(rng),
            KeyDist::ScrambledZipfian(z) => z.sample(rng),
            KeyDist::Sequential(s) => s.next(),
        }
    }
}

/// Zipfian frequencies with ranks scrambled across the key space.
///
/// A rank `r` drawn from the underlying [`Zipf`] is mapped to key
/// `splitmix64(r) mod n`. The finalizer is a bijection on `u64`, so
/// distinct ranks collide on a key only through the final modulo —
/// with the same (vanishing, for n ≪ 2⁶⁴) probability as YCSB's
/// FNV-based scrambling. Traffic shares per *rank* are exactly
/// Zipfian; per *key* they match up to those rare collisions, with the
/// hot ranks landing at effectively uniform positions.
#[derive(Clone, Debug)]
pub struct ScrambledZipf {
    zipf: Zipf,
}

impl ScrambledZipf {
    /// Create a sampler over `[0, n)` with exponent `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipf {
            zipf: Zipf::new(n, theta),
        }
    }

    /// The key that rank `r` (0 = hottest) scrambles to.
    #[inline]
    pub fn key_of_rank(&self, r: u64) -> u64 {
        splitmix64(r) % self.zipf.n
    }

    /// Draw a key.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        self.key_of_rank(self.zipf.sample(rng))
    }
}

/// A shared monotone cursor over `[0, n)`: every [`KeyDist::sample`]
/// returns the next key in order, wrapping at `n`. Clones share the
/// cursor (one global sequence across all worker threads), which is the
/// point: it models ordered ingest, not per-thread stripes.
#[derive(Clone, Debug)]
pub struct Sequential {
    n: u64,
    next: Arc<AtomicU64>,
}

impl Sequential {
    /// New cursor starting at key 0.
    pub fn new(n: u64) -> Self {
        Sequential {
            n,
            next: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Claim the next key.
    #[inline]
    pub fn next(&self) -> u64 {
        // Relaxed: the counter is its own synchronization domain; only
        // uniqueness-mod-wrap matters, not ordering against the map ops.
        self.next.fetch_add(1, Ordering::Relaxed) % self.n
    }
}

/// Zipfian sampler (rejection-inversion, Hörmann & Derflinger 1996).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Number of elements.
    pub n: u64,
    /// Exponent (s > 0, s != 1 handled; s == 1 uses the harmonic case).
    s: f64,
    // Precomputed constants.
    h_x1: f64,
    h_half: f64,
    dd: f64,
}

impl Zipf {
    /// Create a sampler over `[0, n)` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(s > 0.0, "exponent must be positive");
        let nf = n as f64;
        let h_x1 = Self::h(1.5, s) - 1.0;
        let h_half = Self::h(0.5, s);
        let dd = Self::h(nf + 0.5, s) - h_half;
        Zipf {
            n,
            s,
            h_x1,
            h_half,
            dd,
        }
    }

    /// H(x) = integral of x^-s  (antiderivative, branch for s == 1).
    #[inline]
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            x.powf(1.0 - s) / (1.0 - s)
        }
    }

    /// Inverse of H.
    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            ((1.0 - self.s) * x).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw a rank in `[0, n)` (0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_half + rng.gen::<f64>() * self.dd;
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0);
            let k = (k as u64).min(self.n);
            // Acceptance test.
            if u >= Self::h(k as f64 + 0.5, self.s) - (k as f64).powf(-self.s)
                || k == 1 && u >= self.h_x1
            {
                return k - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_space() {
        let d = KeyDist::uniform(100);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 95);
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let d = KeyDist::zipfian(1_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        let samples = 50_000;
        for _ in 0..samples {
            let k = d.sample(&mut rng);
            assert!(k < 1_000);
            if k < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 keys should draw a large
        // share of traffic (~45% theoretically); be generous.
        assert!(
            head as f64 > samples as f64 * 0.25,
            "zipf not skewed enough: head={head}"
        );
    }

    #[test]
    fn zipf_theta_one_harmonic_branch() {
        let d = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert!(d.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_small_spaces() {
        for n in [1u64, 2, 3] {
            let d = Zipf::new(n, 0.8);
            let mut rng = SmallRng::seed_from_u64(9);
            for _ in 0..1_000 {
                assert!(d.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn scrambled_zipf_matches_rank_zipf_frequency_curve() {
        // Same n/theta: the sorted frequency curves must agree (the
        // scramble permutes labels, it does not change shares), while
        // the hot *keys* must stop clustering at the bottom of the
        // space.
        let n = 32_768u64; // 8 blocks of the sharded partitioner's 4096
        let theta = 0.99;
        let rank = KeyDist::zipfian(n, theta);
        let scram = KeyDist::scrambled_zipfian(n, theta);
        let samples = 200_000usize;

        let count = |d: &KeyDist, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut c = std::collections::HashMap::<u64, u64>::new();
            for _ in 0..samples {
                *c.entry(d.sample(&mut rng)).or_insert(0) += 1;
            }
            let mut freqs: Vec<(u64, u64)> = c.into_iter().map(|(k, v)| (v, k)).collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a)); // hottest first
            freqs
        };
        let rank_freqs = count(&rank, 21);
        let scram_freqs = count(&scram, 21);

        // Top-1 and top-10 traffic shares agree within a few points.
        let share = |f: &[(u64, u64)], k: usize| {
            f.iter().take(k).map(|(c, _)| *c).sum::<u64>() as f64 / samples as f64
        };
        assert!(
            (share(&rank_freqs, 1) - share(&scram_freqs, 1)).abs() < 0.03,
            "top-1 share diverged: {} vs {}",
            share(&rank_freqs, 1),
            share(&scram_freqs, 1)
        );
        assert!(
            (share(&rank_freqs, 10) - share(&scram_freqs, 10)).abs() < 0.03,
            "top-10 share diverged"
        );

        // Rank-Zipf's 8 hottest keys all live in the first 4096-key
        // block; the scrambled hot keys must spread over several blocks.
        let block = |k: u64| k / 4_096;
        let rank_blocks: std::collections::HashSet<u64> =
            rank_freqs.iter().take(8).map(|&(_, k)| block(k)).collect();
        assert_eq!(
            rank_blocks.len(),
            1,
            "rank-zipf hot keys cluster (the trap)"
        );
        let scram_blocks: std::collections::HashSet<u64> =
            scram_freqs.iter().take(8).map(|&(_, k)| block(k)).collect();
        assert!(
            scram_blocks.len() >= 4,
            "scrambled hot keys still clustered: blocks {scram_blocks:?}"
        );
    }

    #[test]
    fn scrambled_zipf_stays_in_range() {
        let d = ScrambledZipf::new(1_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 1_000);
        }
        // The rank→key map is deterministic.
        assert_eq!(d.key_of_rank(0), d.key_of_rank(0));
    }

    #[test]
    fn sequential_is_ordered_and_wraps() {
        let d = KeyDist::sequential(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let got: Vec<u64> = (0..12).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn sequential_clones_share_the_cursor() {
        let d = KeyDist::sequential(1_000);
        let d2 = d.clone();
        let mut rng = SmallRng::seed_from_u64(1);
        let a = d.sample(&mut rng);
        let b = d2.sample(&mut rng);
        let c = d.sample(&mut rng);
        assert_eq!(vec![a, b, c], vec![0, 1, 2], "one global sequence");
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let d = Zipf::new(50, 1.2);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 50];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        // Monotone on a coarse scale: rank 0 >> rank 10 >> rank 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }
}
