//! Operation mixes: the workload axes of the paper's evaluation
//! (update-heavy, search-dominated, range-query blends).

use rand::Rng;

/// One operation drawn from a [`Mix`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert a key.
    Insert,
    /// Delete a key.
    Delete,
    /// Point lookup.
    Find,
    /// Range query of the mix's width.
    RangeScan,
}

/// An operation mix in percent, plus the range-query width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Percent inserts.
    pub insert: u32,
    /// Percent deletes.
    pub delete: u32,
    /// Percent point lookups.
    pub find: u32,
    /// Percent range queries.
    pub range: u32,
    /// Width of each range query (number of keys spanned).
    pub range_width: u64,
}

impl Mix {
    /// Build a mix; the four percentages must sum to 100.
    pub fn new(insert: u32, delete: u32, find: u32, range: u32, range_width: u64) -> Self {
        assert_eq!(
            insert + delete + find + range,
            100,
            "mix percentages must sum to 100"
        );
        Mix {
            insert,
            delete,
            find,
            range,
            range_width,
        }
    }

    /// E1: update-only, 50% insert / 50% delete.
    pub fn update_only() -> Self {
        Mix::new(50, 50, 0, 0, 0)
    }

    /// E2: search-dominated, 10/10/80.
    pub fn read_mostly() -> Self {
        Mix::new(10, 10, 80, 0, 0)
    }

    /// E3: mixed with range queries, 25/25/40/10.
    pub fn with_ranges(range_width: u64) -> Self {
        Mix::new(25, 25, 40, 10, range_width)
    }

    /// Balanced updates with heavy scanning (E4 sweeps `range_width`).
    pub fn scan_heavy(range_width: u64) -> Self {
        Mix::new(10, 10, 30, 50, range_width)
    }

    /// Whether this mix issues range queries.
    pub fn uses_ranges(&self) -> bool {
        self.range > 0
    }

    /// Draw the next operation.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Op {
        let x = rng.gen_range(0..100u32);
        if x < self.insert {
            Op::Insert
        } else if x < self.insert + self.delete {
            Op::Delete
        } else if x < self.insert + self.delete + self.find {
            Op::Find
        } else {
            Op::RangeScan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn presets_sum_to_100() {
        for m in [
            Mix::update_only(),
            Mix::read_mostly(),
            Mix::with_ranges(100),
            Mix::scan_heavy(1000),
        ] {
            assert_eq!(m.insert + m.delete + m.find + m.range, 100);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 50, 10, 0, 0);
    }

    #[test]
    fn sample_frequencies_roughly_match() {
        let m = Mix::new(20, 30, 40, 10, 64);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            match m.sample(&mut rng) {
                Op::Insert => counts[0] += 1,
                Op::Delete => counts[1] += 1,
                Op::Find => counts[2] += 1,
                Op::RangeScan => counts[3] += 1,
            }
        }
        let pct = |c: usize| c as f64 / n as f64 * 100.0;
        assert!((pct(counts[0]) - 20.0).abs() < 1.5);
        assert!((pct(counts[1]) - 30.0).abs() < 1.5);
        assert!((pct(counts[2]) - 40.0).abs() < 1.5);
        assert!((pct(counts[3]) - 10.0).abs() < 1.5);
    }

    #[test]
    fn update_only_never_scans() {
        let m = Mix::update_only();
        assert!(!m.uses_ranges());
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert_ne!(m.sample(&mut rng), Op::RangeScan);
            assert_ne!(m.sample(&mut rng), Op::Find);
        }
    }
}
