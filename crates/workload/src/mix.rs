//! Operation mixes: the workload axes of the paper's evaluation
//! (update-heavy, search-dominated, range-query blends).

use rand::Rng;

/// One operation drawn from a [`Mix`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert a key.
    Insert,
    /// Atomic insert-or-replace.
    Upsert,
    /// Delete a key.
    Delete,
    /// Point lookup.
    Find,
    /// Range query of the mix's width.
    RangeScan,
}

/// An operation mix in percent, plus the range-query width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Percent inserts.
    pub insert: u32,
    /// Percent atomic upserts.
    pub upsert: u32,
    /// Percent deletes.
    pub delete: u32,
    /// Percent point lookups.
    pub find: u32,
    /// Percent range queries.
    pub range: u32,
    /// Width of each range query (number of keys spanned).
    pub range_width: u64,
}

impl Mix {
    /// Build a mix without upserts; the four percentages must sum
    /// to 100.
    pub fn new(insert: u32, delete: u32, find: u32, range: u32, range_width: u64) -> Self {
        Self::with_upserts(insert, 0, delete, find, range, range_width)
    }

    /// Build a mix including atomic upserts; the five percentages must
    /// sum to 100. Structures driven with `upsert > 0` must declare the
    /// upsert capability or the drivers reject the configuration.
    pub fn with_upserts(
        insert: u32,
        upsert: u32,
        delete: u32,
        find: u32,
        range: u32,
        range_width: u64,
    ) -> Self {
        assert_eq!(
            insert + upsert + delete + find + range,
            100,
            "mix percentages must sum to 100"
        );
        Mix {
            insert,
            upsert,
            delete,
            find,
            range,
            range_width,
        }
    }

    /// E1: update-only, 50% insert / 50% delete.
    pub fn update_only() -> Self {
        Mix::new(50, 50, 0, 0, 0)
    }

    /// E2: search-dominated, 10/10/80.
    pub fn read_mostly() -> Self {
        Mix::new(10, 10, 80, 0, 0)
    }

    /// E3: mixed with range queries, 25/25/40/10.
    pub fn with_ranges(range_width: u64) -> Self {
        Mix::new(25, 25, 40, 10, range_width)
    }

    /// Balanced updates with heavy scanning (E4 sweeps `range_width`).
    pub fn scan_heavy(range_width: u64) -> Self {
        Mix::new(10, 10, 30, 50, range_width)
    }

    /// Write-heavy key-value service mix: upserts instead of
    /// set-semantics inserts (25u/25d/50f).
    pub fn upsert_heavy() -> Self {
        Mix::with_upserts(0, 25, 25, 50, 0, 0)
    }

    /// Whether this mix issues range queries.
    pub fn uses_ranges(&self) -> bool {
        self.range > 0
    }

    /// Whether this mix issues atomic upserts.
    pub fn uses_upserts(&self) -> bool {
        self.upsert > 0
    }

    /// Draw the next operation.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Op {
        let x = rng.gen_range(0..100u32);
        if x < self.insert {
            Op::Insert
        } else if x < self.insert + self.upsert {
            Op::Upsert
        } else if x < self.insert + self.upsert + self.delete {
            Op::Delete
        } else if x < self.insert + self.upsert + self.delete + self.find {
            Op::Find
        } else {
            Op::RangeScan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn presets_sum_to_100() {
        for m in [
            Mix::update_only(),
            Mix::read_mostly(),
            Mix::with_ranges(100),
            Mix::scan_heavy(1000),
        ] {
            assert_eq!(m.insert + m.upsert + m.delete + m.find + m.range, 100);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 50, 10, 0, 0);
    }

    #[test]
    fn sample_frequencies_roughly_match() {
        let m = Mix::with_upserts(15, 5, 30, 40, 10, 64);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            match m.sample(&mut rng) {
                Op::Insert => counts[0] += 1,
                Op::Upsert => counts[1] += 1,
                Op::Delete => counts[2] += 1,
                Op::Find => counts[3] += 1,
                Op::RangeScan => counts[4] += 1,
            }
        }
        let pct = |c: usize| c as f64 / n as f64 * 100.0;
        assert!((pct(counts[0]) - 15.0).abs() < 1.5);
        assert!((pct(counts[1]) - 5.0).abs() < 1.5);
        assert!((pct(counts[2]) - 30.0).abs() < 1.5);
        assert!((pct(counts[3]) - 40.0).abs() < 1.5);
        assert!((pct(counts[4]) - 10.0).abs() < 1.5);
    }

    #[test]
    fn upsert_preset_uses_upserts() {
        let m = Mix::upsert_heavy();
        assert!(m.uses_upserts());
        assert!(!m.uses_ranges());
        let mut rng = SmallRng::seed_from_u64(11);
        let mut saw_upsert = false;
        for _ in 0..1_000 {
            let op = m.sample(&mut rng);
            assert_ne!(op, Op::Insert);
            assert_ne!(op, Op::RangeScan);
            saw_upsert |= op == Op::Upsert;
        }
        assert!(saw_upsert);
    }

    #[test]
    fn update_only_never_scans() {
        let m = Mix::update_only();
        assert!(!m.uses_ranges());
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert_ne!(m.sample(&mut rng), Op::RangeScan);
            assert_ne!(m.sample(&mut rng), Op::Find);
        }
    }
}
