//! Minimal JSON emission for the measurement binaries (the experiments
//! sweep and the `pnb-load` network driver).
//!
//! The vendored `serde` is an API-stub (no `serde_json` exists in the
//! offline workspace), so the `--json` trajectory file is emitted by
//! this tiny, dependency-free writer. The schema is flat on purpose —
//! one object per measurement row, all rows in a single `results` array
//! — so CI can diff/plot `BENCH_*.json` files across PRs with `jq`
//! one-liners. It lives in `workload` (not the bench crate) so every
//! driver that measures — in-process or over the wire — emits the same
//! trajectory schema.

/// A JSON scalar value.
#[derive(Clone, Debug)]
pub enum Val {
    /// Unsigned integer.
    U(u64),
    /// Float (non-finite values are clamped to `0` to stay valid JSON).
    F(f64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

impl Val {
    /// Convenience string constructor.
    pub fn s(v: &str) -> Val {
        Val::S(v.to_string())
    }

    fn render(&self) -> String {
        match self {
            Val::U(u) => u.to_string(),
            Val::F(f) if f.is_finite() => {
                // `{}` on f64 always produces a valid JSON number for
                // finite values (no exponent-less NaN/inf forms).
                format!("{f}")
            }
            Val::F(_) => "0".to_string(),
            Val::S(s) => format!("\"{}\"", escape(s)),
            Val::B(b) => b.to_string(),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Accumulator for machine-readable experiment rows.
#[derive(Default, Debug)]
pub struct JsonLog {
    rows: Vec<String>,
}

impl JsonLog {
    /// Empty log.
    pub fn new() -> Self {
        JsonLog::default()
    }

    /// Append one row for `experiment` with the given fields.
    pub fn push(&mut self, experiment: &str, fields: &[(&str, Val)]) {
        let mut row = format!("{{\"experiment\": \"{}\"", escape(experiment));
        for (k, v) in fields {
            row.push_str(&format!(", \"{}\": {}", escape(k), v.render()));
        }
        row.push('}');
        self.rows.push(row);
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether any rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the whole log as a pretty-enough JSON document.
    pub fn render(&self, mode: &str, hardware_threads: usize) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", escape(mode)));
        out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
        out.push_str("  \"results\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_as_flat_objects() {
        let mut log = JsonLog::new();
        log.push(
            "e1",
            &[
                ("structure", Val::s("pnb-bst")),
                ("threads", Val::U(4)),
                ("ops_per_sec", Val::F(1234.5)),
                ("disjoint", Val::B(true)),
            ],
        );
        let doc = log.render("quick", 8);
        assert!(doc.contains("\"mode\": \"quick\""));
        assert!(doc.contains("\"hardware_threads\": 8"));
        assert!(doc.contains(
            "{\"experiment\": \"e1\", \"structure\": \"pnb-bst\", \
             \"threads\": 4, \"ops_per_sec\": 1234.5, \"disjoint\": true}"
        ));
    }

    #[test]
    fn escaping_and_nonfinite_floats() {
        let mut log = JsonLog::new();
        log.push(
            "x",
            &[
                ("s", Val::s("a\"b\\c\nd")),
                ("inf", Val::F(f64::INFINITY)),
                ("nan", Val::F(f64::NAN)),
            ],
        );
        let doc = log.render("full", 1);
        assert!(doc.contains("\"s\": \"a\\\"b\\\\c\\nd\""));
        assert!(doc.contains("\"inf\": 0"));
        assert!(doc.contains("\"nan\": 0"));
    }

    #[test]
    fn empty_log_is_valid() {
        let log = JsonLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        let doc = log.render("quick", 2);
        assert!(doc.contains("\"results\": [\n  ]"));
    }
}
