//! Batched closed-loop throughput driver (experiment E13's engine).
//!
//! [`run_batched_throughput`] is [`run_throughput`](crate::run_throughput)
//! with the inner loop replaced by [`MapSession::apply_batch`] calls of
//! a fixed batch size: each worker draws `batch_size` operations from
//! the mix, submits them as one batch, and records the batch call
//! latency. Batch size 1 through this driver *is* the singleton
//! baseline — identical timing and refresh cadence — so a sweep over
//! batch sizes isolates exactly the descent-sharing and amortization
//! effects.
//!
//! The figure of merit is [`BatchedMeasurement::ops_per_descent`]: how
//! many operations each root-to-leaf descent served (1.0 for the
//! singleton fallback, > 1 when prefix sharing engages).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::dist::KeyDist;
use crate::histogram::HdrHistogram;
use crate::mix::{Mix, Op};
use crate::runner::prefill;
use crate::seed;
use crate::{CapabilityError, ConcurrentMap, MapSession};

/// One operation of a batch, in the harness's uniform `u64` key/value
/// domain (mirrors `pnb_bst::BatchOp`, which adapters convert to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Lookup.
    Get(u64),
    /// Insert without replacement (set semantics).
    Insert(u64, u64),
    /// Atomic insert-or-replace.
    Upsert(u64, u64),
    /// Remove.
    Delete(u64),
}

/// What a batch cost: operation count and root-to-leaf descents
/// (mirrors `pnb_bst::BatchReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Operations executed.
    pub ops: u64,
    /// Root-to-leaf descents performed (≤ `ops` when prefix sharing
    /// engages; == `ops` for the singleton fallback).
    pub root_descents: u64,
}

impl BatchReport {
    /// Operations served per descent (the E13 figure of merit).
    pub fn ops_per_descent(&self) -> f64 {
        if self.root_descents == 0 {
            0.0
        } else {
            self.ops as f64 / self.root_descents as f64
        }
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: BatchReport) {
        self.ops += other.ops;
        self.root_descents += other.root_descents;
    }
}

/// Configuration for one batched throughput run.
#[derive(Clone, Debug)]
pub struct BatchedRunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Key distribution (also defines the key space).
    pub key_dist: KeyDist,
    /// Operation mix (must be range-free: a range scan is not a batch
    /// op).
    pub mix: Mix,
    /// Operations per `apply_batch` call (1 = singleton baseline).
    pub batch_size: usize,
    /// Fraction of the key space inserted before measurement.
    pub prefill_fraction: f64,
    /// Base RNG seed (per-thread streams via [`seed::worker_seed`]).
    pub seed: u64,
}

impl BatchedRunConfig {
    /// Conventional defaults: prefill 50%, seed 42.
    pub fn new(
        threads: usize,
        duration: Duration,
        key_dist: KeyDist,
        mix: Mix,
        batch_size: usize,
    ) -> Self {
        BatchedRunConfig {
            threads,
            duration,
            key_dist,
            mix,
            batch_size: batch_size.max(1),
            prefill_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Result of one batched throughput run.
#[derive(Clone, Debug, Serialize)]
pub struct BatchedMeasurement {
    /// Structure name.
    pub name: String,
    /// Worker thread count.
    pub threads: usize,
    /// Operations per batch call.
    pub batch_size: usize,
    /// Measured wall-clock seconds (mean per-thread window).
    pub elapsed_secs: f64,
    /// Batch calls completed.
    pub batches: u64,
    /// Total operations completed.
    pub total_ops: u64,
    /// Root-to-leaf descents performed.
    pub root_descents: u64,
    /// Operations per descent (1.0 = no sharing; the E13 figure of
    /// merit).
    pub ops_per_descent: f64,
    /// Aggregate throughput in operations (not batches) per second.
    pub ops_per_sec: f64,
    /// Median per-batch call latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-batch call latency in nanoseconds.
    pub p99_ns: u64,
}

/// Run the timed batched workload; returns counts, descent telemetry
/// and per-batch latency percentiles.
///
/// The mix must be range-free (a range scan is not a batch operation)
/// and is checked against the structure's capabilities up front, like
/// every driver in this crate.
pub fn run_batched_throughput<M: ConcurrentMap>(
    map: &M,
    cfg: &BatchedRunConfig,
) -> Result<BatchedMeasurement, CapabilityError> {
    map.capabilities().check(&cfg.mix, map.name())?;
    if cfg.mix.uses_ranges() {
        // Reuse the typed error: the batched driver cannot drive range
        // scans on any structure.
        return Err(CapabilityError::RangeScan {
            structure: map.name(),
        });
    }
    let batch = cfg.batch_size.max(1);
    let key_space = cfg.key_dist.key_space();
    prefill(map, key_space, cfg.prefill_fraction, cfg.seed);

    let stop = AtomicBool::new(false);
    let start_line = std::sync::Barrier::new(cfg.threads + 1);
    // Keep the refresh/stop-flag cadence at ~64 ops regardless of batch
    // size, mirroring the singleton driver.
    let batches_per_check = (64 / batch).max(1);

    let totals: Vec<(u64, BatchReport, HdrHistogram, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let stop = &stop;
                let start_line = &start_line;
                let mix = cfg.mix;
                let dist = cfg.key_dist.clone();
                let wseed = seed::worker_seed(cfg.seed, tid as u64);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut session = map.pin();
                    let mut ops_buf: Vec<BatchOp> = Vec::with_capacity(batch);
                    let mut report = BatchReport::default();
                    let mut hist = HdrHistogram::new();
                    let mut batches = 0u64;
                    start_line.wait();
                    let t0 = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..batches_per_check {
                            ops_buf.clear();
                            for _ in 0..batch {
                                let k = dist.sample(&mut rng);
                                ops_buf.push(match mix.sample(&mut rng) {
                                    Op::Insert => BatchOp::Insert(k, k),
                                    Op::Upsert => BatchOp::Upsert(k, k),
                                    Op::Delete => BatchOp::Delete(k),
                                    Op::Find => BatchOp::Get(k),
                                    Op::RangeScan => unreachable!("range-free mix enforced"),
                                });
                            }
                            let b0 = Instant::now();
                            let r = session.apply_batch(&ops_buf);
                            hist.record_duration(b0.elapsed());
                            report.merge(r);
                            batches += 1;
                        }
                        session.refresh();
                    }
                    (batches, report, hist, t0.elapsed())
                })
            })
            .collect();

        start_line.wait();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut report = BatchReport::default();
    let mut hist = HdrHistogram::new();
    let mut batches = 0u64;
    let mut rate = 0.0;
    for (b, r, h, dt) in &totals {
        batches += b;
        report.merge(*r);
        hist.merge(h);
        rate += r.ops as f64 / dt.as_secs_f64();
    }
    let elapsed =
        totals.iter().map(|(.., dt)| dt.as_secs_f64()).sum::<f64>() / totals.len().max(1) as f64;
    Ok(BatchedMeasurement {
        name: map.name().to_string(),
        threads: cfg.threads,
        batch_size: batch,
        elapsed_secs: elapsed,
        batches,
        total_ops: report.ops,
        root_descents: report.root_descents,
        ops_per_descent: report.ops_per_descent(),
        ops_per_sec: rate,
        p50_ns: hist.value_at_percentile(50.0).unwrap_or(0),
        p99_ns: hist.value_at_percentile(99.0).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Caps;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct LockedMap(Mutex<BTreeMap<u64, u64>>);
    struct LockedSession<'a>(&'a LockedMap);

    impl MapSession for LockedSession<'_> {
        fn insert(&mut self, k: u64, v: u64) -> bool {
            let mut m = self.0 .0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(k) {
                e.insert(v);
                true
            } else {
                false
            }
        }
        fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.0 .0.lock().unwrap().insert(k, v)
        }
        fn delete(&mut self, k: &u64) -> bool {
            self.0 .0.lock().unwrap().remove(k).is_some()
        }
        fn get(&mut self, k: &u64) -> Option<u64> {
            self.0 .0.lock().unwrap().get(k).copied()
        }
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
            self.0 .0.lock().unwrap().range(*lo..=*hi).count()
        }
    }

    impl ConcurrentMap for LockedMap {
        type Session<'a> = LockedSession<'a>;
        fn pin(&self) -> LockedSession<'_> {
            LockedSession(self)
        }
        fn capabilities(&self) -> Caps {
            Caps {
                range_scan: true,
                upsert: true,
                snapshot: false,
                batched: false, // exercises the singleton fallback
            }
        }
        fn name(&self) -> &'static str {
            "locked-btreemap"
        }
    }

    #[test]
    fn default_apply_batch_falls_back_to_singletons() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let mut s = m.pin();
        let r = s.apply_batch(&[
            BatchOp::Insert(1, 10),
            BatchOp::Upsert(1, 11),
            BatchOp::Get(1),
            BatchOp::Delete(1),
        ]);
        assert_eq!(r.ops, 4);
        assert_eq!(r.root_descents, 4);
        assert!((r.ops_per_descent() - 1.0).abs() < f64::EPSILON);
        assert!(m.0.lock().unwrap().is_empty());
    }

    #[test]
    fn batched_driver_counts_and_times() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = BatchedRunConfig::new(
            2,
            Duration::from_millis(80),
            KeyDist::uniform(1_000),
            Mix::update_only(),
            16,
        );
        let meas = run_batched_throughput(&m, &cfg).expect("range-free update mix");
        assert_eq!(meas.batch_size, 16);
        assert!(meas.batches > 0);
        assert_eq!(meas.total_ops, meas.batches * 16);
        assert_eq!(meas.root_descents, meas.total_ops); // fallback: 1 op/descent
        assert!((meas.ops_per_descent - 1.0).abs() < f64::EPSILON);
        assert!(meas.ops_per_sec > 0.0);
        assert!(meas.p99_ns >= meas.p50_ns);
        assert!(meas.p50_ns > 0);
    }

    #[test]
    fn batched_driver_rejects_range_mixes() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = BatchedRunConfig::new(
            1,
            Duration::from_millis(10),
            KeyDist::uniform(64),
            Mix::with_ranges(8),
            4,
        );
        assert!(run_batched_throughput(&m, &cfg).is_err());
    }
}
