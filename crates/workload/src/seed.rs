//! One seed spawner for every driver.
//!
//! The drivers used to derive per-thread RNG seeds ad hoc — `run_latency`
//! used `seed + 17*(tid+1)`, `run_throughput`/`run_fixed_ops` used
//! `seed + tid + 1`, and prefill reused the base seed unchanged. Three
//! consequences, all bad for reproducibility:
//!
//! * "same seed" meant a *different* operation stream per driver, so a
//!   latency run and a throughput run with `seed = 42` exercised
//!   different keys;
//! * adjacent base seeds produced *overlapping* worker streams
//!   (`seed = 42, tid = 1` collided with `seed = 43, tid = 0`);
//! * a worker's stream could alias the prefill stream exactly.
//!
//! Every driver now derives seeds through [`worker_seed`]: a
//! splitmix64-style finalizer over `base ⊕ (stream+1)·γ`, where γ is the
//! 64-bit golden-ratio constant. Distinct `(base, stream)` pairs map to
//! effectively independent seeds (the finalizer is a bijection with full
//! avalanche), and the prefill stream id is reserved out of the worker
//! id range.

/// 64-bit golden-ratio constant (2⁶⁴/φ), the splitmix64 stream
/// increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Reserved stream id for the prefill pass, far outside any plausible
/// worker thread id, so worker streams can never alias the prefill
/// stream.
pub const PREFILL_STREAM: u64 = u64::MAX;

/// The splitmix64 finalizer: a bijective 64-bit mix with full avalanche
/// (Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014). Also used by the scrambled-Zipfian key
/// distribution to decorrelate rank from key.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-stream seed derivation shared by *all* drivers: stream `s` of
/// base seed `b` is `splitmix64(b ⊕ (s+1)·γ)`. Worker `tid` uses stream
/// `tid`; the prefill pass uses [`PREFILL_STREAM`].
#[inline]
pub fn worker_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ stream.wrapping_add(1).wrapping_mul(GAMMA))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_of_one_base_are_distinct() {
        let mut seen = HashSet::new();
        for tid in 0..1_000 {
            assert!(seen.insert(worker_seed(42, tid)), "stream {tid} collided");
        }
        assert!(
            seen.insert(worker_seed(42, PREFILL_STREAM)),
            "prefill stream aliased a worker stream"
        );
    }

    #[test]
    fn adjacent_bases_do_not_alias() {
        // The old `seed + tid + 1` scheme had worker (42, 1) == (43, 0).
        let mut seen = HashSet::new();
        for base in 40..48u64 {
            for tid in 0..16 {
                assert!(
                    seen.insert(worker_seed(base, tid)),
                    "base {base} stream {tid} collided with a neighbour"
                );
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(worker_seed(7, 3), worker_seed(7, 3));
        assert_ne!(worker_seed(7, 3), worker_seed(7, 4));
        assert_ne!(worker_seed(7, 3), worker_seed(8, 3));
    }

    #[test]
    fn splitmix_is_a_bijection_on_a_sample() {
        // Spot-check injectivity (a true bijection can't be tested
        // exhaustively; distinct outputs on a dense sample catches
        // accidental truncation).
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }
}
