//! Timed multi-threaded throughput driver (the setbench protocol):
//! prefill the structure to a target density, then run `threads` workers
//! for a fixed wall-clock duration, each drawing operations from the mix
//! and keys from the distribution, and report aggregate counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::dist::KeyDist;
use crate::mix::{Mix, Op};
use crate::seed;
use crate::{CapabilityError, ConcurrentMap, MapSession};

/// Configuration for one throughput run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Key distribution (also defines the key space).
    pub key_dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// Fraction of the key space inserted before measurement (setbench
    /// convention: 0.5, so inserts and deletes both succeed ~half the
    /// time and the size stays stationary).
    pub prefill_fraction: f64,
    /// Base RNG seed. Per-thread streams are derived through
    /// [`seed::worker_seed`] (worker `i` uses stream `i`, prefill uses
    /// [`seed::PREFILL_STREAM`]), identically across all drivers.
    pub seed: u64,
}

impl RunConfig {
    /// Conventional defaults: prefill 50%, seed 42.
    pub fn new(threads: usize, duration: Duration, key_dist: KeyDist, mix: Mix) -> Self {
        RunConfig {
            threads,
            duration,
            key_dist,
            mix,
            prefill_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Result of one throughput run.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Structure name.
    pub name: String,
    /// Worker thread count.
    pub threads: usize,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// Completed operations by type.
    pub inserts: u64,
    /// Completed upserts.
    pub upserts: u64,
    /// Completed deletes.
    pub deletes: u64,
    /// Completed finds.
    pub finds: u64,
    /// Completed range scans.
    pub scans: u64,
    /// Total keys returned by all range scans.
    pub scanned_keys: u64,
    /// Total operations.
    pub total_ops: u64,
    /// Aggregate throughput (operations per second).
    pub ops_per_sec: f64,
}

#[derive(Default)]
struct Counts {
    inserts: u64,
    upserts: u64,
    deletes: u64,
    finds: u64,
    scans: u64,
    scanned_keys: u64,
}

/// Deterministically prefill `map` with `fraction` of the key space,
/// inserting in a *shuffled* order (seeded). Insertion order matters: an
/// ascending prefill would degenerate the unbalanced leaf-oriented BSTs
/// into an O(n)-deep spine, which is not the setbench steady state —
/// random insertion order yields the expected O(log n) depth.
pub fn prefill<M: ConcurrentMap>(map: &M, key_space: u64, fraction: f64, seed: u64) {
    use rand::seq::SliceRandom;
    // The prefill pass runs on its own reserved stream so no worker's
    // operation stream can alias the shuffle order.
    let mut rng = SmallRng::seed_from_u64(seed::worker_seed(seed, seed::PREFILL_STREAM));
    let mut keys: Vec<u64> = (0..key_space).collect();
    keys.shuffle(&mut rng);
    let target = (key_space as f64 * fraction).round() as usize;
    let mut session = map.pin();
    for (i, &k) in keys.iter().take(target).enumerate() {
        session.insert(k, k);
        if (i + 1).is_multiple_of(1024) {
            session.refresh();
        }
    }
}

/// Run the timed workload; returns aggregate counts and throughput.
///
/// The mix is checked against the structure's declared capabilities
/// *before* any operation runs; a mismatch is a configuration error, not
/// a mid-run panic.
pub fn run_throughput<M: ConcurrentMap>(
    map: &M,
    cfg: &RunConfig,
) -> Result<Measurement, CapabilityError> {
    map.capabilities().check(&cfg.mix, map.name())?;
    let key_space = cfg.key_dist.key_space();
    prefill(map, key_space, cfg.prefill_fraction, cfg.seed);

    let stop = AtomicBool::new(false);
    let start_line = std::sync::Barrier::new(cfg.threads + 1);

    let totals: Vec<(Counts, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let stop = &stop;
                let start_line = &start_line;
                let mix = cfg.mix;
                let dist = cfg.key_dist.clone();
                let wseed = seed::worker_seed(cfg.seed, tid as u64);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut c = Counts::default();
                    // One pinned session for the whole run: the per-op
                    // guard churn never lands on the measured path.
                    let mut session = map.pin();
                    start_line.wait();
                    // Each worker times its own window, barrier release
                    // → stop observed. Timing after the joins would
                    // also charge every worker's post-stop partial
                    // batch and the join scheduling jitter to the
                    // denominator, coupling reported throughput to
                    // thread-exit order.
                    let t0 = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        // Batch 64 ops per stop-flag check to keep the
                        // flag off the hot path.
                        for _ in 0..64 {
                            let k = dist.sample(&mut rng);
                            match mix.sample(&mut rng) {
                                Op::Insert => {
                                    session.insert(k, k);
                                    c.inserts += 1;
                                }
                                Op::Upsert => {
                                    std::hint::black_box(session.upsert(k, k));
                                    c.upserts += 1;
                                }
                                Op::Delete => {
                                    session.delete(&k);
                                    c.deletes += 1;
                                }
                                Op::Find => {
                                    std::hint::black_box(session.get(&k));
                                    c.finds += 1;
                                }
                                Op::RangeScan => {
                                    let hi = k.saturating_add(mix.range_width.saturating_sub(1));
                                    c.scanned_keys += session.range_scan(&k, &hi) as u64;
                                    c.scans += 1;
                                }
                            }
                        }
                        // Between batches: let epoch reclamation advance.
                        session.refresh();
                    }
                    // Stop the clock at the moment this worker observes
                    // the stop flag — its final partial batch runs
                    // after, off the books on both axes.
                    (c, t0.elapsed())
                })
            })
            .collect();

        start_line.wait();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut m = Measurement {
        name: map.name().to_string(),
        threads: cfg.threads,
        elapsed_secs: 0.0,
        inserts: 0,
        upserts: 0,
        deletes: 0,
        finds: 0,
        scans: 0,
        scanned_keys: 0,
        total_ops: 0,
        ops_per_sec: 0.0,
    };
    // Aggregate rate = Σ per-thread rates over each thread's own
    // measured window; elapsed_secs reports the mean window (within
    // batch granularity of the configured duration).
    let mut rate = 0.0;
    for (c, dt) in &totals {
        let ops = c.inserts + c.upserts + c.deletes + c.finds + c.scans;
        m.inserts += c.inserts;
        m.upserts += c.upserts;
        m.deletes += c.deletes;
        m.finds += c.finds;
        m.scans += c.scans;
        m.scanned_keys += c.scanned_keys;
        rate += ops as f64 / dt.as_secs_f64();
    }
    m.total_ops = m.inserts + m.upserts + m.deletes + m.finds + m.scans;
    m.elapsed_secs =
        totals.iter().map(|(_, dt)| dt.as_secs_f64()).sum::<f64>() / totals.len().max(1) as f64;
    m.ops_per_sec = rate;
    Ok(m)
}

/// Run a *fixed amount of work* (`ops_per_thread` operations on each of
/// `threads` workers) and return the wall-clock time it took, excluding
/// thread startup. This is the Criterion-friendly variant of
/// [`run_throughput`] (Criterion measures time-per-batch; the timed
/// variant is for the standalone experiment tables). The map must
/// already be prefilled.
///
/// # Panics
///
/// If the mix asks for an operation the structure does not declare
/// (checked before any worker starts; see [`Caps::check`](crate::Caps)).
pub fn run_fixed_ops<M: ConcurrentMap>(
    map: &M,
    threads: usize,
    ops_per_thread: u64,
    mix: Mix,
    dist: &KeyDist,
    seed: u64,
) -> Duration {
    map.capabilities()
        .check(&mix, map.name())
        .expect("mix/capability mismatch");
    let start_line = std::sync::Barrier::new(threads + 1);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let start_line = &start_line;
                let dist = dist.clone();
                let wseed = seed::worker_seed(seed, tid as u64);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut session = map.pin();
                    start_line.wait();
                    let mut since_refresh = 0u32;
                    for _ in 0..ops_per_thread {
                        let k = dist.sample(&mut rng);
                        match mix.sample(&mut rng) {
                            Op::Insert => {
                                std::hint::black_box(session.insert(k, k));
                            }
                            Op::Upsert => {
                                std::hint::black_box(session.upsert(k, k));
                            }
                            Op::Delete => {
                                std::hint::black_box(session.delete(&k));
                            }
                            Op::Find => {
                                std::hint::black_box(session.get(&k));
                            }
                            Op::RangeScan => {
                                let hi = k.saturating_add(mix.range_width.saturating_sub(1));
                                std::hint::black_box(session.range_scan(&k, &hi));
                            }
                        }
                        since_refresh += 1;
                        if since_refresh == 64 {
                            session.refresh();
                            since_refresh = 0;
                        }
                    }
                })
            })
            .collect();
        start_line.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        t0.elapsed()
    })
}

/// Configuration for the scan/update interference experiment (E6):
/// dedicated scanner threads against dedicated updater threads.
#[derive(Clone, Debug)]
pub struct ScanUpdaterConfig {
    /// Number of updater threads (uniform 50/50 insert/delete over the
    /// whole key space).
    pub updaters: usize,
    /// Number of scanner threads.
    pub scanners: usize,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Key-space size.
    pub key_space: u64,
    /// `true`: scanner `i` repeatedly scans its own 1/scanners slice of
    /// the key space (the paper's "scans on different parts of the tree
    /// do not interfere" claim). `false`: every scanner scans the full
    /// key space.
    pub disjoint: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a scan/update interference run.
#[derive(Clone, Debug, Serialize)]
pub struct ScanUpdaterMeasurement {
    /// Structure name.
    pub name: String,
    /// Updater thread count.
    pub updaters: usize,
    /// Scanner thread count.
    pub scanners: usize,
    /// Whether scanners worked disjoint slices.
    pub disjoint: bool,
    /// Completed update operations.
    pub update_ops: u64,
    /// Completed scans.
    pub scan_ops: u64,
    /// Total keys returned by scans.
    pub scanned_keys: u64,
    /// Measured seconds.
    pub elapsed_secs: f64,
    /// Updates per second.
    pub updates_per_sec: f64,
    /// Scans per second.
    pub scans_per_sec: f64,
}

/// Partition `[0, key_space)` into `scanners` contiguous closed
/// intervals that are pairwise disjoint and jointly cover the whole key
/// space: slice `i` gets `key_space / scanners` keys plus one of the
/// `key_space % scanners` remainder keys while they last. A scanner
/// whose slice is empty (`key_space < scanners`) gets `None`.
///
/// This replaces the old inline `slice = n / scanners` arithmetic,
/// which (a) underflowed `lo + slice - 1` when `key_space < scanners`
/// (u64 overflow panic in debug builds) and (b) assigned the last
/// `n % scanners` keys to *no* scanner, silently violating the
/// "disjoint slices cover the key space" contract the experiment's
/// conclusions rest on.
pub fn disjoint_slices(key_space: u64, scanners: usize) -> Vec<Option<(u64, u64)>> {
    let s = scanners.max(1) as u64;
    let base = key_space / s;
    let rem = key_space % s;
    let mut lo = 0u64;
    (0..s)
        .map(|i| {
            let len = base + u64::from(i < rem);
            if len == 0 {
                None
            } else {
                let slice = (lo, lo + len - 1);
                lo += len;
                Some(slice)
            }
        })
        .collect()
}

/// Run the scan/update interference experiment.
pub fn run_scan_updater<M: ConcurrentMap>(
    map: &M,
    cfg: &ScanUpdaterConfig,
) -> Result<ScanUpdaterMeasurement, CapabilityError> {
    if !map.capabilities().range_scan {
        return Err(CapabilityError::RangeScan {
            structure: map.name(),
        });
    }
    prefill(map, cfg.key_space, 0.5, cfg.seed);

    let stop = AtomicBool::new(false);
    let nthreads = cfg.updaters + cfg.scanners;
    let start_line = std::sync::Barrier::new(nthreads + 1);
    let mut elapsed = Duration::ZERO;

    let (update_ops, scan_results) = std::thread::scope(|s| {
        let upd_handles: Vec<_> = (0..cfg.updaters)
            .map(|tid| {
                let stop = &stop;
                let start_line = &start_line;
                let wseed = seed::worker_seed(cfg.seed, tid as u64);
                let n = cfg.key_space;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut ops = 0u64;
                    let mut session = map.pin();
                    start_line.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            let k = rng.gen_range(0..n);
                            if rng.gen_bool(0.5) {
                                session.insert(k, k);
                            } else {
                                session.delete(&k);
                            }
                            ops += 1;
                        }
                        session.refresh();
                    }
                    ops
                })
            })
            .collect();

        let slices = disjoint_slices(cfg.key_space, cfg.scanners);
        let scan_handles: Vec<_> = (0..cfg.scanners)
            .map(|tid| {
                let stop = &stop;
                let start_line = &start_line;
                let n = cfg.key_space;
                let slice = if cfg.disjoint {
                    slices[tid]
                } else {
                    Some((0, n.saturating_sub(1)))
                };
                s.spawn(move || {
                    let mut scans = 0u64;
                    let mut keys = 0u64;
                    let mut session = map.pin();
                    start_line.wait();
                    match slice {
                        Some((lo, hi)) => {
                            while !stop.load(Ordering::Relaxed) {
                                keys += session.range_scan(&lo, &hi) as u64;
                                scans += 1;
                                session.refresh();
                            }
                        }
                        // More scanners than keys: this one has no
                        // slice. Idle until stop instead of scanning
                        // someone else's keys (which would break
                        // disjointness) or panicking (which is what the
                        // old underflow did).
                        None => {
                            while !stop.load(Ordering::Relaxed) {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                    (scans, keys)
                })
            })
            .collect();

        start_line.wait();
        let t0 = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        let u: u64 = upd_handles.into_iter().map(|h| h.join().unwrap()).sum();
        let sr: Vec<(u64, u64)> = scan_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        elapsed = t0.elapsed();
        (u, sr)
    });

    let scan_ops: u64 = scan_results.iter().map(|(s, _)| s).sum();
    let scanned_keys: u64 = scan_results.iter().map(|(_, k)| k).sum();
    let secs = elapsed.as_secs_f64();
    Ok(ScanUpdaterMeasurement {
        name: map.name().to_string(),
        updaters: cfg.updaters,
        scanners: cfg.scanners,
        disjoint: cfg.disjoint,
        update_ops,
        scan_ops,
        scanned_keys,
        elapsed_secs: secs,
        updates_per_sec: update_ops as f64 / secs,
        scans_per_sec: scan_ops as f64 / secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Caps;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A trivial reference structure to exercise the driver itself.
    struct LockedMap(Mutex<BTreeMap<u64, u64>>);

    /// Trivial session: lock-based maps have no guard to amortize.
    struct LockedSession<'a>(&'a LockedMap);

    impl MapSession for LockedSession<'_> {
        fn insert(&mut self, k: u64, v: u64) -> bool {
            let mut m = self.0 .0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(k) {
                e.insert(v);
                true
            } else {
                false
            }
        }
        fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.0 .0.lock().unwrap().insert(k, v)
        }
        fn delete(&mut self, k: &u64) -> bool {
            self.0 .0.lock().unwrap().remove(k).is_some()
        }
        fn get(&mut self, k: &u64) -> Option<u64> {
            self.0 .0.lock().unwrap().get(k).copied()
        }
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
            self.0 .0.lock().unwrap().range(*lo..=*hi).count()
        }
    }

    impl ConcurrentMap for LockedMap {
        type Session<'a> = LockedSession<'a>;
        fn pin(&self) -> LockedSession<'_> {
            LockedSession(self)
        }
        fn capabilities(&self) -> Caps {
            Caps {
                range_scan: true,
                upsert: true,
                snapshot: false,
                batched: false,
            }
        }
        fn name(&self) -> &'static str {
            "locked-btreemap"
        }
    }

    #[test]
    fn prefill_density_is_close() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        prefill(&m, 10_000, 0.5, 7);
        let n = m.0.lock().unwrap().len();
        assert!((4_500..=5_500).contains(&n), "density off: {n}");
    }

    #[test]
    fn throughput_run_counts_ops() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = RunConfig::new(
            2,
            Duration::from_millis(100),
            KeyDist::uniform(1_000),
            Mix::with_ranges(16),
        );
        let meas = run_throughput(&m, &cfg).expect("caps cover the mix");
        assert_eq!(meas.threads, 2);
        assert!(meas.total_ops > 0);
        assert_eq!(
            meas.total_ops,
            meas.inserts + meas.upserts + meas.deletes + meas.finds + meas.scans
        );
        assert!(meas.ops_per_sec > 0.0);
        // Mix shares should be roughly honoured.
        assert!(meas.finds > meas.scans);
    }

    #[test]
    fn throughput_run_drives_upserts() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = RunConfig::new(
            2,
            Duration::from_millis(60),
            KeyDist::uniform(512),
            Mix::upsert_heavy(),
        );
        let meas = run_throughput(&m, &cfg).unwrap();
        assert!(meas.upserts > 0);
        assert_eq!(meas.inserts, 0);
        assert_eq!(meas.scans, 0);
    }

    #[test]
    fn throughput_elapsed_tracks_configured_duration() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let dur = Duration::from_millis(100);
        let cfg = RunConfig::new(2, dur, KeyDist::uniform(1_000), Mix::read_mostly());
        let meas = run_throughput(&m, &cfg).unwrap();
        // Per-thread windows close when the worker *observes* stop, so
        // the reported elapsed is the duration plus at most one batch +
        // scheduling slack — not the old join-ordering-dependent value
        // that also swallowed every worker's post-stop partial batch.
        assert!(
            meas.elapsed_secs >= dur.as_secs_f64(),
            "window shorter than configured: {}",
            meas.elapsed_secs
        );
        assert!(
            meas.elapsed_secs <= 3.0 * dur.as_secs_f64(),
            "window far exceeds configured duration: {}",
            meas.elapsed_secs
        );
    }

    #[test]
    fn disjoint_slices_cover_and_do_not_overlap() {
        for (n, s) in [
            (1_000u64, 7usize), // remainder 6: the old code dropped keys 994..=999
            (10, 3),
            (16, 16),
            (5, 1),
            (64, 2),
        ] {
            let slices = disjoint_slices(n, s);
            assert_eq!(slices.len(), s);
            let mut next = 0u64;
            for (i, sl) in slices.iter().enumerate() {
                let (lo, hi) = sl.unwrap_or_else(|| panic!("slice {i} empty for n={n} s={s}"));
                assert_eq!(lo, next, "gap before slice {i} (n={n} s={s})");
                assert!(hi >= lo);
                next = hi + 1;
            }
            // Union is exactly [0, n): contiguous from 0 and ends at n-1.
            assert_eq!(next, n, "slices do not cover the key space (n={n} s={s})");
        }
    }

    #[test]
    fn disjoint_slices_handle_more_scanners_than_keys() {
        // The old arithmetic underflowed `lo + slice - 1` here.
        let slices = disjoint_slices(2, 4);
        assert_eq!(
            slices,
            vec![Some((0, 0)), Some((1, 1)), None, None],
            "two keys, four scanners: two singleton slices, two idle"
        );
        assert!(disjoint_slices(0, 3).iter().all(Option::is_none));
    }

    #[test]
    fn scan_updater_survives_key_space_smaller_than_scanners() {
        // Regression: this configuration panicked with a u64 underflow
        // in debug builds before slices were computed via
        // `disjoint_slices`.
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = ScanUpdaterConfig {
            updaters: 1,
            scanners: 4,
            duration: Duration::from_millis(40),
            key_space: 2,
            disjoint: true,
            seed: 9,
        };
        let meas = run_scan_updater(&m, &cfg).expect("range-capable");
        assert!(meas.scan_ops > 0, "the two non-empty slices still scan");
    }

    /// Records every (lo, hi) interval passed to `range_scan`, so a test
    /// can check what the scanners actually asked for.
    struct RecordingMap {
        inner: LockedMap,
        intervals: Mutex<std::collections::BTreeSet<(u64, u64)>>,
    }
    struct RecordingSession<'a> {
        inner: LockedSession<'a>,
        intervals: &'a Mutex<std::collections::BTreeSet<(u64, u64)>>,
    }
    impl MapSession for RecordingSession<'_> {
        fn insert(&mut self, k: u64, v: u64) -> bool {
            self.inner.insert(k, v)
        }
        fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.inner.upsert(k, v)
        }
        fn delete(&mut self, k: &u64) -> bool {
            self.inner.delete(k)
        }
        fn get(&mut self, k: &u64) -> Option<u64> {
            self.inner.get(k)
        }
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
            self.intervals.lock().unwrap().insert((*lo, *hi));
            self.inner.range_scan(lo, hi)
        }
    }
    impl ConcurrentMap for RecordingMap {
        type Session<'a> = RecordingSession<'a>;
        fn pin(&self) -> RecordingSession<'_> {
            RecordingSession {
                inner: self.inner.pin(),
                intervals: &self.intervals,
            }
        }
        fn capabilities(&self) -> Caps {
            self.inner.capabilities()
        }
        fn name(&self) -> &'static str {
            "recording-btreemap"
        }
    }

    #[test]
    fn scan_updater_disjoint_scans_cover_the_full_key_space() {
        // Regression: with key_space % scanners != 0 the old slicing
        // left the last `n % scanners` keys unscanned by anyone.
        let m = RecordingMap {
            inner: LockedMap(Mutex::new(BTreeMap::new())),
            intervals: Mutex::new(std::collections::BTreeSet::new()),
        };
        let n = 10u64;
        let cfg = ScanUpdaterConfig {
            updaters: 0,
            scanners: 3,
            duration: Duration::from_millis(40),
            key_space: n,
            disjoint: true,
            seed: 5,
        };
        run_scan_updater(&m, &cfg).unwrap();
        let intervals = m.intervals.lock().unwrap();
        // Scanners repeat their own fixed interval, so the distinct set
        // is exactly the slice partition: disjoint and covering [0, n).
        let mut next = 0u64;
        for &(lo, hi) in intervals.iter() {
            assert_eq!(lo, next, "gap or overlap at key {next}");
            next = hi + 1;
        }
        assert_eq!(next, n, "keys {next}..{n} were never scanned");
    }

    #[test]
    fn scan_updater_run_reports_both_sides() {
        let m = LockedMap(Mutex::new(BTreeMap::new()));
        let cfg = ScanUpdaterConfig {
            updaters: 1,
            scanners: 1,
            duration: Duration::from_millis(80),
            key_space: 1_000,
            disjoint: true,
            seed: 3,
        };
        let meas = run_scan_updater(&m, &cfg).expect("range-capable");
        assert!(meas.update_ops > 0);
        assert!(meas.scan_ops > 0);
        assert!(meas.scanned_keys > 0);
    }

    /// A structure that declares point ops only.
    struct NoScan;
    struct NoScanSession;
    impl MapSession for NoScanSession {
        fn insert(&mut self, _: u64, _: u64) -> bool {
            true
        }
        fn upsert(&mut self, _: u64, _: u64) -> Option<u64> {
            None
        }
        fn delete(&mut self, _: &u64) -> bool {
            false
        }
        fn get(&mut self, _: &u64) -> Option<u64> {
            None
        }
        fn range_scan(&mut self, _: &u64, _: &u64) -> usize {
            0
        }
    }
    impl ConcurrentMap for NoScan {
        type Session<'a> = NoScanSession;
        fn pin(&self) -> NoScanSession {
            NoScanSession
        }
        fn capabilities(&self) -> Caps {
            Caps::point_ops()
        }
        fn name(&self) -> &'static str {
            "noscan"
        }
    }

    #[test]
    fn unsupported_mixes_fail_typed_at_config_time() {
        let cfg = RunConfig::new(
            1,
            Duration::from_millis(10),
            KeyDist::uniform(10),
            Mix::with_ranges(4),
        );
        assert_eq!(
            run_throughput(&NoScan, &cfg).unwrap_err(),
            CapabilityError::RangeScan {
                structure: "noscan"
            }
        );
        let cfg = RunConfig::new(
            1,
            Duration::from_millis(10),
            KeyDist::uniform(10),
            Mix::upsert_heavy(),
        );
        assert_eq!(
            run_throughput(&NoScan, &cfg).unwrap_err(),
            CapabilityError::Upsert {
                structure: "noscan"
            }
        );
        let err = run_scan_updater(
            &NoScan,
            &ScanUpdaterConfig {
                updaters: 1,
                scanners: 1,
                duration: Duration::from_millis(10),
                key_space: 16,
                disjoint: false,
                seed: 1,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("noscan"));
    }
}
