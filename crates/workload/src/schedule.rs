//! Open-loop, target-rate workload engine — latency-honest measurement.
//!
//! Every other driver in this crate is **closed-loop**: each worker
//! fires its next operation the instant the previous one returns, so
//! the offered load adapts itself to however slow the structure is.
//! That feedback silently edits the latency record — when one operation
//! stalls for 10 ms, the ~10 000 operations that *would have arrived*
//! during the stall are simply never issued, and none of them report
//! the queueing delay they would have seen. This is *coordinated
//! omission* (Tene), and it makes closed-loop percentiles an answer to
//! the wrong question. The production question is: *at a fixed offered
//! rate, what latency does the p999 request see?*
//!
//! [`run_open_loop`] answers it the way cql-stress / YCSB-with-intended
//! -timestamps do:
//!
//! * each worker owns an [`OpSchedule`] that derives operation `i`'s
//!   **intended start** `start + i/rate` from the configured target
//!   rate — arrivals are a fixed metronome, independent of how the
//!   structure behaves;
//! * latency is recorded from the **intended** start to completion, not
//!   from whenever the worker got around to issuing it — if the worker
//!   falls behind, the backlog wait is charged to the structure, which
//!   is exactly where a queueing-delayed production request would feel
//!   it;
//! * workers record into thread-local [`HdrHistogram`]s flushed into a
//!   [`ShardedHistogram`] at batch boundaries, merged at reporting
//!   time;
//! * the report carries **offered vs achieved** rate, so saturation is
//!   visible instead of silently renormalizing the percentiles.
//!
//! One honest caveat, stated rather than hidden: issuing stops at the
//! configured deadline, so arrivals scheduled-but-never-issued at
//! cutoff (only possible when the structure is saturated) do not
//! contribute samples. Their absence is visible as `achieved <
//! offered`; the samples that *are* recorded still carry their full
//! queueing delay, which is what eliminates the omission bias at every
//! sub-saturation rate.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::dist::KeyDist;
use crate::histogram::{HdrHistogram, ShardedHistogram};
use crate::mix::{Mix, Op};
use crate::runner::prefill;
use crate::seed;
use crate::{CapabilityError, ConcurrentMap, MapSession};

/// Derives intended-start timestamps for one worker from a target rate:
/// operation `i` is due at `origin + phase + i/rate`. Pure arithmetic —
/// the schedule never drifts with execution, which is the property the
/// whole open-loop design rests on.
#[derive(Clone, Debug)]
pub struct OpSchedule {
    origin: Instant,
    /// Nanoseconds between intended starts.
    interval_ns: f64,
    /// Constant phase offset in nanoseconds (staggers workers so their
    /// metronomes interleave instead of thundering together).
    phase_ns: f64,
    next_index: u64,
}

impl OpSchedule {
    /// Schedule starting at `origin` with `rate` intended starts per
    /// second.
    pub fn new(origin: Instant, rate: f64) -> Self {
        Self::with_phase(origin, rate, 0.0)
    }

    /// Schedule offset by `phase` (in fractions of one interval,
    /// `[0, 1)`): worker `t` of `n` passes `t / n` so the combined
    /// arrival process is an even comb rather than `n` coincident
    /// ticks.
    pub fn with_phase(origin: Instant, rate: f64, phase: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "target rate must be positive"
        );
        let interval_ns = 1e9 / rate;
        OpSchedule {
            origin,
            interval_ns,
            phase_ns: interval_ns * phase,
            next_index: 0,
        }
    }

    /// Intended start of operation `i`.
    #[inline]
    pub fn intended(&self, i: u64) -> Instant {
        // f64 keeps sub-nanosecond rate precision; offsets stay well
        // under 2^53 ns (~104 days) so the arithmetic is exact enough.
        let off = self.phase_ns + i as f64 * self.interval_ns;
        self.origin + Duration::from_nanos(off as u64)
    }

    /// Claim the next operation's intended start.
    #[inline]
    pub fn next_intended(&mut self) -> Instant {
        let t = self.intended(self.next_index);
        self.next_index += 1;
        t
    }

    /// Number of intended starts claimed so far.
    pub fn issued(&self) -> u64 {
        self.next_index
    }
}

/// Sleep-then-spin until `t`: coarse sleep while far out (leaving slack
/// for the scheduler's wake-up jitter), spin for the final stretch.
/// Returns immediately when `t` is already past — the backlogged case.
#[inline]
fn wait_until(t: Instant) {
    const SPIN_WINDOW: Duration = Duration::from_micros(300);
    const SLEEP_SLACK: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let gap = t - now;
        if gap > SPIN_WINDOW {
            std::thread::sleep(gap - SLEEP_SLACK);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Where and how often [`run_open_loop`] appends per-interval timeseries
/// rows (see [`OpenLoopConfig::interval_log`]).
#[derive(Clone, Debug)]
pub struct IntervalLogConfig {
    /// JSONL file the rows are appended to (created if absent).
    pub path: PathBuf,
    /// Reporting interval (default 1 s).
    pub interval: Duration,
}

impl IntervalLogConfig {
    /// Log to `path` at the conventional 1-second interval.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_interval(path, Duration::from_secs(1))
    }

    /// Log to `path` every `interval`.
    pub fn with_interval(path: impl Into<PathBuf>, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        IntervalLogConfig {
            path: path.into(),
            interval,
        }
    }
}

/// The interval-log reporter: every `il.interval`, merge the sharded
/// histograms, diff against the previous cumulative snapshot, and append
/// one JSONL row describing *that interval* — `t_secs` (end of interval,
/// relative to the start line), `achieved_rate` (completions/sec within
/// the interval), `p50_ns` and `p99_ns` (of the interval's samples). A final
/// partial-interval row is emitted at shutdown so the tail is never
/// dropped. IO failures are reported to stderr and disable logging
/// rather than aborting the measurement.
fn interval_reporter(
    il: &IntervalLogConfig,
    stats: &ShardedHistogram,
    done: &AtomicBool,
    start_line: &std::sync::Barrier,
) {
    let mut file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&il.path)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "interval log disabled: cannot open {}: {e}",
                il.path.display()
            );
            start_line.wait();
            return;
        }
    };
    start_line.wait();
    let t0 = Instant::now();
    let mut prev = HdrHistogram::new();
    let mut prev_t = t0;
    let mut next_tick = t0 + il.interval;
    loop {
        // Sleep toward the tick in short slices so shutdown is prompt.
        let finishing = loop {
            if done.load(Ordering::Acquire) {
                break true;
            }
            let now = Instant::now();
            if now >= next_tick {
                break false;
            }
            std::thread::sleep((next_tick - now).min(Duration::from_millis(20)));
        };
        let now = Instant::now();
        let mut cum = HdrHistogram::new();
        for h in stats.merged() {
            cum.merge(&h);
        }
        let interval = cum.diff(&prev);
        let dt = (now - prev_t).as_secs_f64();
        // The final row covers whatever partial interval remains; skip
        // it only when it holds no samples at all.
        if !(finishing && interval.is_empty()) && dt > 0.0 {
            let row = format!(
                "{{\"t_secs\": {:.3}, \"achieved_rate\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}\n",
                (now - t0).as_secs_f64(),
                interval.len() as f64 / dt,
                interval.value_at_percentile(0.50).unwrap_or(0),
                interval.value_at_percentile(0.99).unwrap_or(0),
            );
            if let Err(e) = file.write_all(row.as_bytes()) {
                eprintln!("interval log write failed ({}): {e}", il.path.display());
                return;
            }
        }
        if finishing {
            return;
        }
        prev = cum;
        prev_t = now;
        next_tick += il.interval;
    }
}

/// Configuration for one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Total offered rate in operations per second, split evenly across
    /// the workers (each runs its own phase-staggered metronome at
    /// `target_rate / threads`).
    pub target_rate: f64,
    /// Wall-clock issuing window.
    pub duration: Duration,
    /// Key distribution (also defines the key space).
    pub key_dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// Fraction of the key space inserted before measurement.
    pub prefill_fraction: f64,
    /// Base RNG seed (per-worker streams via [`seed::worker_seed`]).
    pub seed: u64,
    /// Optional per-interval timeseries log: while the run is live, a
    /// reporter thread appends one JSONL row per interval —
    /// `{"t_secs": …, "achieved_rate": …, "p50_ns": …, "p99_ns": …}` — computed from
    /// the *difference* of consecutive cumulative histogram snapshots,
    /// so each row describes that interval alone (a saturation collapse
    /// shows up in its own rows instead of being averaged away). Used
    /// by `pnb-load --interval-log`.
    pub interval_log: Option<IntervalLogConfig>,
}

impl OpenLoopConfig {
    /// Conventional defaults: prefill 50%, seed 42, no interval log.
    pub fn new(
        threads: usize,
        target_rate: f64,
        duration: Duration,
        key_dist: KeyDist,
        mix: Mix,
    ) -> Self {
        OpenLoopConfig {
            threads,
            target_rate,
            duration,
            key_dist,
            mix,
            prefill_fraction: 0.5,
            seed: 42,
            interval_log: None,
        }
    }
}

/// Latency summary for one operation class.
#[derive(Clone, Debug, Serialize)]
pub struct OpenLoopClass {
    /// Operation class label (`insert`, `upsert`, `delete`, `find`,
    /// `range_scan`).
    pub class: String,
    /// Recorded samples.
    pub count: u64,
    /// Median latency (intended start → completion), nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Worst recorded latency, nanoseconds.
    pub max_ns: u64,
}

/// Result of one open-loop run.
#[derive(Clone, Debug, Serialize)]
pub struct OpenLoopMeasurement {
    /// Structure name.
    pub name: String,
    /// Worker thread count.
    pub threads: usize,
    /// Configured arrival rate (ops/sec).
    pub offered_rate: f64,
    /// Completed rate (ops/sec); below `offered_rate` means the
    /// structure saturated and a backlog formed.
    pub achieved_rate: f64,
    /// Mean per-worker measured seconds.
    pub elapsed_secs: f64,
    /// Completed operations.
    pub total_ops: u64,
    /// Per-class latency summaries (classes the mix never drew are
    /// omitted).
    pub classes: Vec<OpenLoopClass>,
}

/// Class labels, indexed like the per-class histogram arrays.
pub(crate) const CLASS_LABELS: [&str; 5] = ["insert", "upsert", "delete", "find", "range_scan"];

/// Run the open-loop driver: prefill, then offer `cfg.target_rate`
/// ops/sec for `cfg.duration`, recording intended-start latency per
/// operation class. The mix is checked against the structure's
/// capabilities before anything runs.
pub fn run_open_loop<M: ConcurrentMap>(
    map: &M,
    cfg: &OpenLoopConfig,
) -> Result<OpenLoopMeasurement, CapabilityError> {
    map.capabilities().check(&cfg.mix, map.name())?;
    prefill(
        map,
        cfg.key_dist.key_space(),
        cfg.prefill_fraction,
        cfg.seed,
    );

    let threads = cfg.threads.max(1);
    let stats = ShardedHistogram::new(threads, CLASS_LABELS.len());
    // Workers + the coordinating thread + (optionally) the interval
    // reporter all release from the same line, so t=0 means the same
    // instant to every participant.
    let reporter_threads = usize::from(cfg.interval_log.is_some());
    let start_line = std::sync::Barrier::new(threads + 1 + reporter_threads);
    let done = AtomicBool::new(false);

    let per_thread: Vec<(u64, Duration)> = std::thread::scope(|s| {
        let reporter = cfg.interval_log.as_ref().map(|il| {
            let stats = &stats;
            let done = &done;
            let start_line = &start_line;
            let il = il.clone();
            s.spawn(move || interval_reporter(&il, stats, done, start_line))
        });
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let start_line = &start_line;
                let stats = &stats;
                let dist = cfg.key_dist.clone();
                let mix = cfg.mix;
                let rate = cfg.target_rate / threads as f64;
                let phase = tid as f64 / threads as f64;
                let wseed = seed::worker_seed(cfg.seed, tid as u64);
                let duration = cfg.duration;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut local: [HdrHistogram; 5] = std::array::from_fn(|_| HdrHistogram::new());
                    let mut session = map.pin();
                    start_line.wait();
                    let t0 = Instant::now();
                    let deadline = t0 + duration;
                    let mut sched = OpSchedule::with_phase(t0, rate, phase);
                    let mut ops = 0u64;
                    let mut since_flush = 0u32;
                    // Supplement the count-based flush with a time-based
                    // one so interval reporting stays live at low rates
                    // (256 ops can span many seconds at a trickle).
                    const FLUSH_INTERVAL: Duration = Duration::from_millis(250);
                    let mut last_flush = t0;
                    loop {
                        let intended = sched.next_intended();
                        if intended >= deadline {
                            break;
                        }
                        wait_until(intended);
                        // Issuing cutoff: when saturated the backlog
                        // would otherwise keep executing long past the
                        // window (see module docs).
                        if Instant::now() >= deadline {
                            break;
                        }
                        let k = dist.sample(&mut rng);
                        let class = match mix.sample(&mut rng) {
                            Op::Insert => {
                                std::hint::black_box(session.insert(k, k));
                                0
                            }
                            Op::Upsert => {
                                std::hint::black_box(session.upsert(k, k));
                                1
                            }
                            Op::Delete => {
                                std::hint::black_box(session.delete(&k));
                                2
                            }
                            Op::Find => {
                                std::hint::black_box(session.get(&k));
                                3
                            }
                            Op::RangeScan => {
                                let hi = k.saturating_add(mix.range_width.saturating_sub(1));
                                std::hint::black_box(session.range_scan(&k, &hi));
                                4
                            }
                        };
                        // Intended-start accounting: queueing delay
                        // (intended → actual issue) plus service time.
                        local[class].record_duration(intended.elapsed());
                        ops += 1;
                        since_flush += 1;
                        // Outside any timing window: reclamation
                        // catch-up every 64 ops, and a stats flush
                        // every 256 so reporting intervals can read a
                        // live merge.
                        if ops.is_multiple_of(64) {
                            session.refresh();
                        }
                        if since_flush == 256 || intended >= last_flush + FLUSH_INTERVAL {
                            stats.flush(tid, &mut local);
                            since_flush = 0;
                            last_flush = intended;
                        }
                    }
                    let elapsed = t0.elapsed();
                    stats.flush(tid, &mut local);
                    (ops, elapsed)
                })
            })
            .collect();
        start_line.wait();
        let per_thread = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Workers have final-flushed; let the reporter emit its closing
        // interval row from the complete merge, then stop.
        done.store(true, Ordering::Release);
        if let Some(r) = reporter {
            r.join().unwrap();
        }
        per_thread
    });

    let total_ops: u64 = per_thread.iter().map(|(o, _)| o).sum();
    let achieved_rate: f64 = per_thread
        .iter()
        .map(|(o, e)| *o as f64 / e.as_secs_f64())
        .sum();
    let elapsed_secs =
        per_thread.iter().map(|(_, e)| e.as_secs_f64()).sum::<f64>() / threads as f64;

    let classes = stats
        .merged()
        .into_iter()
        .zip(CLASS_LABELS)
        .filter(|(h, _)| !h.is_empty())
        .map(|(h, label)| {
            let (p50, p99, p999) = h.summary();
            OpenLoopClass {
                class: label.to_string(),
                count: h.len(),
                p50_ns: p50,
                p99_ns: p99,
                p999_ns: p999,
                max_ns: h.max(),
            }
        })
        .collect();

    Ok(OpenLoopMeasurement {
        name: map.name().to_string(),
        threads,
        offered_rate: cfg.target_rate,
        achieved_rate,
        elapsed_secs,
        total_ops,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Caps;

    #[test]
    fn schedule_is_monotone_and_rate_accurate() {
        let origin = Instant::now();
        let rate = 10_000.0;
        let mut sched = OpSchedule::new(origin, rate);
        let mut prev = sched.next_intended();
        for _ in 0..9_999 {
            let next = sched.next_intended();
            assert!(next >= prev, "intended starts must be monotone");
            prev = next;
        }
        // After 10 000 claims at 10 kHz, the last intended start sits
        // one second out (within a tick of rounding).
        let off = prev - origin;
        let expected = Duration::from_nanos((9_999.0 * 1e9 / rate) as u64);
        let err = off.abs_diff(expected);
        assert!(
            err < Duration::from_micros(1),
            "schedule drifted: {off:?} vs {expected:?}"
        );
        assert_eq!(sched.issued(), 10_000);
    }

    #[test]
    fn phase_staggers_workers_within_one_interval() {
        let origin = Instant::now();
        let a = OpSchedule::with_phase(origin, 1_000.0, 0.0);
        let b = OpSchedule::with_phase(origin, 1_000.0, 0.5);
        let gap = b.intended(0) - a.intended(0);
        assert_eq!(gap, Duration::from_nanos(500_000));
        // The comb interleaves: worker b's op 0 lands between a's 0 and 1.
        assert!(b.intended(0) < a.intended(1));
    }

    /// A map whose every operation busy-spins for a fixed service time:
    /// the controllable "stalled structure" for the coordinated-omission
    /// smoke test.
    struct StalledMap {
        service: Duration,
    }
    struct StalledSession {
        service: Duration,
    }
    impl StalledSession {
        fn serve(&self) {
            let t0 = Instant::now();
            while t0.elapsed() < self.service {
                std::hint::spin_loop();
            }
        }
    }
    impl MapSession for StalledSession {
        fn insert(&mut self, _: u64, _: u64) -> bool {
            self.serve();
            true
        }
        fn upsert(&mut self, _: u64, _: u64) -> Option<u64> {
            self.serve();
            None
        }
        fn delete(&mut self, _: &u64) -> bool {
            self.serve();
            false
        }
        fn get(&mut self, _: &u64) -> Option<u64> {
            self.serve();
            None
        }
        fn range_scan(&mut self, _: &u64, _: &u64) -> usize {
            self.serve();
            0
        }
    }
    impl ConcurrentMap for StalledMap {
        type Session<'a> = StalledSession;
        fn pin(&self) -> StalledSession {
            StalledSession {
                service: self.service,
            }
        }
        fn capabilities(&self) -> Caps {
            Caps::all()
        }
        fn name(&self) -> &'static str {
            "stalled-map"
        }
    }

    /// The open-loop honesty test: a fixed 300 µs service time gives a
    /// per-thread capacity of ~3.3 kops/s. Offered *below* capacity,
    /// recorded latency is just the service time; offered *above*
    /// capacity, a backlog forms and intended-start accounting must
    /// surface the queueing delay — p999 grows with offered rate. A
    /// closed-loop driver would report ~300 µs in both columns, which is
    /// exactly the lie this engine exists to stop telling.
    #[test]
    fn stalled_map_p999_reflects_queueing_delay() {
        let service = Duration::from_micros(300);
        let map = StalledMap { service };
        let run = |rate: f64| {
            let cfg = OpenLoopConfig {
                threads: 1,
                target_rate: rate,
                duration: Duration::from_millis(250),
                key_dist: KeyDist::uniform(64),
                mix: Mix::new(0, 0, 100, 0, 0),
                prefill_fraction: 0.0,
                seed: 7,
                interval_log: None,
            };
            run_open_loop(&map, &cfg).expect("caps cover the mix")
        };
        let p999 = |m: &OpenLoopMeasurement| {
            m.classes
                .iter()
                .find(|c| c.class == "find")
                .expect("find class sampled")
                .p999_ns
        };

        let attempt = || -> Result<(), String> {
            let below = run(1_000.0); // 30% of capacity
            let above = run(20_000.0); // 6× capacity
            let p999_below = p999(&below);
            let p999_above = p999(&above);

            // Under capacity: service time plus scheduling noise,
            // nowhere near the multi-ms regime.
            if p999_below >= 10_000_000 {
                return Err(format!(
                    "sub-capacity p999 should be ~service time, got {p999_below} ns"
                ));
            }
            // Over capacity: the backlog at 6× load grows throughout
            // the 250 ms window, so the tail must reach tens of
            // milliseconds — visibly queueing delay, not service time.
            if p999_above <= 10_000_000 {
                return Err(format!(
                    "saturated p999 must show queueing delay, got {p999_above} ns"
                ));
            }
            if p999_above <= 10 * p999_below.max(1) {
                return Err(format!(
                    "p999 must grow with offered rate: {p999_below} -> {p999_above}"
                ));
            }
            // And saturation is visible in the rate columns.
            if above.achieved_rate >= 0.5 * above.offered_rate {
                return Err(format!(
                    "achieved ({}) should fall well short of offered ({})",
                    above.achieved_rate, above.offered_rate
                ));
            }
            if below.achieved_rate <= 0.7 * below.offered_rate {
                return Err(format!(
                    "sub-capacity run should keep up: {} vs {}",
                    below.achieved_rate, below.offered_rate
                ));
            }
            Ok(())
        };

        // The sub-capacity bound is genuinely timing-sensitive: one
        // 10 ms preemption of the single worker (routine on a loaded
        // 1-core CI box) lands in p999_below and fails an otherwise
        // healthy engine. Retry a bounded number of times — the
        // property under test (queueing delay visible at saturation,
        // absent below it) must hold on *some* quiet 500 ms window,
        // while a real engine bug fails every attempt.
        let mut last = String::new();
        for _ in 0..3 {
            match attempt() {
                Ok(()) => return,
                Err(e) => last = e,
            }
        }
        panic!("{last}");
    }

    /// A free-running map: with ~zero service time the engine must hit
    /// its offered rate and classify ops per the mix.
    struct NoopMap;
    struct NoopSession;
    impl MapSession for NoopSession {
        fn insert(&mut self, _: u64, _: u64) -> bool {
            true
        }
        fn upsert(&mut self, _: u64, _: u64) -> Option<u64> {
            None
        }
        fn delete(&mut self, _: &u64) -> bool {
            false
        }
        fn get(&mut self, _: &u64) -> Option<u64> {
            None
        }
        fn range_scan(&mut self, _: &u64, _: &u64) -> usize {
            0
        }
    }
    impl ConcurrentMap for NoopMap {
        type Session<'a> = NoopSession;
        fn pin(&self) -> NoopSession {
            NoopSession
        }
        fn capabilities(&self) -> Caps {
            Caps::all()
        }
        fn name(&self) -> &'static str {
            "noop-map"
        }
    }

    #[test]
    fn open_loop_hits_offered_rate_on_a_fast_map() {
        let cfg = OpenLoopConfig {
            threads: 1,
            target_rate: 5_000.0,
            duration: Duration::from_millis(300),
            key_dist: KeyDist::uniform(128),
            mix: Mix::new(25, 25, 50, 0, 0),
            prefill_fraction: 0.0,
            seed: 3,
            interval_log: None,
        };
        let m = run_open_loop(&NoopMap, &cfg).unwrap();
        assert_eq!(m.name, "noop-map");
        assert_eq!(m.offered_rate, 5_000.0);
        // ~1500 arrivals scheduled; all should execute on a no-op map.
        assert!(
            m.total_ops >= 1_200 && m.total_ops <= 1_600,
            "op count off the schedule: {}",
            m.total_ops
        );
        let ratio = m.achieved_rate / m.offered_rate;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "achieved/offered = {ratio} (achieved {})",
            m.achieved_rate
        );
        // All three mixed classes sampled, none spurious.
        let labels: Vec<&str> = m.classes.iter().map(|c| c.class.as_str()).collect();
        assert_eq!(labels, vec!["insert", "delete", "find"]);
        assert_eq!(
            m.classes.iter().map(|c| c.count).sum::<u64>(),
            m.total_ops,
            "every op lands in exactly one class histogram"
        );
        for c in &m.classes {
            assert!(c.p50_ns <= c.p99_ns && c.p99_ns <= c.p999_ns && c.p999_ns <= c.max_ns);
        }
    }

    #[test]
    fn interval_log_appends_per_interval_rows() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "pnbbst_interval_log_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = OpenLoopConfig {
            threads: 1,
            target_rate: 4_000.0,
            duration: Duration::from_millis(450),
            key_dist: KeyDist::uniform(128),
            mix: Mix::new(25, 25, 50, 0, 0),
            prefill_fraction: 0.0,
            seed: 11,
            interval_log: Some(IntervalLogConfig::with_interval(
                &path,
                Duration::from_millis(100),
            )),
        };
        let m = run_open_loop(&NoopMap, &cfg).unwrap();
        let text = std::fs::read_to_string(&path).expect("interval log written");
        let _ = std::fs::remove_file(&path);
        let rows: Vec<&str> = text.lines().collect();
        // 450 ms at a 100 ms interval: at least 3 full intervals plus
        // the final partial row (scheduler jitter may drop one).
        assert!(rows.len() >= 3, "expected >=3 interval rows, got {text:?}");
        let mut total_rate_ops = 0.0f64;
        let mut prev_t = 0.0f64;
        for row in &rows {
            assert!(row.starts_with('{') && row.ends_with('}'), "bad row {row}");
            for field in [
                "\"t_secs\"",
                "\"achieved_rate\"",
                "\"p50_ns\"",
                "\"p99_ns\"",
            ] {
                assert!(row.contains(field), "{field} missing from {row}");
            }
            let t: f64 = row
                .split("\"t_secs\": ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(t > prev_t, "t_secs must be increasing in {text:?}");
            let rate: f64 = row
                .split("\"achieved_rate\": ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            total_rate_ops += rate * (t - prev_t);
            prev_t = t;
        }
        // The per-interval rates integrate back to roughly the run's
        // completed op count (flush timing makes the edges fuzzy).
        let recovered = total_rate_ops;
        assert!(
            recovered >= 0.5 * m.total_ops as f64 && recovered <= 1.5 * m.total_ops as f64,
            "interval rows integrate to {recovered}, run completed {}",
            m.total_ops
        );
    }

    #[test]
    fn open_loop_checks_capabilities_up_front() {
        struct NoUpsert;
        impl ConcurrentMap for NoUpsert {
            type Session<'a> = NoopSession;
            fn pin(&self) -> NoopSession {
                NoopSession
            }
            fn capabilities(&self) -> Caps {
                Caps::point_ops()
            }
            fn name(&self) -> &'static str {
                "no-upsert"
            }
        }
        let cfg = OpenLoopConfig::new(
            1,
            1_000.0,
            Duration::from_millis(10),
            KeyDist::uniform(16),
            Mix::upsert_heavy(),
        );
        assert_eq!(
            run_open_loop(&NoUpsert, &cfg).unwrap_err(),
            CapabilityError::Upsert {
                structure: "no-upsert"
            }
        );
    }
}
