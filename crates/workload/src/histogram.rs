//! HDR-style log-linear latency histogram with per-thread sharding.
//!
//! The old [`LatencyHistogram`](crate::LatencyHistogram) used one-octave
//! (power-of-two) buckets: cheap, but its resolution is a factor of two,
//! so p99 and p999 frequently collapse into the same bucket and any
//! reported percentile can overestimate by up to 2×. This module is the
//! replacement for all new measurement code: the classic HdrHistogram
//! bucket layout (Gil Tene's design, as used by `hdrhistogram` and
//! cql-stress) — logarithmic *buckets*, each subdivided into 64 linear
//! *sub-buckets* — giving a guaranteed relative error of at most 1/64
//! (≈1.6%, i.e. ~2 significant digits) at every magnitude from 1 ns to
//! beyond 2⁶³ ns, in a fixed 3 776-slot table (~30 KiB).
//!
//! Recording is an index computation plus one increment, cheap enough
//! for per-operation use on the open-loop hot path. Each worker thread
//! records into its own histogram (no shared cache lines on the hot
//! path); [`ShardedHistogram`] owns one shard per thread and merges them
//! at reporting points — mid-run interval reports and the final summary
//! both read a merge, never a live shard.

use std::sync::Mutex;

/// log₂ of the linear sub-bucket half count (64 sub-buckets of
/// distinct resolution per bucket).
const SUB_HALF_MAGNITUDE: u32 = 6;
/// Sub-buckets whose resolution is unique to their bucket (the lower 64
/// of each bucket's 128 overlap the previous bucket's range).
const SUB_HALF_COUNT: usize = 1 << SUB_HALF_MAGNITUDE; // 64
/// Total linear subdivisions of the first bucket.
const SUB_COUNT: usize = SUB_HALF_COUNT * 2; // 128
/// Mask selecting a value's sub-bucket within bucket 0.
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64; // 127
/// Number of power-of-two buckets needed to span all of `u64`.
const BUCKET_COUNT: usize = 64 - SUB_HALF_MAGNITUDE as usize - 1; // 57
/// Backing-array length: bucket 0 contributes 128 slots, each further
/// bucket 64 more; bucket 57 tops out above 2⁶³ so every `u64` indexes
/// in range.
const COUNTS_LEN: usize = (BUCKET_COUNT + 2) * SUB_HALF_COUNT; // 3776

/// An HDR-style log-linear histogram of nanosecond values.
///
/// Values of any `u64` magnitude are recorded with ≤1/64 (~1.6%)
/// relative error. Percentiles report the *highest value equivalent* to
/// the bucket holding the requested rank (the HdrHistogram convention),
/// capped at the true recorded maximum.
#[derive(Clone, Debug)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HdrHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            counts: vec![0; COUNTS_LEN],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the slot counting `v`.
    #[inline]
    fn index_for(v: u64) -> usize {
        // Bucket = how far v's magnitude exceeds the linear range of
        // bucket 0 (the `| SUB_MASK` makes small values land in
        // bucket 0 without a branch).
        let pow = 63 - (v | SUB_MASK).leading_zeros();
        let bucket = (pow - SUB_HALF_MAGNITUDE) as usize;
        // Sub-bucket: the top 7 significant bits of v. For bucket 0 this
        // is v itself (0..128); for bucket b it lands in 64..128.
        let sub = (v >> bucket) as usize;
        bucket * SUB_HALF_COUNT + sub
    }

    /// Lowest and highest value mapping to slot `idx` (the slot's
    /// equivalent range).
    #[inline]
    fn range_for(idx: usize) -> (u64, u64) {
        let (bucket, sub) = if idx < SUB_COUNT {
            (0usize, idx)
        } else {
            let bucket = idx / SUB_HALF_COUNT - 1;
            (bucket, idx - bucket * SUB_HALF_COUNT)
        };
        let lo = (sub as u64) << bucket;
        // Add (size - 1), not (size) - 1: the top slot's `lo + size` is
        // exactly 2^64 and would overflow before the subtraction.
        let hi = lo + ((1u64 << bucket) - 1);
        (lo, hi)
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[Self::index_for(v)] += n;
        self.total += n;
        if v > self.max {
            self.max = v;
        }
        if v < self.min {
            self.min = v;
        }
    }

    /// Record a [`std::time::Duration`] as nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Merge `other` into `self`.
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The samples recorded in `self` but not in `earlier` — the
    /// per-interval histogram between two cumulative snapshots of the
    /// same recording stream (the interval-log reporter's primitive).
    ///
    /// `earlier` must be a previous snapshot of `self`'s stream (its
    /// per-slot counts never exceed `self`'s); counts are subtracted
    /// slot-wise with saturation so a violated precondition degrades to
    /// an undercount instead of wrapping. `min`/`max` of the interval
    /// are not recoverable from two cumulative snapshots, so the result
    /// inherits `self`'s — percentiles stay correct to bucket
    /// resolution, but the interval's `max()` may overestimate.
    pub fn diff(&self, earlier: &HdrHistogram) -> HdrHistogram {
        let mut out = HdrHistogram::new();
        let mut total = 0u64;
        for (o, (a, b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *o = a.saturating_sub(*b);
            total += *o;
        }
        out.total = total;
        if total > 0 {
            out.min = self.min;
            out.max = self.max;
        }
        out
    }

    /// Reset to empty, keeping the allocation (the sharded flush path).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Value at quantile `q ∈ [0, 1]`, or `None` if empty.
    ///
    /// Returns the highest value equivalent to the slot containing the
    /// `⌈q·total⌉`-th smallest sample, capped at the recorded maximum —
    /// so the result is never below the true quantile and overshoots it
    /// by at most 1/64 (~1.6%).
    pub fn value_at_percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::range_for(idx);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience: (p50, p99, p999) in the recorded unit.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.value_at_percentile(0.50).unwrap_or(0),
            self.value_at_percentile(0.99).unwrap_or(0),
            self.value_at_percentile(0.999).unwrap_or(0),
        )
    }
}

/// Per-thread sharded recording: one shard (a vector of per-class
/// [`HdrHistogram`]s) per worker thread, each behind its own mutex.
///
/// The contract that keeps the hot path clean: a worker records into
/// *thread-local* histograms and [`flush`](ShardedHistogram::flush)es
/// them into its own shard at batch boundaries (the lock is touched a
/// few times per thousand operations, and only ever contended by a
/// concurrent reporter). [`merged`](ShardedHistogram::merged) can then
/// assemble a consistent cross-thread view at any reporting interval —
/// mid-run or final — without stopping the workers.
pub struct ShardedHistogram {
    shards: Vec<Mutex<Vec<HdrHistogram>>>,
    classes: usize,
}

impl ShardedHistogram {
    /// One shard per worker thread, `classes` histograms per shard.
    pub fn new(threads: usize, classes: usize) -> Self {
        ShardedHistogram {
            shards: (0..threads)
                .map(|_| Mutex::new((0..classes).map(|_| HdrHistogram::new()).collect()))
                .collect(),
            classes,
        }
    }

    /// Number of per-shard classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Merge thread `tid`'s local per-class histograms into its shard
    /// and clear the locals (called by the owning worker at batch
    /// boundaries).
    pub fn flush(&self, tid: usize, local: &mut [HdrHistogram]) {
        debug_assert_eq!(local.len(), self.classes);
        let mut shard = self.shards[tid].lock().unwrap();
        for (dst, src) in shard.iter_mut().zip(local.iter_mut()) {
            if !src.is_empty() {
                dst.merge(src);
                src.clear();
            }
        }
    }

    /// Merge every shard into one histogram per class — the reporting
    /// view. Safe to call while workers are still recording: each shard
    /// is read under its lock, so the result is a consistent snapshot of
    /// everything flushed so far.
    pub fn merged(&self) -> Vec<HdrHistogram> {
        let mut out: Vec<HdrHistogram> = (0..self.classes).map(|_| HdrHistogram::new()).collect();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (dst, src) in out.iter_mut().zip(shard.iter()) {
                dst.merge(src);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_and_range_agree_across_magnitudes() {
        // Every probed value must land in a slot whose equivalent range
        // contains it, and slot ranges must tile without gaps.
        for shift in 0..63 {
            for near in [0u64, 1, 2, 63, 64, 127] {
                let v = (1u64 << shift).saturating_add(near);
                let idx = HdrHistogram::index_for(v);
                let (lo, hi) = HdrHistogram::range_for(idx);
                assert!(lo <= v && v <= hi, "v={v} idx={idx} range=({lo},{hi})");
            }
        }
        assert!(HdrHistogram::index_for(u64::MAX) < COUNTS_LEN);
        // Tiling: consecutive slots abut exactly.
        for idx in 0..COUNTS_LEN - 1 {
            let (_, hi) = HdrHistogram::range_for(idx);
            let (lo_next, _) = HdrHistogram::range_for(idx + 1);
            if lo_next > 0 {
                assert_eq!(hi + 1, lo_next, "gap between slots {idx} and {}", idx + 1);
            }
        }
    }

    #[test]
    fn low_values_are_exact() {
        // Bucket 0 is fully linear: values below 128 are recorded with
        // zero error.
        let mut h = HdrHistogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_percentile(0.0), Some(0));
        assert_eq!(h.value_at_percentile(1.0), Some(127));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
    }

    #[test]
    fn p99_and_p999_distinguish_within_one_octave() {
        // The one-octave histogram collapsed these to the same bucket;
        // the log-linear layout must keep them apart.
        let mut h = HdrHistogram::new();
        for i in 0..1_000u64 {
            h.record(1_024 + i); // all within [2^10, 2^11)
        }
        let p99 = h.value_at_percentile(0.99).unwrap();
        let p999 = h.value_at_percentile(0.999).unwrap();
        assert!(p999 > p99, "p999={p999} vs p99={p99}");
        // And both are within the promised 1/64 of the exact answer.
        assert!((p99 as i64 - 2_013).unsigned_abs() <= 2_013 / 64 + 1);
        assert!((p999 as i64 - 2_022).unsigned_abs() <= 2_022 / 64 + 1);
    }

    #[test]
    fn merge_and_clear_round_trip() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        a.record_n(100, 5);
        b.record_n(1_000_000, 3);
        a.merge(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 100);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.value_at_percentile(0.5), None);
        assert_eq!(a.max(), 0);
    }

    #[test]
    fn diff_recovers_the_interval_between_snapshots() {
        // Simulate two reporting intervals over one cumulative stream.
        let mut cum = HdrHistogram::new();
        cum.record_n(100, 10);
        cum.record_n(5_000, 2);
        let snap1 = cum.clone();
        cum.record_n(100, 3);
        cum.record_n(9_000_000, 4);
        let interval = cum.diff(&snap1);
        assert_eq!(interval.len(), 7);
        // The new samples dominate the interval's upper percentiles.
        let p99 = interval.value_at_percentile(0.99).unwrap();
        assert!(p99 >= 9_000_000, "interval p99 {p99} missed the new tail");
        // Diff against itself is empty.
        assert!(cum.diff(&cum).is_empty());
        // Diff from an empty snapshot is the whole stream.
        assert_eq!(cum.diff(&HdrHistogram::new()).len(), cum.len());
    }

    #[test]
    fn record_duration_saturates() {
        let mut h = HdrHistogram::new();
        h.record_duration(std::time::Duration::from_nanos(500));
        h.record_duration(std::time::Duration::from_secs(u64::MAX)); // > u64 ns
        assert_eq!(h.len(), 2);
        // Highest-equivalent-value convention: 500 lands in the [500,
        // 503] slot, so the report is the slot's upper bound — within
        // the promised 1/64.
        let got = h.value_at_percentile(0.25).unwrap();
        assert!((500..=500 + 500 / 64 + 1).contains(&got), "got {got}");
    }

    #[test]
    fn sharded_flush_and_merge_mid_run() {
        let sh = ShardedHistogram::new(2, 3);
        let mut local0: Vec<HdrHistogram> = (0..3).map(|_| HdrHistogram::new()).collect();
        let mut local1: Vec<HdrHistogram> = (0..3).map(|_| HdrHistogram::new()).collect();
        local0[0].record(10);
        local0[2].record(30);
        local1[0].record(1_000);
        sh.flush(0, &mut local0);
        assert!(local0.iter().all(|h| h.is_empty()), "flush clears locals");
        sh.flush(1, &mut local1);
        // First reporting interval.
        let m = sh.merged();
        assert_eq!(m[0].len(), 2);
        assert_eq!(m[1].len(), 0);
        assert_eq!(m[2].len(), 1);
        // Workers keep recording; a later interval sees the union.
        local1[1].record(7);
        sh.flush(1, &mut local1);
        let m = sh.merged();
        assert_eq!(m[1].len(), 1);
        assert_eq!(m[0].len(), 2, "earlier flushes retained");
    }

    /// Exact quantile oracle on a sorted vector: value of the
    /// `⌈q·n⌉`-th smallest sample.
    fn oracle(sorted: &[u64], q: f64) -> u64 {
        let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The acceptance bound from the module docs: the reported
        // percentile never undershoots the exact order statistic and
        // overshoots by at most 1/64 of its value (+1 for integer
        // truncation).
        #[test]
        fn hdr_percentiles_match_sorted_oracle(
            values in prop::collection::vec(0u64..3_000_000_000, 1..300)
        ) {
            let mut h = HdrHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values;
            values.sort_unstable();
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let exact = oracle(&values, q);
                let got = h.value_at_percentile(q).unwrap();
                prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
                prop_assert!(
                    got <= exact + exact / 64 + 1,
                    "q={q}: got {got} exceeds {exact} by more than 1/64"
                );
            }
            prop_assert_eq!(h.len(), values.len() as u64);
            prop_assert_eq!(h.max(), *values.last().unwrap());
            prop_assert_eq!(h.min(), values[0]);
        }

        // Merging two histograms must agree with recording everything
        // into one.
        #[test]
        fn hdr_merge_equals_union(
            a in prop::collection::vec(0u64..1_000_000, 0..100),
            b in prop::collection::vec(0u64..1_000_000, 0..100)
        ) {
            let mut ha = HdrHistogram::new();
            let mut hb = HdrHistogram::new();
            let mut hu = HdrHistogram::new();
            for &v in &a { ha.record(v); hu.record(v); }
            for &v in &b { hb.record(v); hu.record(v); }
            ha.merge(&hb);
            prop_assert_eq!(ha.len(), hu.len());
            for q in [0.25, 0.5, 0.75, 0.99] {
                prop_assert_eq!(ha.value_at_percentile(q), hu.value_at_percentile(q));
            }
        }
    }
}
