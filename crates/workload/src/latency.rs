//! Per-operation latency measurement (tail-latency lens).
//!
//! Throughput hides exactly the effect wait-freedom exists to produce:
//! *bounded individual operation time*. A lock-based map can post great
//! averages while a scan stalls every writer behind it (and vice versa);
//! a wait-free scan's p99 stays flat no matter what updaters do. This
//! module provides the legacy one-octave [`LatencyHistogram`] (kept as
//! a compat surface) and a closed-loop driver that records
//! per-operation-type latency percentiles under a mixed load — the E8
//! extension experiment. The driver itself records into
//! [`HdrHistogram`] (~1.6% relative error); for latency-*honest* tails
//! under a fixed offered rate, use [`crate::run_open_loop`], which also
//! charges queueing delay instead of silently omitting it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::dist::KeyDist;
use crate::histogram::HdrHistogram;
use crate::mix::{Mix, Op};
use crate::runner::prefill;
use crate::schedule::CLASS_LABELS;
use crate::seed;
use crate::{CapabilityError, ConcurrentMap, MapSession};

/// Number of log₂ buckets: covers 1 ns … ~18 s.
const BUCKETS: usize = 64;

/// A fixed-size logarithmic histogram of nanosecond latencies.
///
/// Recording is a single increment into a power-of-two bucket; merging
/// and percentile extraction happen offline. Resolution is one octave,
/// which is plenty for p50/p99/p999 comparisons across structures.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Record one latency.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Approximate percentile in nanoseconds, or `None` if empty. `q`
    /// in `[0, 1]`.
    ///
    /// Interpolates linearly *within* the target bucket by the rank's
    /// position among the bucket's samples. The previous version
    /// returned the bucket's upper bound `2^(i+1)-1` unconditionally —
    /// an up-to-2× overestimate with these one-octave buckets, and it
    /// made p99 and p999 collide whenever both ranks landed in the same
    /// bucket. Interpolation keeps them distinguishable (they map to
    /// different intra-bucket positions) at no extra recording cost.
    /// New code should prefer [`crate::HdrHistogram`], which bounds the
    /// error structurally instead of assuming in-bucket uniformity.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Bucket i spans [2^i, 2^(i+1)-1] ns (bucket 0 also
                // holds the sub-1ns clamp).
                let lo = if i == 0 { 1 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                // rank is the (rank - seen)-th of the c samples here;
                // assume they spread uniformly across the octave.
                let frac = (rank - seen) as f64 / c as f64;
                return Some(lo + ((hi - lo) as f64 * frac) as u64);
            }
            seen += c;
        }
        Some(u64::MAX)
    }

    /// Convenience: (p50, p99, p999) in nanoseconds.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50).unwrap_or(0),
            self.percentile(0.99).unwrap_or(0),
            self.percentile(0.999).unwrap_or(0),
        )
    }
}

/// Latency percentiles for each operation class.
#[derive(Clone, Debug, Serialize)]
pub struct LatencyReport {
    /// Structure name.
    pub name: String,
    /// Worker thread count.
    pub threads: usize,
    /// Samples per class: (class, count, p50 ns, p99 ns, p999 ns).
    pub classes: Vec<(String, u64, u64, u64, u64)>,
}

/// Run a mixed workload for `duration` on `threads` workers, recording
/// per-class operation latencies. The map is prefilled to 50%. The mix
/// is checked against the structure's capabilities before anything runs.
pub fn run_latency<M: ConcurrentMap>(
    map: &M,
    threads: usize,
    duration: Duration,
    key_dist: &KeyDist,
    mix: Mix,
    seed: u64,
) -> Result<LatencyReport, CapabilityError> {
    map.capabilities().check(&mix, map.name())?;
    prefill(map, key_dist.key_space(), 0.5, seed);
    let stop = AtomicBool::new(false);
    let start_line = std::sync::Barrier::new(threads + 1);

    // One histogram per class: ins/ups/del/find/scan. Recording runs on
    // the HDR histogram (≤1/64 relative error) rather than the
    // one-octave compat histogram.
    let per_thread: Vec<[HdrHistogram; 5]> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let stop = &stop;
                let start_line = &start_line;
                let dist = key_dist.clone();
                let wseed = seed::worker_seed(seed, tid as u64);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(wseed);
                    let mut hists: [HdrHistogram; 5] = std::array::from_fn(|_| HdrHistogram::new());
                    let mut session = map.pin();
                    start_line.wait();
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..32 {
                            let k = dist.sample(&mut rng);
                            let op = mix.sample(&mut rng);
                            let t0 = Instant::now();
                            let class = match op {
                                Op::Insert => {
                                    std::hint::black_box(session.insert(k, k));
                                    0
                                }
                                Op::Upsert => {
                                    std::hint::black_box(session.upsert(k, k));
                                    1
                                }
                                Op::Delete => {
                                    std::hint::black_box(session.delete(&k));
                                    2
                                }
                                Op::Find => {
                                    std::hint::black_box(session.get(&k));
                                    3
                                }
                                Op::RangeScan => {
                                    let hi = k.saturating_add(mix.range_width.saturating_sub(1));
                                    std::hint::black_box(session.range_scan(&k, &hi));
                                    4
                                }
                            };
                            hists[class].record_duration(t0.elapsed());
                        }
                        // Outside the timing windows: reclamation catch-up.
                        session.refresh();
                    }
                    hists
                })
            })
            .collect();
        start_line.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut merged: [HdrHistogram; 5] = std::array::from_fn(|_| HdrHistogram::new());
    for hs in &per_thread {
        for (m, h) in merged.iter_mut().zip(hs.iter()) {
            m.merge(h);
        }
    }
    let classes = merged
        .iter()
        .zip(CLASS_LABELS)
        .filter(|(h, _)| !h.is_empty())
        .map(|(h, label)| {
            let (p50, p99, p999) = h.summary();
            (label.to_string(), h.len(), p50, p99, p999)
        })
        .collect();
    Ok(LatencyReport {
        name: map.name().to_string(),
        threads,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        // 90 fast ops (~100ns) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(Duration::from_nanos(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.len(), 100);
        let p50 = h.percentile(0.50).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 < 1_000, "p50 should land in the fast bucket: {p50}");
        assert!(
            p99 >= 1_000_000 / 2,
            "p99 should land in the slow bucket: {p99}"
        );
        assert!(p50 <= p99);
    }

    #[test]
    fn p99_and_p999_no_longer_collide_within_one_bucket() {
        // Regression: with upper-bound reporting, any two ranks landing
        // in the same octave returned the identical value, so p99 ==
        // p999 for perfectly distinguishable inputs (and both were up
        // to 2× too high). 1000 samples spread over one octave must
        // yield distinct, ordered percentiles.
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_nanos(1024 + i));
        }
        let p50 = h.percentile(0.50).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        let p999 = h.percentile(0.999).unwrap();
        assert!(p50 < p99, "p50 {p50} vs p99 {p99}");
        assert!(p99 < p999, "p99 {p99} vs p999 {p999}");
        // Interpolated values stay inside the bucket's octave…
        assert!((1024..=2047).contains(&p99));
        // …and near where the rank actually sits, instead of pinned to
        // the 2047 upper bound.
        assert!(
            (1900..=2047).contains(&p999),
            "p999 should sit high in the octave: {p999}"
        );
        assert!(p50 < 1600, "p50 should sit mid-octave: {p50}");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn extreme_durations_clamp_into_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(0)); // clamped to 1ns
        h.record(Duration::from_secs(40_000)); // beyond top bucket
        assert_eq!(h.len(), 2);
        assert!(h.percentile(1.0).is_some());
    }

    #[test]
    fn latency_driver_produces_all_classes() {
        use crate::Caps;
        use std::collections::BTreeMap;
        use std::sync::Mutex;
        struct M(Mutex<BTreeMap<u64, u64>>);
        struct S<'a>(&'a M);
        impl MapSession for S<'_> {
            fn insert(&mut self, k: u64, v: u64) -> bool {
                self.0 .0.lock().unwrap().insert(k, v).is_none()
            }
            fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
                self.0 .0.lock().unwrap().insert(k, v)
            }
            fn delete(&mut self, k: &u64) -> bool {
                self.0 .0.lock().unwrap().remove(k).is_some()
            }
            fn get(&mut self, k: &u64) -> Option<u64> {
                self.0 .0.lock().unwrap().get(k).copied()
            }
            fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
                self.0 .0.lock().unwrap().range(*lo..=*hi).count()
            }
        }
        impl ConcurrentMap for M {
            type Session<'a> = S<'a>;
            fn pin(&self) -> S<'_> {
                S(self)
            }
            fn capabilities(&self) -> Caps {
                Caps::all()
            }
            fn name(&self) -> &'static str {
                "test-map"
            }
        }
        let m = M(Mutex::new(BTreeMap::new()));
        let rep = run_latency(
            &m,
            2,
            Duration::from_millis(60),
            &KeyDist::uniform(512),
            Mix::with_ranges(16),
            9,
        )
        .expect("caps cover the mix");
        assert_eq!(rep.threads, 2);
        assert_eq!(rep.classes.len(), 4, "the four mixed classes sampled");
        for (label, count, p50, p99, p999) in &rep.classes {
            assert!(*count > 0, "{label} unsampled");
            assert!(p50 <= p99 && p99 <= p999, "{label} percentiles ordered");
        }
    }
}
