//! # workload — setbench-style workload generation and measurement
//!
//! The evaluation substrate for the PNB-BST reproduction: the authors
//! evaluated with a setbench-style driver (prefilled key space, per-thread
//! operation mixes, timed throughput measurement); this crate rebuilds
//! that driver in Rust.
//!
//! Pieces:
//!
//! * [`ConcurrentMap`] — the uniform interface the harness drives
//!   (implemented by adapters in the bench crate for every structure
//!   under test).
//! * [`Mix`] — an operation mix (insert/delete/find/range-query
//!   percentages and range width).
//! * [`KeyDist`] — uniform or Zipfian key selection over a key space.
//! * [`run_throughput`] — the timed multi-threaded driver; returns
//!   per-operation counts and aggregate throughput.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod latency;
pub mod mix;
pub mod runner;

pub use dist::{KeyDist, Zipf};
pub use latency::{run_latency, LatencyHistogram, LatencyReport};
pub use mix::{Mix, Op};
pub use runner::{
    prefill, run_fixed_ops, run_scan_updater, run_throughput, Measurement, RunConfig,
    ScanUpdaterConfig, ScanUpdaterMeasurement,
};

/// The uniform map interface driven by the harness.
///
/// All structures under test expose set-semantics `insert` (no replace),
/// `delete`, `get`, and a closed-interval `range_scan`. Structures
/// without linearizable range queries (NB-BST) report
/// [`supports_range_scan`](ConcurrentMap::supports_range_scan) = `false`
/// and are excluded from range-query mixes by the harness.
pub trait ConcurrentMap: Send + Sync {
    /// Insert `k → v`; `true` iff `k` was absent.
    fn insert(&self, k: u64, v: u64) -> bool;
    /// Remove `k`; `true` iff it was present.
    fn delete(&self, k: &u64) -> bool;
    /// Lookup.
    fn get(&self, k: &u64) -> Option<u64>;
    /// Closed-interval range query; returns the number of matches
    /// (the harness measures traversal + materialization cost without
    /// retaining results).
    fn range_scan(&self, lo: &u64, hi: &u64) -> usize;
    /// Whether `range_scan` is supported and linearizable.
    fn supports_range_scan(&self) -> bool {
        true
    }
    /// Structure name for reports.
    fn name(&self) -> &'static str;
}
