//! # workload — setbench-style workload generation and measurement
//!
//! The evaluation substrate for the PNB-BST reproduction: the authors
//! evaluated with a setbench-style driver (prefilled key space, per-thread
//! operation mixes, timed throughput measurement); this crate rebuilds
//! that driver in Rust.
//!
//! Pieces:
//!
//! * [`ConcurrentMap`] / [`MapSession`] — the uniform, *guard-aware*
//!   interface the harness drives: each worker thread opens one pinned
//!   session and runs every operation through it (implemented by
//!   adapters in the bench crate for every structure under test).
//! * [`Caps`] / [`CapabilityError`] — typed capability declarations;
//!   mixes that ask for unsupported operations are rejected at
//!   configuration time instead of panicking mid-run.
//! * [`Mix`] — an operation mix (insert/delete/find/range-query
//!   percentages and range width).
//! * [`KeyDist`] — uniform, Zipfian, scrambled-Zipfian, or sequential
//!   key selection over a key space.
//! * [`run_throughput`] — the timed closed-loop driver; returns
//!   per-operation counts and aggregate throughput.
//! * [`run_open_loop`] — the open-loop, target-rate driver: arrivals on
//!   a fixed schedule, latency recorded from each op's *intended* start
//!   into an [`HdrHistogram`], so queueing delay is charged to the
//!   structure instead of silently omitted (see the
//!   [`schedule`] module docs on coordinated omission).
//! * [`seed`] — the one splitmix64-based seed spawner every driver
//!   derives per-thread RNG streams from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod dist;
pub mod histogram;
pub mod json;
pub mod latency;
pub mod mix;
pub mod runner;
pub mod schedule;
pub mod seed;

pub use batch::{
    run_batched_throughput, BatchOp, BatchReport, BatchedMeasurement, BatchedRunConfig,
};
pub use dist::{KeyDist, ScrambledZipf, Sequential, Zipf};
pub use histogram::{HdrHistogram, ShardedHistogram};
pub use latency::{run_latency, LatencyHistogram, LatencyReport};
pub use mix::{Mix, Op};
pub use runner::{
    disjoint_slices, prefill, run_fixed_ops, run_scan_updater, run_throughput, Measurement,
    RunConfig, ScanUpdaterConfig, ScanUpdaterMeasurement,
};
pub use schedule::{
    run_open_loop, IntervalLogConfig, OpSchedule, OpenLoopClass, OpenLoopConfig,
    OpenLoopMeasurement,
};

/// The uniform map interface driven by the harness: a *guard-aware*
/// factory of per-thread [`MapSession`]s plus a typed capability
/// declaration.
///
/// Two design points, both motivated by measurement fidelity:
///
/// * **Sessions, not per-op calls.** Each worker thread calls
///   [`pin`](ConcurrentMap::pin) once and drives every operation through
///   the returned session. Epoch-based structures amortize their guard
///   across the whole batch (the drivers call
///   [`MapSession::refresh`] between batches so reclamation still
///   advances); lock-based structures return a trivial borrow. Per-op
///   pin/drop never lands on the measured hot path.
/// * **Typed capabilities, not panics.** A structure declares what it
///   supports via [`capabilities`](ConcurrentMap::capabilities); drivers
///   check the declaration against the operation mix *at configuration
///   time* and return a [`CapabilityError`] instead of hitting an
///   `unreachable!` mid-run (NB-BST famously has no linearizable range
///   scan — a range mix over it must be rejected up front).
pub trait ConcurrentMap: Send + Sync {
    /// The per-thread session type; borrows the map for `'a`.
    type Session<'a>: MapSession
    where
        Self: 'a;

    /// Open a session (pin a guard, if the structure uses one). Called
    /// once per worker thread, outside the measured loop.
    fn pin(&self) -> Self::Session<'_>;

    /// What this structure supports; checked by the drivers before any
    /// operation runs.
    fn capabilities(&self) -> Caps;

    /// Structure name for reports.
    fn name(&self) -> &'static str;
}

/// One thread's pinned session on a [`ConcurrentMap`]: the operation
/// surface the measured loops drive. Methods take `&mut self` because a
/// session is thread-exclusive by construction.
pub trait MapSession {
    /// Insert `k → v`; `true` iff `k` was absent (set semantics).
    fn insert(&mut self, k: u64, v: u64) -> bool;
    /// Insert or replace `k → v`, returning the displaced value.
    ///
    /// Only driven when [`Caps::upsert`] is declared; structures without
    /// an atomic upsert may emulate (non-linearizably) or ignore, but
    /// must then declare `upsert: false` so no mix ever reaches it.
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64>;
    /// Remove `k`; `true` iff it was present.
    fn delete(&mut self, k: &u64) -> bool;
    /// Lookup.
    fn get(&mut self, k: &u64) -> Option<u64>;
    /// Closed-interval range query; returns the number of matches (the
    /// harness measures traversal cost without retaining results).
    ///
    /// Only driven when [`Caps::range_scan`] is declared.
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize;
    /// Give the structure a chance to re-pin its guard so memory
    /// reclamation can advance; called between operation batches,
    /// outside the per-op timing windows. Default: no-op.
    fn refresh(&mut self) {}

    /// Apply a batch of operations and report how many root-to-leaf
    /// descents it cost. The default falls back to singleton calls
    /// (one descent per op, so `ops_per_descent == 1`) — structures
    /// with a fused batch path override this and declare
    /// [`Caps::batched`].
    fn apply_batch(&mut self, ops: &[BatchOp]) -> BatchReport {
        for op in ops {
            match *op {
                BatchOp::Get(k) => {
                    std::hint::black_box(self.get(&k));
                }
                BatchOp::Insert(k, v) => {
                    std::hint::black_box(self.insert(k, v));
                }
                BatchOp::Upsert(k, v) => {
                    std::hint::black_box(self.upsert(k, v));
                }
                BatchOp::Delete(k) => {
                    std::hint::black_box(self.delete(&k));
                }
            }
        }
        BatchReport {
            ops: ops.len() as u64,
            root_descents: ops.len() as u64,
        }
    }
}

/// Typed capability declaration of a structure under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Caps {
    /// Consistent closed-interval range queries: linearizable for a
    /// single structure, or a documented weaker-but-principled model
    /// for composites (the sharded front-end's scans are linearizable
    /// *per shard* and prefix-consistent across shards — see the
    /// declaring adapter's docs). What the flag rules out is the
    /// no-guarantee case: NB-BST's quiescent dump can tear arbitrarily
    /// and must declare `false`.
    pub range_scan: bool,
    /// Atomic insert-or-replace.
    pub upsert: bool,
    /// Point-in-time snapshots (informational; no mix drives it yet).
    pub snapshot: bool,
    /// Native batched operations (`multi_get`/`apply_batch` with a
    /// shared descent prefix). Every structure can *run* a batch — the
    /// [`MapSession::apply_batch`] default falls back to singleton
    /// calls — so this flag marks structures whose batching is an
    /// actual fused hot path, which is what experiment E13 sweeps.
    pub batched: bool,
}

impl Caps {
    /// Everything the harness can drive.
    pub const fn all() -> Self {
        Caps {
            range_scan: true,
            upsert: true,
            snapshot: true,
            batched: true,
        }
    }

    /// Point operations only (insert/delete/get) — e.g. NB-BST.
    pub const fn point_ops() -> Self {
        Caps {
            range_scan: false,
            upsert: false,
            snapshot: false,
            batched: false,
        }
    }

    /// Check a mix against this declaration. `structure` names the map
    /// in the error.
    pub fn check(&self, mix: &Mix, structure: &'static str) -> Result<(), CapabilityError> {
        if mix.uses_ranges() && !self.range_scan {
            return Err(CapabilityError::RangeScan { structure });
        }
        if mix.uses_upserts() && !self.upsert {
            return Err(CapabilityError::Upsert { structure });
        }
        Ok(())
    }
}

/// A mix asked for an operation the structure does not support —
/// detected at configuration time, before any operation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapabilityError {
    /// The mix contains range queries but the structure has no
    /// linearizable range scan.
    RangeScan {
        /// Name of the offending structure.
        structure: &'static str,
    },
    /// The mix contains upserts but the structure has no atomic
    /// insert-or-replace.
    Upsert {
        /// Name of the offending structure.
        structure: &'static str,
    },
}

impl std::fmt::Display for CapabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapabilityError::RangeScan { structure } => write!(
                f,
                "{structure} does not support linearizable range scans; \
                 exclude it from range-query mixes"
            ),
            CapabilityError::Upsert { structure } => write!(
                f,
                "{structure} does not support atomic upsert; \
                 exclude it from upsert mixes"
            ),
        }
    }
}

impl std::error::Error for CapabilityError {}
