//! # nb-bst — the original non-blocking binary search tree
//!
//! Implementation of
//!
//! > Faith Ellen, Panagiota Fatourou, Eric Ruppert, Franck van Breugel.
//! > *Non-blocking Binary Search Trees.* PODC 2010.
//!
//! This is the substrate that `pnb-bst` (Fatourou & Ruppert's persistent
//! tree with wait-free range queries) builds on, and the natural baseline
//! for measuring the *cost of persistence*: NB-BST has no `prev`
//! pointers, no sequence numbers, no handshake with scanners — and
//! consequently no linearizable range queries or snapshots at all.
//!
//! Provided operations: lock-free [`insert`](NbBst::insert),
//! [`delete`](NbBst::delete) / [`remove`](NbBst::remove), and
//! search-only [`get`](NbBst::get) / [`contains`](NbBst::contains) that
//! never interfere with updates.
//!
//! ## Relation to the pnb-bst crate
//!
//! | aspect | NB-BST (this crate) | PNB-BST |
//! |---|---|---|
//! | update coordination | flag/mark + IInfo/DInfo records | freeze (flag/mark) + unified Info records |
//! | delete | relinks the sibling | *copies* the sibling (avoids prev/child cycles) |
//! | unflagging | explicit unflag CAS back to `Clean` | implicit: `Commit`/`Abort` state makes words unfrozen |
//! | versioning | none | `prev` pointers + per-node sequence numbers |
//! | range queries | none | wait-free `RangeScan` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod base;
mod handle;
mod tree;

pub use handle::Handle;
pub use tree::NbBst;
