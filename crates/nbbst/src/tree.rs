//! The NB-BST algorithm (Ellen, Fatourou, Ruppert & van Breugel,
//! PODC 2010): non-blocking `Insert` / `Delete` / `Find` on a
//! leaf-oriented BST using single-word CAS, flagging and marking.
//!
//! This is the structure PNB-BST extends with persistence; it serves as
//! the baseline for measuring the cost of that extension (experiment E5)
//! and as the no-range-query comparator in E1/E2. It has **no** range
//! queries or snapshots — that is the point.
//!
//! Reclamation uses the same epoch + reference-count protocol as
//! `pnb-bst` (see that crate's DESIGN notes): nodes are retired by the
//! winner of the child CAS, operation records are reference-counted by
//! the update words that point at them.

use crossbeam_epoch::{self as epoch, Guard, Shared};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};

use crate::base::{state, DInfo, IInfo, InfoPtr, Node, NodePtr, OpInfo, OpRecord, SKey, UpdWord};

/// The original non-blocking binary search tree (map flavour; `insert`
/// keeps set semantics — no replace).
///
/// # Example
///
/// ```
/// use nb_bst::NbBst;
///
/// let t: NbBst<u32, &str> = NbBst::new();
/// assert!(t.insert(1, "one"));
/// assert!(!t.insert(1, "dup"));
/// assert_eq!(t.get(&1), Some("one"));
/// assert!(t.delete(&1));
/// assert_eq!(t.get(&1), None);
/// ```
pub struct NbBst<K, V> {
    root: NodePtr<K, V>,
}

// SAFETY: all shared mutation is CAS on atomics; K/V cross threads in
// reads and deferred destruction.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for NbBst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NbBst<K, V> {}

impl<K, V> Default for NbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

struct SearchResult<'g, K, V> {
    gp: Shared<'g, Node<K, V>>,
    p: Shared<'g, Node<K, V>>,
    l: Shared<'g, Node<K, V>>,
    pupdate: UpdWord<K, V>,
    gpupdate: UpdWord<K, V>, // meaningful only when gp is non-null
}

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Empty tree: root `∞₂` over sentinel leaves `∞₁`, `∞₂`.
    pub fn new() -> Self {
        let l: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(SKey::Inf1, None)));
        let r: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(SKey::Inf2, None)));
        let root: NodePtr<K, V> = Box::into_raw(Box::new(Node::internal(SKey::Inf2, l, r)));
        NbBst { root }
    }

    fn search<'g>(&self, k: &K, guard: &'g Guard) -> SearchResult<'g, K, V> {
        let null_word = UpdWord {
            state: state::CLEAN,
            info: std::ptr::null(),
        };
        let mut gp: Shared<'g, Node<K, V>> = Shared::null();
        let mut p: Shared<'g, Node<K, V>> = Shared::null();
        let mut gpupdate = null_word;
        let mut pupdate = null_word;
        let mut l: Shared<'g, Node<K, V>> = Shared::from(self.root);
        loop {
            // SAFETY: l is the root or a child read under the guard.
            let l_ref = unsafe { l.deref() };
            if l_ref.leaf {
                break;
            }
            gp = p;
            p = l;
            gpupdate = pupdate;
            pupdate = l_ref.load_update(guard);
            l = l_ref.load_child(l_ref.key.fin_lt(k), guard);
        }
        SearchResult {
            gp,
            p,
            l,
            pupdate,
            gpupdate,
        }
    }

    /// Lookup (the original wait-free-per-traversal `Find`).
    ///
    /// Compat wrapper: pins an epoch guard per call; hot loops should
    /// use a pinned session ([`pin`](Self::pin)).
    pub fn get(&self, k: &K) -> Option<V> {
        let guard = &epoch::pin();
        self.get_in(k, guard)
    }

    pub(crate) fn get_in(&self, k: &K, guard: &Guard) -> Option<V> {
        let s = self.search(k, guard);
        let l = unsafe { s.l.deref() };
        if l.key.fin_eq(k) {
            l.value.clone()
        } else {
            None
        }
    }

    /// Membership test.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn contains(&self, k: &K) -> bool {
        let guard = &epoch::pin();
        self.contains_in(k, guard)
    }

    pub(crate) fn contains_in(&self, k: &K, guard: &Guard) -> bool {
        let s = self.search(k, guard);
        unsafe { s.l.deref() }.key.fin_eq(k)
    }

    /// Insert; `false` if the key is present (no replace).
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn insert(&self, k: K, v: V) -> bool {
        let guard = &epoch::pin();
        self.insert_in(&k, &v, guard)
    }

    pub(crate) fn insert_in(&self, k: &K, v: &V, guard: &Guard) -> bool {
        loop {
            let s = self.search(k, guard);
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.fin_eq(k) {
                return false;
            }
            if s.pupdate.state != state::CLEAN {
                self.help(s.pupdate, guard);
                continue;
            }
            // Build the replacement subtree: new leaf + copy of l under a
            // fresh internal node keyed by the larger key.
            let new_leaf: NodePtr<K, V> =
                Box::into_raw(Box::new(Node::leaf(SKey::Fin(k.clone()), Some(v.clone()))));
            let new_sibling: NodePtr<K, V> =
                Box::into_raw(Box::new(Node::leaf(l_ref.key.clone(), l_ref.value.clone())));
            let k_lt_l = l_ref.key.fin_lt(k);
            let (lc, rc) = if k_lt_l {
                (new_leaf, new_sibling)
            } else {
                (new_sibling, new_leaf)
            };
            let ikey = std::cmp::max(SKey::Fin(k.clone()), l_ref.key.clone());
            let new_internal: NodePtr<K, V> = Box::into_raw(Box::new(Node::internal(ikey, lc, rc)));
            let op: InfoPtr<K, V> = Box::into_raw(Box::new(OpInfo::new(OpRecord::Insert(IInfo {
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                new_internal,
            }))));
            // iflag CAS (increment-before-CAS refcount discipline).
            // Relaxed: pre-publish, the count is creation-owned.
            unsafe { (*op).refs.fetch_add(1, Relaxed) };
            let p_ref = unsafe { s.p.deref() };
            let new_word = Shared::from(op).with_tag(state::IFLAG);
            // Release: publishes the record (and subtree) fields.
            // Acquire failure: the observed word is helped below, so its
            // record fields must be visible.
            match p_ref.update.compare_exchange(
                s.pupdate.shared(),
                new_word,
                Release,
                Acquire,
                guard,
            ) {
                Ok(_) => {
                    self.dec_ref(s.pupdate.info, guard);
                    self.help_insert(op, guard);
                    self.dec_ref(op, guard); // creation reference
                    return true;
                }
                Err(e) => {
                    // Never published: free the record and the subtree.
                    // SAFETY: sole owner of all four allocations.
                    unsafe {
                        drop(Box::from_raw(op as *mut OpInfo<K, V>));
                        drop(Box::from_raw(new_leaf as *mut Node<K, V>));
                        drop(Box::from_raw(new_sibling as *mut Node<K, V>));
                        drop(Box::from_raw(new_internal as *mut Node<K, V>));
                    }
                    self.help(UpdWord::from_shared(e.current), guard);
                }
            }
        }
    }

    /// Delete; `true` if the key was present.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn delete(&self, k: &K) -> bool {
        self.remove(k).is_some()
    }

    /// Delete returning the removed value.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn remove(&self, k: &K) -> Option<V> {
        let guard = &epoch::pin();
        self.remove_in(k, guard)
    }

    pub(crate) fn remove_in(&self, k: &K, guard: &Guard) -> Option<V> {
        loop {
            let s = self.search(k, guard);
            let l_ref = unsafe { s.l.deref() };
            if !l_ref.key.fin_eq(k) {
                return None;
            }
            // Finite leaf key ⇒ at least two descents ⇒ gp is non-null.
            debug_assert!(!s.gp.is_null());
            if s.gpupdate.state != state::CLEAN {
                self.help(s.gpupdate, guard);
                continue;
            }
            if s.pupdate.state != state::CLEAN {
                self.help(s.pupdate, guard);
                continue;
            }
            let removed = l_ref.value.clone();
            let op: InfoPtr<K, V> = Box::into_raw(Box::new(OpInfo::new(OpRecord::Delete(DInfo {
                gp: s.gp.as_raw(),
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                pupdate: s.pupdate,
            }))));
            // dflag CAS. Relaxed increment: pre-publish, creation-owned.
            unsafe { (*op).refs.fetch_add(1, Relaxed) };
            let gp_ref = unsafe { s.gp.deref() };
            let new_word = Shared::from(op).with_tag(state::DFLAG);
            // Release publish / Acquire failure: as for the iflag CAS.
            match gp_ref.update.compare_exchange(
                s.gpupdate.shared(),
                new_word,
                Release,
                Acquire,
                guard,
            ) {
                Ok(_) => {
                    self.dec_ref(s.gpupdate.info, guard);
                    let done = self.help_delete(op, guard);
                    self.dec_ref(op, guard); // creation reference
                    if done {
                        return removed;
                    }
                }
                Err(e) => {
                    // SAFETY: never published.
                    unsafe { drop(Box::from_raw(op as *mut OpInfo<K, V>)) };
                    self.help(UpdWord::from_shared(e.current), guard);
                }
            }
        }
    }

    /// Dispatch helping according to the update word's state.
    fn help(&self, u: UpdWord<K, V>, guard: &Guard) {
        if u.info.is_null() {
            return; // Clean-null: nothing to help
        }
        match u.state {
            state::IFLAG => self.help_insert(u.info, guard),
            state::MARK => self.help_marked(u.info, guard),
            state::DFLAG => {
                let _ = self.help_delete(u.info, guard);
            }
            _ => {} // Clean: nothing pending
        }
    }

    fn help_insert(&self, op: InfoPtr<K, V>, guard: &Guard) {
        // SAFETY: op was read from a published update word while pinned.
        let i = unsafe { (*op).as_insert() };
        // ichild CAS: swing p's child from l to the new subtree.
        if self.cas_child(i.p, i.l, i.new_internal, guard) {
            // Winner retires the replaced leaf (leaves hold no record ref).
            unsafe { guard.defer_destroy(Shared::from(i.l)) };
        }
        // iunflag CAS: IFlag → Clean, same record pointer (no ref
        // change). Release: a reader that observes Clean must also
        // observe the ichild CAS sequenced before it. Relaxed failure:
        // the observed word is discarded.
        let p = unsafe { &*i.p };
        let _ = p.update.compare_exchange(
            Shared::from(op).with_tag(state::IFLAG),
            Shared::from(op).with_tag(state::CLEAN),
            Release,
            Relaxed,
            guard,
        );
    }

    fn help_delete(&self, op: InfoPtr<K, V>, guard: &Guard) -> bool {
        // SAFETY: as in help_insert.
        let d = unsafe { (*op).as_delete() };
        let p = unsafe { &*d.p };
        // mark CAS on p. Relaxed increment: we already hold a reference
        // (the record is published) — the Arc::clone pattern.
        unsafe { (*op).refs.fetch_add(1, Relaxed) };
        // Release: marking is the publication point helpers order on.
        // Acquire failure: `cur` is dereferenced by `help` below.
        match p.update.compare_exchange(
            d.pupdate.shared(),
            Shared::from(op).with_tag(state::MARK),
            Release,
            Acquire,
            guard,
        ) {
            Ok(_) => {
                self.dec_ref(d.pupdate.info, guard);
                self.help_marked(op, guard);
                true
            }
            Err(e) => {
                self.dec_ref(op, guard); // undo the speculative increment
                let cur = UpdWord::from_shared(e.current);
                if cur.state == state::MARK && std::ptr::eq(cur.info, op) {
                    // Another helper marked p for this very operation.
                    self.help_marked(op, guard);
                    true
                } else {
                    // Someone else got in the way: help them, then
                    // backtrack-unflag gp so progress can resume.
                    self.help(cur, guard);
                    // Backtrack-unflag: Release so observers of Clean
                    // see the abandoned attempt's effects; failure value
                    // discarded.
                    let gp = unsafe { &*d.gp };
                    let _ = gp.update.compare_exchange(
                        Shared::from(op).with_tag(state::DFLAG),
                        Shared::from(op).with_tag(state::CLEAN),
                        Release,
                        Relaxed,
                        guard,
                    );
                    false
                }
            }
        }
    }

    fn help_marked(&self, op: InfoPtr<K, V>, guard: &Guard) {
        // SAFETY: as above.
        let d = unsafe { (*op).as_delete() };
        let p = unsafe { &*d.p };
        // The sibling of l: p is marked, so its children are final.
        let right = p.load_child(false, guard);
        let other = if right.as_raw() == d.l {
            p.load_child(true, guard)
        } else {
            right
        };
        // dchild CAS: swing gp's child from p to the sibling.
        if self.cas_child(d.gp, d.p, other.as_raw(), guard) {
            // Winner retires the unlinked internal node and leaf.
            self.retire_node(d.p, guard);
            unsafe { guard.defer_destroy(Shared::from(d.l)) };
        }
        // dunflag CAS on gp (same record pointer, no ref change).
        // Release: Clean implies the dchild CAS is visible; failure
        // value discarded.
        let gp = unsafe { &*d.gp };
        let _ = gp.update.compare_exchange(
            Shared::from(op).with_tag(state::DFLAG),
            Shared::from(op).with_tag(state::CLEAN),
            Release,
            Relaxed,
            guard,
        );
    }

    fn cas_child(
        &self,
        parent: NodePtr<K, V>,
        old: NodePtr<K, V>,
        new: NodePtr<K, V>,
        guard: &Guard,
    ) -> bool {
        // SAFETY: parent/new are protected by the published record.
        let parent = unsafe { &*parent };
        let new_ref = unsafe { &*new };
        let field = if new_ref.key < parent.key {
            &parent.left
        } else {
            &parent.right
        };
        // Release: publishes the new subtree's fields (pairs with
        // `load_child`'s Acquire). Acquire failure: losing means a
        // fellow helper swung the pointer; acquire its Release so our
        // unflag CAS carries visibility of the new child.
        field
            .compare_exchange(
                Shared::from(old),
                Shared::from(new),
                Release,
                Acquire,
                guard,
            )
            .is_ok()
    }

    /// Retire an unlinked internal node: release the record reference its
    /// final (marked) update word holds, then defer destruction.
    fn retire_node(&self, node: NodePtr<K, V>, guard: &Guard) {
        let n = unsafe { &*node };
        let w = n.load_update(guard);
        self.dec_ref(w.info, guard);
        unsafe { guard.defer_destroy(Shared::from(node)) };
    }

    fn dec_ref(&self, info: InfoPtr<K, V>, guard: &Guard) {
        if info.is_null() {
            return;
        }
        let i = unsafe { &*info };
        // AcqRel sub (Arc drop pattern): Release our prior uses before
        // the decrement; Acquire the others' on the final one. AcqRel
        // swap: the count can touch zero more than once (increment-
        // before-CAS), so the swap elects the single retiring thread.
        if i.refs.fetch_sub(1, AcqRel) == 1 && !i.retired.swap(true, AcqRel) {
            unsafe { guard.defer_destroy(Shared::from(info)) };
        }
    }

    /// In-order key/value dump. **Not linearizable** (NB-BST has no
    /// snapshot mechanism — that is exactly what PNB-BST adds); intended
    /// for quiescent verification and tooling.
    pub fn to_vec_quiescent(&self) -> Vec<(K, V)> {
        let guard = &epoch::pin();
        let mut out = Vec::new();
        let mut stack = vec![Shared::from(self.root)];
        while let Some(n) = stack.pop() {
            let node = unsafe { n.deref() };
            if node.leaf {
                if let SKey::Fin(k) = &node.key {
                    out.push((k.clone(), node.value.clone().expect("finite leaf value")));
                }
            } else {
                stack.push(node.load_child(true, guard));
                stack.push(node.load_child(false, guard));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of keys (quiescent traversal; not linearizable).
    pub fn len_quiescent(&self) -> usize {
        self.to_vec_quiescent().len()
    }

    /// Structural checker (quiescent): full leaf-oriented BST. Returns
    /// the number of finite keys.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        let guard = &epoch::pin();
        let mut count = 0usize;
        type Frame<'g, K, V> = (Shared<'g, Node<K, V>>, Option<SKey<K>>, Option<SKey<K>>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(Shared::from(self.root), None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            assert!(!n.is_null(), "null child");
            let node = unsafe { n.deref() };
            if let Some(lo) = &lo {
                assert!(node.key >= *lo, "BST violation");
            }
            if let Some(hi) = &hi {
                assert!(node.key < *hi, "BST violation");
            }
            if node.leaf {
                if node.key.is_finite() {
                    count += 1;
                }
            } else {
                let l = node.load_child(true, guard);
                let r = node.load_child(false, guard);
                assert!(!l.is_null() && !r.is_null(), "internal not full");
                stack.push((l, lo.clone(), Some(node.key.clone())));
                stack.push((r, Some(node.key.clone()), hi));
            }
        }
        count
    }
}

impl<K, V> Drop for NbBst<K, V> {
    fn drop(&mut self) {
        // All orderings Relaxed: `&mut self` proves quiescence.
        unsafe {
            let guard = epoch::unprotected();
            let mut stack: Vec<NodePtr<K, V>> = vec![self.root];
            while let Some(ptr) = stack.pop() {
                let node = &*ptr;
                let info = node.update.load(Relaxed, guard).as_raw();
                if !info.is_null() {
                    let i = &*info;
                    if i.refs.fetch_sub(1, Relaxed) == 1 {
                        drop(Box::from_raw(info as *mut OpInfo<K, V>));
                    }
                }
                if !node.leaf {
                    stack.push(node.left.load(Relaxed, guard).as_raw());
                    stack.push(node.right.load(Relaxed, guard).as_raw());
                }
                drop(Box::from_raw(ptr as *mut Node<K, V>));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn sequential_basics() {
        let t: NbBst<i64, i64> = NbBst::new();
        assert!(!t.contains(&5));
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.get(&5), Some(50));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert_eq!(t.check_invariants(), 3);
        assert_eq!(t.remove(&5), Some(50));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.check_invariants(), 2);
        assert_eq!(t.to_vec_quiescent(), vec![(3, 30), (8, 80)]);
    }

    #[test]
    fn matches_btreemap_on_random_sequence() {
        let t: NbBst<i32, i32> = NbBst::new();
        let mut model = BTreeMap::new();
        let mut x: u64 = 0xDEADBEEFCAFE;
        for step in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 48) as i32;
            match step % 3 {
                0 => {
                    assert_eq!(t.insert(k, step), !model.contains_key(&k));
                    model.entry(k).or_insert(step);
                }
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k).copied()),
            }
        }
        assert_eq!(t.check_invariants(), model.len());
        let dumped: Vec<_> = t.to_vec_quiescent();
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(dumped, expect);
    }

    #[test]
    fn concurrent_disjoint_stripes() {
        let t = Arc::new(NbBst::<u64, u64>::new());
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let base = w * 1_000_000;
                    for i in 0..1500 {
                        assert!(t.insert(base + i, i));
                    }
                    for i in (0..1500).step_by(3) {
                        assert_eq!(t.remove(&(base + i)), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.check_invariants(), 4 * 1000);
    }

    #[test]
    fn concurrent_single_key_contention() {
        let t = Arc::new(NbBst::<u64, usize>::new());
        for round in 0..150u64 {
            let wins: usize = (0..4)
                .map(|i| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.insert(round, i) as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(wins, 1);
            let dels: usize = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.delete(&round) as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(dels, 1);
        }
        assert_eq!(t.check_invariants(), 0);
    }

    #[test]
    fn readers_never_block_under_churn() {
        let t = Arc::new(NbBst::<u64, u64>::new());
        for k in 0..2048 {
            t.insert(k * 2, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let w = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let k = ((x >> 33) % 4096) | 1; // odd keys only
                    t.insert(k, k);
                    t.delete(&k);
                }
            })
        };
        for _ in 0..20_000 {
            let k = 2 * (fastrand_like(&t) % 2048);
            assert!(t.contains(&k), "even keys are permanent");
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();

        fn fastrand_like<T>(_: &T) -> u64 {
            use std::cell::Cell;
            thread_local! { static S: Cell<u64> = const { Cell::new(0x12345678) }; }
            S.with(|s| {
                let mut x = s.get();
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.set(x);
                x
            })
        }
    }
}
