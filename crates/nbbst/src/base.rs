//! Node, key and operation-record types for the original NB-BST
//! (Ellen, Fatourou, Ruppert, van Breugel — PODC 2010).
//!
//! Layout follows the original paper:
//!
//! * Leaf-oriented full BST with `∞₁`/`∞₂` sentinels.
//! * Each *internal* node carries an `update` CAS word packing a state
//!   (`Clean` / `IFlag` / `DFlag` / `Mark`) with a pointer to the
//!   operation record (`IInfo` or `DInfo`). Leaves are immutable and
//!   have no update word.
//!
//! The state lives in the two low tag bits of the record pointer (all
//! records are ≥ 8-byte aligned). `Clean` keeps whatever stale pointer
//! was there (initially null) — it is never dereferenced while `Clean`.

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering::Acquire;

/// Key extended with the two infinity sentinels (`Fin < Inf1 < Inf2`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum SKey<K> {
    Fin(K),
    Inf1,
    Inf2,
}

impl<K: Ord> SKey<K> {
    /// `k < self` for a finite query key (search descent test).
    #[inline]
    pub(crate) fn fin_lt(&self, k: &K) -> bool {
        match self {
            SKey::Fin(me) => k < me,
            _ => true,
        }
    }

    #[inline]
    pub(crate) fn fin_eq(&self, k: &K) -> bool {
        matches!(self, SKey::Fin(me) if me == k)
    }

    #[inline]
    pub(crate) fn is_finite(&self) -> bool {
        matches!(self, SKey::Fin(_))
    }
}

/// Update-word states (two low tag bits of the record pointer).
pub(crate) mod state {
    pub const CLEAN: usize = 0;
    pub const IFLAG: usize = 1;
    pub const DFLAG: usize = 2;
    pub const MARK: usize = 3;
}

pub(crate) type NodePtr<K, V> = *const Node<K, V>;
pub(crate) type InfoPtr<K, V> = *const OpInfo<K, V>;

/// A decoded update word.
pub(crate) struct UpdWord<K, V> {
    pub state: usize,
    pub info: InfoPtr<K, V>,
}
impl<K, V> Clone for UpdWord<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for UpdWord<K, V> {}
impl<K, V> PartialEq for UpdWord<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && std::ptr::eq(self.info, other.info)
    }
}

impl<K, V> UpdWord<K, V> {
    #[inline]
    pub(crate) fn shared<'g>(self) -> Shared<'g, OpInfo<K, V>> {
        Shared::from(self.info).with_tag(self.state)
    }
    #[inline]
    pub(crate) fn from_shared(s: Shared<'_, OpInfo<K, V>>) -> Self {
        UpdWord {
            state: s.tag() & 0b11,
            info: s.as_raw(),
        }
    }
}

/// Operation record for an insert attempt.
pub(crate) struct IInfo<K, V> {
    pub p: NodePtr<K, V>,
    pub l: NodePtr<K, V>,
    pub new_internal: NodePtr<K, V>,
}

/// Operation record for a delete attempt.
pub(crate) struct DInfo<K, V> {
    pub gp: NodePtr<K, V>,
    pub p: NodePtr<K, V>,
    pub l: NodePtr<K, V>,
    /// The value `p.update` had when the delete validated it; expected
    /// old value for the mark CAS.
    pub pupdate: UpdWord<K, V>,
}

/// An insert or delete record, reference-counted for reclamation (same
/// protocol as `pnb-bst`: field references + one creation reference,
/// increment-before-CAS, idempotent retirement).
pub(crate) struct OpInfo<K, V> {
    pub op: OpRecord<K, V>,
    pub refs: std::sync::atomic::AtomicIsize,
    pub retired: std::sync::atomic::AtomicBool,
}

pub(crate) enum OpRecord<K, V> {
    Insert(IInfo<K, V>),
    Delete(DInfo<K, V>),
}

impl<K, V> OpInfo<K, V> {
    pub(crate) fn new(op: OpRecord<K, V>) -> Self {
        OpInfo {
            op,
            refs: std::sync::atomic::AtomicIsize::new(1),
            retired: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub(crate) fn as_insert(&self) -> &IInfo<K, V> {
        match &self.op {
            OpRecord::Insert(i) => i,
            OpRecord::Delete(_) => panic!("IFlag word pointing at a DInfo"),
        }
    }

    pub(crate) fn as_delete(&self) -> &DInfo<K, V> {
        match &self.op {
            OpRecord::Delete(d) => d,
            OpRecord::Insert(_) => panic!("DFlag/Mark word pointing at an IInfo"),
        }
    }
}

/// A tree node. Internal nodes have children and an update word; leaves
/// are immutable.
pub(crate) struct Node<K, V> {
    pub key: SKey<K>,
    pub value: Option<V>,
    pub update: Atomic<OpInfo<K, V>>,
    pub left: Atomic<Node<K, V>>,
    pub right: Atomic<Node<K, V>>,
    pub leaf: bool,
}

impl<K, V> Node<K, V> {
    pub(crate) fn leaf(key: SKey<K>, value: Option<V>) -> Self {
        Node {
            key,
            value,
            update: Atomic::null(), // Clean + null record
            left: Atomic::null(),
            right: Atomic::null(),
            leaf: true,
        }
    }

    pub(crate) fn internal(key: SKey<K>, left: NodePtr<K, V>, right: NodePtr<K, V>) -> Self {
        Node {
            key,
            value: None,
            update: Atomic::null(),
            left: Atomic::from(Shared::from(left)),
            right: Atomic::from(Shared::from(right)),
            leaf: false,
        }
    }

    /// Acquire: pairs with the Release flag/mark CAS that published the
    /// record, so its fields are visible before any dereference. NB-BST
    /// has no phase counter, hence no total-order (SC) obligation
    /// anywhere — stale words are caught by CAS expected values.
    #[inline]
    pub(crate) fn load_update(&self, guard: &Guard) -> UpdWord<K, V> {
        UpdWord::from_shared(self.update.load(Acquire, guard))
    }

    /// Acquire: pairs with the Release child CAS publishing the child's
    /// immutable fields.
    #[inline]
    pub(crate) fn load_child<'g>(&self, left: bool, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        if left {
            self.left.load(Acquire, guard)
        } else {
            self.right.load(Acquire, guard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skey_ordering_and_queries() {
        assert!(SKey::Fin(i32::MAX) < SKey::Inf1);
        assert!(SKey::Inf1::<i32> < SKey::Inf2);
        assert!(SKey::Fin(10).fin_lt(&9));
        assert!(!SKey::Fin(10).fin_lt(&10));
        assert!(SKey::Inf1::<i32>.fin_lt(&i32::MAX));
        assert!(SKey::Fin(3).fin_eq(&3));
        assert!(!SKey::Inf1::<i32>.fin_eq(&3));
        assert!(SKey::Fin(0).is_finite() && !SKey::Inf2::<i32>.is_finite());
    }

    #[test]
    fn updword_roundtrip() {
        let rec = OpInfo::<i32, i32>::new(OpRecord::Insert(IInfo {
            p: std::ptr::null(),
            l: std::ptr::null(),
            new_internal: std::ptr::null(),
        }));
        let ptr: InfoPtr<i32, i32> = &rec;
        for st in [state::CLEAN, state::IFLAG, state::DFLAG, state::MARK] {
            let w = UpdWord {
                state: st,
                info: ptr,
            };
            let rt = UpdWord::from_shared(w.shared());
            assert!(rt == w);
        }
    }

    #[test]
    fn clean_null_word_is_default() {
        let n: Node<i32, i32> = Node::leaf(SKey::Fin(1), Some(2));
        let g = crossbeam_epoch::pin();
        let w = n.load_update(&g);
        assert_eq!(w.state, state::CLEAN);
        assert!(w.info.is_null());
    }
}
