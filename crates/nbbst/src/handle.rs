//! Pinned session handle for [`NbBst`], mirroring `pnb_bst::Handle` so
//! the benchmark harness drives both trees through the same
//! guard-amortized hot path (otherwise the baseline would pay a per-op
//! epoch pin that the structure under test no longer pays, skewing the
//! cost-of-persistence comparison).

use crossbeam_epoch::{self as epoch, Guard};

use crate::tree::NbBst;

/// A pinned session on an [`NbBst`]: one epoch guard amortized over any
/// number of operations. Not `Send`; create one per thread.
///
/// NB-BST has no range queries or snapshots — that is the point of the
/// baseline — so the session surface is exactly the point-operation set.
///
/// # Example
///
/// ```
/// use nb_bst::NbBst;
///
/// let t: NbBst<u32, u32> = NbBst::new();
/// let h = t.pin();
/// assert!(h.insert(1, 10));
/// assert_eq!(h.get(&1), Some(10));
/// assert!(h.delete(&1));
/// ```
pub struct Handle<'t, K, V> {
    tree: &'t NbBst<K, V>,
    guard: Guard,
}

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Pin the current thread's epoch and return a session [`Handle`].
    pub fn pin(&self) -> Handle<'_, K, V> {
        Handle {
            tree: self,
            guard: epoch::pin(),
        }
    }
}

impl<'t, K, V> Handle<'t, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// The underlying tree.
    pub fn tree(&self) -> &'t NbBst<K, V> {
        self.tree
    }

    /// Lookup; see [`NbBst::get`].
    pub fn get(&self, k: &K) -> Option<V> {
        self.tree.get_in(k, &self.guard)
    }

    /// Membership test; see [`NbBst::contains`].
    pub fn contains(&self, k: &K) -> bool {
        self.tree.contains_in(k, &self.guard)
    }

    /// Insert without replacement; see [`NbBst::insert`].
    pub fn insert(&self, k: K, v: V) -> bool {
        self.tree.insert_in(&k, &v, &self.guard)
    }

    /// Remove; `true` iff present. See [`NbBst::delete`].
    pub fn delete(&self, k: &K) -> bool {
        self.remove(k).is_some()
    }

    /// Remove returning the value; see [`NbBst::remove`].
    pub fn remove(&self, k: &K) -> Option<V> {
        self.tree.remove_in(k, &self.guard)
    }

    /// Re-pin the session's guard so reclamation can advance; call
    /// between batches in long-lived loops.
    pub fn refresh(&mut self) {
        self.guard.repin();
    }
}

impl<K, V> std::fmt::Debug for Handle<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_matches_per_op_api() {
        let t: NbBst<u32, u32> = NbBst::new();
        let mut h = t.pin();
        for k in 0..200 {
            assert!(h.insert(k, k * 2));
            if k.is_multiple_of(32) {
                h.refresh();
            }
        }
        assert!(!h.insert(5, 99));
        assert_eq!(h.get(&5), Some(10));
        assert!(h.contains(&199));
        assert_eq!(h.remove(&5), Some(10));
        assert!(!h.delete(&5));
        assert_eq!(h.tree().check_invariants(), 199);
    }
}
