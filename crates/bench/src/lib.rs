//! # pnbbst-bench — benchmark harness for the PNB-BST reproduction
//!
//! Two entry points over the same experiment definitions:
//!
//! * `cargo bench -p pnbbst-bench` — Criterion benches, one target per
//!   experiment (E1–E7), measuring time-per-fixed-operation-batch so the
//!   statistics machinery applies.
//! * `cargo run --release -p pnbbst-bench --bin experiments [-- --quick]
//!   [-- e1 e3 ...]` — the timed setbench-style sweeps that regenerate
//!   the EXPERIMENTS.md tables (ops/sec at fixed wall-clock duration).
//!
//! The `stats` feature forwards to `pnb-bst/stats` and populates the E7
//! ablation counters; it is off by default so shared counters cannot
//! perturb the scalability numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapters;
pub mod experiments;
// Kept as a re-export so `pnbbst_bench::json::JsonLog` paths stay valid:
// the emitter itself moved to `workload::json` so the `pnb-load` network
// driver can write the same trajectory schema without depending on the
// bench crate.
pub use workload::json;
