//! Experiment definitions E1–E8 plus the E8r collector, E9 allocator,
//! E10 shard-scaling, E11 open-loop tail-latency and E13 batch-size
//! sweep extensions (see DESIGN.md §4): each function runs
//! one experiment family, renders a markdown section with the same
//! rows/series the paper's evaluation protocol reports, and appends
//! machine-readable rows to a [`json::JsonLog`] so CI can record
//! `BENCH_*.json` perf trajectories across PRs.
//!
//! The experiments bin (`cargo run --release -p pnbbst-bench --bin
//! experiments`) composes these into EXPERIMENTS.md material (and, with
//! `--json <path>`, the JSON trajectory file); the Criterion benches
//! cover the same parameter space through a time-per-fixed-batch lens.

use std::time::Duration;

use workload::{
    ConcurrentMap, KeyDist, MapSession, Measurement, Mix, OpenLoopConfig, RunConfig,
    ScanUpdaterConfig,
};

use crate::adapters::{self, required_caps, Structure};

pub use workload::json::{self, JsonLog, Val};

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOpts {
    /// Quick mode: fewer thread counts, shorter durations (CI-friendly).
    pub quick: bool,
}

impl ExpOpts {
    fn duration(&self) -> Duration {
        if self.quick {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(1200)
        }
    }

    fn threads(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 2, 4]
        } else {
            vec![1, 2, 4, 8]
        }
    }

    fn key_ranges(&self) -> Vec<u64> {
        if self.quick {
            vec![1_000, 20_000]
        } else {
            vec![1_000, 100_000]
        }
    }
}

fn fmt_tput(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2} Mops/s", ops_per_sec / 1e6)
    } else {
        format!("{:.0} Kops/s", ops_per_sec / 1e3)
    }
}

/// Render a threads-vs-structures throughput table.
fn tput_table(title: &str, threads: &[usize], rows: &[(String, Vec<Measurement>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n#### {title}\n\n"));
    out.push_str("| structure |");
    for t in threads {
        out.push_str(&format!(" {t} thr |"));
    }
    out.push_str("\n|---|");
    for _ in threads {
        out.push_str("---|");
    }
    out.push('\n');
    for (name, ms) in rows {
        out.push_str(&format!("| {name} |"));
        for m in ms {
            out.push_str(&format!(" {} |", fmt_tput(m.ops_per_sec)));
        }
        out.push('\n');
    }
    out
}

fn log_measurement(log: &mut JsonLog, exp: &str, key_range: u64, m: &Measurement) {
    log.push(
        exp,
        &[
            ("structure", Val::s(&m.name)),
            ("threads", Val::U(m.threads as u64)),
            ("key_range", Val::U(key_range)),
            ("elapsed_secs", Val::F(m.elapsed_secs)),
            ("inserts", Val::U(m.inserts)),
            ("upserts", Val::U(m.upserts)),
            ("deletes", Val::U(m.deletes)),
            ("finds", Val::U(m.finds)),
            ("scans", Val::U(m.scans)),
            ("scanned_keys", Val::U(m.scanned_keys)),
            ("total_ops", Val::U(m.total_ops)),
            ("ops_per_sec", Val::F(m.ops_per_sec)),
        ],
    );
}

fn sweep_structures(
    opts: &ExpOpts,
    mix: Mix,
    key_range: u64,
    exp: &str,
    log: &mut JsonLog,
) -> (Vec<usize>, Vec<(String, Vec<Measurement>)>) {
    let threads = opts.threads();
    let mut rows = Vec::new();
    for s in adapters::all_structures(required_caps(&mix)) {
        let mut ms = Vec::new();
        for &t in &threads {
            let cfg = RunConfig::new(t, opts.duration(), KeyDist::uniform(key_range), mix);
            eprintln!("  {} / {} threads / range {key_range} ...", s.name(), t);
            let m = s
                .run_throughput(&cfg)
                .expect("roster is filtered by capability");
            log_measurement(log, exp, key_range, &m);
            ms.push(m);
        }
        rows.push((s.name().to_string(), ms));
        // Measurement hygiene: drain still-deferred garbage into the
        // pools, then release the arena's retained footprint, so the
        // next structure is benchmarked neither inside this one's heap
        // nor while its garbage is still ripening (pnb-bst pools
        // deliberately hold their peak working set).
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim();
    }
    (threads, rows)
}

/// E1: update-only scaling (50% ins / 50% del), per key range.
pub fn e1(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let mut out = String::from("\n### E1 — Update-only scaling (50i/50d)\n");
    for kr in opts.key_ranges() {
        let (threads, rows) = sweep_structures(opts, Mix::update_only(), kr, "e1", log);
        out.push_str(&tput_table(
            &format!("key range 10^{:.0} ({kr})", (kr as f64).log10()),
            &threads,
            &rows,
        ));
    }
    out
}

/// E2: search-dominated scaling (10i/10d/80f), per key range.
pub fn e2(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let mut out = String::from("\n### E2 — Search-dominated scaling (10i/10d/80f)\n");
    for kr in opts.key_ranges() {
        let (threads, rows) = sweep_structures(opts, Mix::read_mostly(), kr, "e2", log);
        out.push_str(&tput_table(
            &format!("key range 10^{:.0} ({kr})", (kr as f64).log10()),
            &threads,
            &rows,
        ));
    }
    out
}

/// E3: range-query mix scaling (25i/25d/40f/10rq, width 100).
pub fn e3(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let mut out = String::from(
        "\n### E3 — Mixed workload with range queries (25i/25d/40f/10rq, width 100)\n",
    );
    for kr in opts.key_ranges() {
        let (threads, rows) = sweep_structures(opts, Mix::with_ranges(100), kr, "e3", log);
        out.push_str(&tput_table(
            &format!("key range 10^{:.0} ({kr})", (kr as f64).log10()),
            &threads,
            &rows,
        ));
    }
    out
}

/// E4: range-width sweep under a scan-heavy mix (10i/10d/30f/50rq).
pub fn e4(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let widths: Vec<u64> = if opts.quick {
        vec![10, 100, 1_000]
    } else {
        vec![10, 100, 1_000, 10_000]
    };
    let threads = if opts.quick { 2 } else { 4 };
    let mut out = format!(
        "\n### E4 — Range-width sweep (10i/10d/30f/50rq, {threads} threads, key range {kr})\n\n"
    );
    out.push_str("| structure |");
    for w in &widths {
        out.push_str(&format!(" width {w} |"));
    }
    out.push_str("\n|---|");
    for _ in &widths {
        out.push_str("---|");
    }
    out.push('\n');

    let prototypes = [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::Rw(adapters::Rw::new()),
    ];
    for proto in &prototypes {
        let mut cells = Vec::new();
        for &w in &widths {
            // Fresh instance per cell so widths don't contaminate.
            let fresh = proto.fresh();
            let cfg = RunConfig::new(
                threads,
                opts.duration(),
                KeyDist::uniform(kr),
                Mix::scan_heavy(w),
            );
            eprintln!("  {} / width {w} ...", fresh.name());
            let m = fresh.run_throughput(&cfg).expect("range-capable roster");
            log_measurement(log, "e4", kr, &m);
            cells.push(format!(
                "{} ({} keys/scan)",
                fmt_tput(m.ops_per_sec),
                m.scanned_keys.checked_div(m.scans).unwrap_or(0)
            ));
        }
        out.push_str(&format!("| {} |", proto.name()));
        for c in cells {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
    }
    out
}

/// E5: cost of persistence — single-threaded op latency, PNB vs NB vs
/// sequential floor.
pub fn e5(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let n: u64 = if opts.quick { 10_000 } else { 50_000 };
    let reps: u64 = if opts.quick { 3 } else { 10 };
    let mut out = format!(
        "\n### E5 — Cost of persistence (single thread, {n}-key space, ns/op)\n\n\
         | structure | insert | find | delete |\n|---|---|---|---|\n"
    );

    // Concurrent structures through the adapter interface.
    for s in [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::Nb(adapters::Nb::new()),
    ] {
        let (ins, fnd, del) = adapters::dispatch!(&s, m => latency_triple(m, n, reps));
        log_e5(log, s.name(), n, ins, fnd, del);
        out.push_str(&format!(
            "| {} | {ins:.0} | {fnd:.0} | {del:.0} |\n",
            s.name()
        ));
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim(); // heap hygiene between structures
    }

    // Sequential floor (needs &mut, measured directly).
    let (ins, fnd, del) = seq_latency_triple(n, reps);
    log_e5(log, "seq-bst", n, ins, fnd, del);
    out.push_str(&format!(
        "| seq-bst (floor) | {ins:.0} | {fnd:.0} | {del:.0} |\n"
    ));
    out
}

fn log_e5(log: &mut JsonLog, name: &str, key_space: u64, ins: f64, fnd: f64, del: f64) {
    log.push(
        "e5",
        &[
            ("structure", Val::s(name)),
            ("key_space", Val::U(key_space)),
            ("insert_ns", Val::F(ins)),
            ("find_ns", Val::F(fnd)),
            ("delete_ns", Val::F(del)),
        ],
    );
}

fn latency_triple<M: ConcurrentMap>(map: &M, n: u64, reps: u64) -> (f64, f64, f64) {
    use std::time::Instant;
    let mut ins_ns = 0.0;
    let mut find_ns = 0.0;
    let mut del_ns = 0.0;
    let mut session = map.pin();
    for r in 0..reps {
        // Insert all keys in shuffled-ish order (odd stride walks the
        // whole space).
        let stride = 0x9E37u64 | 1;
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            session.insert(k, k);
        }
        ins_ns += t0.elapsed().as_nanos() as f64;
        session.refresh();
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            std::hint::black_box(session.get(&k));
        }
        find_ns += t0.elapsed().as_nanos() as f64;
        session.refresh();
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            session.delete(&k);
        }
        del_ns += t0.elapsed().as_nanos() as f64;
        session.refresh();
    }
    let total = (n * reps) as f64;
    (ins_ns / total, find_ns / total, del_ns / total)
}

fn seq_latency_triple(n: u64, reps: u64) -> (f64, f64, f64) {
    use std::time::Instant;
    let mut t = lock_bst::seq::SeqBst::<u64, u64>::new();
    let mut ins_ns = 0.0;
    let mut find_ns = 0.0;
    let mut del_ns = 0.0;
    for r in 0..reps {
        let stride = 0x9E37u64 | 1;
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            t.insert(k, k);
        }
        ins_ns += t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            std::hint::black_box(t.get(&k));
        }
        find_ns += t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        for i in 0..n {
            let k = (i.wrapping_mul(stride) ^ r) % n;
            t.remove(&k);
        }
        del_ns += t0.elapsed().as_nanos() as f64;
    }
    let total = (n * reps) as f64;
    (ins_ns / total, find_ns / total, del_ns / total)
}

/// E6: scan/update non-interference — dedicated scanners on disjoint vs
/// overlapping ranges against dedicated updaters (paper §1: "RangeScans
/// operating on different parts of the tree do not interfere").
pub fn e6(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let scanner_counts = if opts.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    };
    let mut out = format!(
        "\n### E6 — Scan/update interference (PNB-BST, 2 updaters, key range {kr})\n\n\
         | scanners | mode | scans/s | updates/s | keys/scan |\n|---|---|---|---|---|\n"
    );
    for &sc in &scanner_counts {
        for disjoint in [true, false] {
            let map = adapters::Pnb::new();
            let cfg = ScanUpdaterConfig {
                updaters: 2,
                scanners: sc,
                duration: opts.duration(),
                key_space: kr,
                disjoint,
                seed: 42,
            };
            eprintln!("  {sc} scanners / disjoint={disjoint} ...");
            let m = workload::run_scan_updater(&map, &cfg).expect("pnb-bst scans");
            log.push(
                "e6",
                &[
                    ("structure", Val::s(&m.name)),
                    ("updaters", Val::U(m.updaters as u64)),
                    ("scanners", Val::U(m.scanners as u64)),
                    ("disjoint", Val::B(m.disjoint)),
                    ("update_ops", Val::U(m.update_ops)),
                    ("scan_ops", Val::U(m.scan_ops)),
                    ("scanned_keys", Val::U(m.scanned_keys)),
                    ("elapsed_secs", Val::F(m.elapsed_secs)),
                    ("updates_per_sec", Val::F(m.updates_per_sec)),
                    ("scans_per_sec", Val::F(m.scans_per_sec)),
                ],
            );
            out.push_str(&format!(
                "| {sc} | {} | {:.0} | {:.0} | {} |\n",
                if disjoint { "disjoint" } else { "full-range" },
                m.scans_per_sec,
                m.updates_per_sec,
                m.scanned_keys.checked_div(m.scan_ops).unwrap_or(0),
            ));
        }
    }
    out
}

/// E7: ablation of the coordination mechanisms — handshake aborts and
/// helping as the scan rate grows. Needs the `stats` build
/// (`--features stats`); otherwise counters read zero and the table says
/// so.
pub fn e7(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr = 10_000u64;
    let threads = if opts.quick { 2 } else { 4 };
    let mut out = format!(
        "\n### E7 — Ablation: handshake aborts & helping vs scan rate \
         (PNB-BST, {threads} threads, key range {kr})\n\n\
         | scan % | total ops | handshake aborts | freeze aborts | helps | validation fails |\n\
         |---|---|---|---|---|---|\n"
    );
    let stats_enabled = cfg!(feature = "stats");
    for scan_pct in [0u32, 1, 10, 30] {
        let map = adapters::Pnb::new();
        let find = 40 - scan_pct;
        let mix = Mix::new(30, 30, find, scan_pct, 100);
        let cfg = RunConfig::new(threads, opts.duration(), KeyDist::uniform(kr), mix);
        eprintln!("  scan%={scan_pct} ...");
        let m = workload::run_throughput(&map, &cfg).expect("pnb-bst covers every mix");
        let st = map.0.stats();
        log.push(
            "e7",
            &[
                ("scan_pct", Val::U(scan_pct as u64)),
                ("threads", Val::U(threads as u64)),
                ("key_range", Val::U(kr)),
                ("stats_enabled", Val::B(stats_enabled)),
                ("total_ops", Val::U(m.total_ops)),
                ("handshake_aborts", Val::U(st.handshake_aborts)),
                ("freeze_aborts", Val::U(st.freeze_aborts)),
                ("helps", Val::U(st.helps)),
                ("validation_failures", Val::U(st.validation_failures)),
            ],
        );
        out.push_str(&format!(
            "| {scan_pct} | {} | {} | {} | {} | {} |\n",
            m.total_ops, st.handshake_aborts, st.freeze_aborts, st.helps, st.validation_failures
        ));
    }
    if !stats_enabled {
        out.push_str(
            "\n*(counters are all zero: rebuild with `--features stats` to \
             populate this table — kept out of the default build so shared \
             counters cannot perturb E1–E6)*\n",
        );
    }
    out
}

/// E8 (extension) — tail latency per operation class under a mixed load
/// with range queries. Wait-freedom is a *bound on individual operation
/// time*: the interesting comparison is the p99/p999 of updates while
/// scans run (lock-based maps stall writers behind every scan) and of
/// scans while updates run.
pub fn e8(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let threads = if opts.quick { 2 } else { 4 };
    let mix = Mix::new(20, 20, 40, 20, 1_000); // scan-heavy enough to stall locks
    let mut out = format!(
        "\n### E8 — Tail latency under scan-heavy mix (20i/20d/40f/20rq width 1000, \
         {threads} threads, key range {kr})\n\n\
         | structure | op | samples | p50 | p99 | p999 |\n|---|---|---|---|---|---|\n"
    );
    let structures = [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::Rw(adapters::Rw::new()),
    ];
    for s in &structures {
        eprintln!("  {} latency ...", s.name());
        let rep = s
            .run_latency(threads, opts.duration(), &KeyDist::uniform(kr), mix, 42)
            .expect("range-capable roster");
        for (label, count, p50, p99, p999) in &rep.classes {
            log.push(
                "e8",
                &[
                    ("structure", Val::s(&rep.name)),
                    ("op", Val::s(label)),
                    ("threads", Val::U(threads as u64)),
                    ("key_range", Val::U(kr)),
                    ("samples", Val::U(*count)),
                    ("p50_ns", Val::U(*p50)),
                    ("p99_ns", Val::U(*p99)),
                    ("p999_ns", Val::U(*p999)),
                ],
            );
            out.push_str(&format!(
                "| {} | {label} | {count} | {} | {} | {} |\n",
                rep.name,
                fmt_ns(*p50),
                fmt_ns(*p99),
                fmt_ns(*p999)
            ));
        }
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim(); // heap hygiene between structures
    }
    out
}

/// Collector counters bracketing a measured run: deltas of (bags
/// sealed, bags freed, advance attempts, advance successes). All zeros
/// without the `stats` build.
fn collector_delta<T>(run: impl FnOnce() -> T) -> (T, [u64; 4]) {
    #[cfg(feature = "stats")]
    {
        let b = pnb_bst::collector_stats();
        let out = run();
        let a = pnb_bst::collector_stats();
        (
            out,
            [
                a.bags_sealed - b.bags_sealed,
                a.bags_freed - b.bags_freed,
                a.advance_attempts - b.advance_attempts,
                a.advance_successes - b.advance_successes,
            ],
        )
    }
    #[cfg(not(feature = "stats"))]
    {
        (run(), [0; 4])
    }
}

/// E8r (extension) — collector reclamation scaling: a retire-heavy
/// update mix (50i/50d) over a tiny key range, so nearly every
/// committed update pushes garbage through the epoch collector. This is
/// the workload that used to measure the reclamation shim's two global
/// mutexes rather than the tree; with the lock-free collector the curve
/// tracks the structure. With `--features stats` the table also shows
/// the collector at work (bags sealed/freed, epoch advances).
pub fn e8r(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = 1_024;
    let threads: Vec<usize> = if opts.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let stats_enabled = cfg!(feature = "stats");
    let mut out = format!(
        "\n### E8r — Collector reclamation scaling (50i/50d, key range {kr})\n\n\
         | structure | threads | throughput | bags sealed | bags freed | advances (ok/try) |\n\
         |---|---|---|---|---|---|\n"
    );
    let structures = [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::Nb(adapters::Nb::new()),
    ];
    for s in &structures {
        for &t in &threads {
            let cfg = RunConfig::new(t, opts.duration(), KeyDist::uniform(kr), Mix::update_only());
            eprintln!("  {} / {t} threads (retire-heavy) ...", s.name());
            let (m, d) = collector_delta(|| {
                s.run_throughput(&cfg)
                    .expect("update-only mix needs only point ops")
            });
            log.push(
                "e8r",
                &[
                    ("structure", Val::s(&m.name)),
                    ("threads", Val::U(t as u64)),
                    ("key_range", Val::U(kr)),
                    ("stats_enabled", Val::B(stats_enabled)),
                    ("total_ops", Val::U(m.total_ops)),
                    ("ops_per_sec", Val::F(m.ops_per_sec)),
                    ("bags_sealed", Val::U(d[0])),
                    ("bags_freed", Val::U(d[1])),
                    ("advance_attempts", Val::U(d[2])),
                    ("advance_successes", Val::U(d[3])),
                ],
            );
            out.push_str(&format!(
                "| {} | {t} | {} | {} | {} | {}/{} |\n",
                m.name,
                fmt_tput(m.ops_per_sec),
                d[0],
                d[1],
                d[3],
                d[2],
            ));
        }
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim(); // heap hygiene between structures
    }
    if !stats_enabled {
        out.push_str(
            "\n*(collector columns are all zero: rebuild with `--features \
             stats` to watch the collector work)*\n",
        );
    }
    out
}

/// Arena counters bracketing a measured run: deltas of (pool hits,
/// pool misses, recycled bytes). All zeros without the `stats` build.
fn arena_delta<T>(run: impl FnOnce() -> T) -> (T, [u64; 3]) {
    #[cfg(feature = "stats")]
    {
        // Drain the collector around both snapshots: the counters are
        // process-global, so a previous structure's still-ripening
        // garbage must not recycle inside this bracket and be
        // attributed to it.
        pnb_bst::collector_drain(64);
        let b = pnb_bst::arena_stats();
        let out = run();
        pnb_bst::collector_drain(64);
        let a = pnb_bst::arena_stats();
        (
            out,
            [
                a.pool_hits - b.pool_hits,
                a.pool_misses - b.pool_misses,
                a.recycled_bytes - b.recycled_bytes,
            ],
        )
    }
    #[cfg(not(feature = "stats"))]
    {
        (run(), [0; 3])
    }
}

/// E9 (extension) — allocator churn: the update-only mix over a tiny
/// key range, the workload where per-attempt `Node`/`Info` allocation
/// dominates. Tracks the per-thread arena pools at work (hits, misses,
/// recycled bytes — `stats` build) next to throughput; `nb-bst` rides
/// along as the non-pooled epoch baseline. The committed
/// `BENCH_baseline.json` E1 rows are the pre-arena reference this
/// experiment's gains are measured against.
pub fn e9(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = 1_024;
    let threads: Vec<usize> = if opts.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let stats_enabled = cfg!(feature = "stats");
    let mut out = format!(
        "\n### E9 — Arena/allocator churn (50i/50d, key range {kr})\n\n\
         | structure | threads | throughput | pool hits | pool misses | hit rate | recycled |\n\
         |---|---|---|---|---|---|---|\n"
    );
    let structures = [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::Nb(adapters::Nb::new()),
    ];
    for s in &structures {
        for &t in &threads {
            let cfg = RunConfig::new(t, opts.duration(), KeyDist::uniform(kr), Mix::update_only());
            eprintln!("  {} / {t} threads (alloc churn) ...", s.name());
            let (m, d) = arena_delta(|| {
                s.run_throughput(&cfg)
                    .expect("update-only mix needs only point ops")
            });
            let hit_rate = if d[0] + d[1] > 0 {
                format!("{:.1}%", 100.0 * d[0] as f64 / (d[0] + d[1]) as f64)
            } else {
                "-".to_string()
            };
            log.push(
                "e9",
                &[
                    ("structure", Val::s(&m.name)),
                    ("threads", Val::U(t as u64)),
                    ("key_range", Val::U(kr)),
                    ("stats_enabled", Val::B(stats_enabled)),
                    ("total_ops", Val::U(m.total_ops)),
                    ("ops_per_sec", Val::F(m.ops_per_sec)),
                    ("pool_hits", Val::U(d[0])),
                    ("pool_misses", Val::U(d[1])),
                    ("recycled_bytes", Val::U(d[2])),
                ],
            );
            out.push_str(&format!(
                "| {} | {t} | {} | {} | {} | {hit_rate} | {} |\n",
                m.name,
                fmt_tput(m.ops_per_sec),
                d[0],
                d[1],
                fmt_bytes(d[2]),
            ));
        }
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim(); // heap hygiene between structures
    }
    if !stats_enabled {
        out.push_str(
            "\n*(arena columns are all zero: rebuild with `--features \
             stats` to watch the pools work)*\n",
        );
    }
    out
}

/// E10 (extension) — shard scaling: point-op throughput of the sharded
/// front-end vs shard count, against the unsharded tree. The mix is
/// E1's update-only 50i/50d — the workload where a single tree's CAS,
/// helping and (with scans present) counter traffic all concentrate —
/// so the shard count divides the contended state `N` ways. The JSON
/// rows tag the sharded series `pnb-sharded-x{N}` so every shard count
/// is its own trajectory series, and carry an explicit `shards` field.
pub fn e10(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let shard_counts: Vec<usize> = if opts.quick {
        vec![1, 2, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let threads: Vec<usize> = if opts.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let mix = Mix::update_only();
    let mut out = format!(
        "\n### E10 — Shard scaling (50i/50d point ops, key range {kr})\n\n\
         | structure |"
    );
    for t in &threads {
        out.push_str(&format!(" {t} thr |"));
    }
    out.push_str("\n|---|");
    for _ in &threads {
        out.push_str("---|");
    }
    out.push('\n');

    let mut run_row = |s: &Structure, label: String, shards: u64, log: &mut JsonLog| {
        let mut cells = Vec::new();
        for &t in &threads {
            let fresh = s.fresh(); // fresh instance per cell: no carry-over heap
            let cfg = RunConfig::new(t, opts.duration(), KeyDist::uniform(kr), mix);
            eprintln!("  {label} / {t} threads ...");
            let m = fresh
                .run_throughput(&cfg)
                .expect("update-only mix needs only point ops");
            log.push(
                "e10",
                &[
                    ("structure", Val::s(&label)),
                    ("shards", Val::U(shards)),
                    ("threads", Val::U(t as u64)),
                    ("key_range", Val::U(kr)),
                    ("total_ops", Val::U(m.total_ops)),
                    ("ops_per_sec", Val::F(m.ops_per_sec)),
                ],
            );
            cells.push(fmt_tput(m.ops_per_sec));
            pnb_bst::collector_drain(64);
            pnb_bst::arena_trim(); // heap hygiene between cells
        }
        out.push_str(&format!("| {label} |"));
        for c in cells {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
    };

    // Unsharded reference: the same tree the sharded series wraps.
    run_row(
        &Structure::Pnb(adapters::Pnb::new()),
        "pnb-bst".to_string(),
        1,
        log,
    );
    for &n in &shard_counts {
        run_row(
            &Structure::PnbSharded(adapters::Sharded::with_shards(n)),
            format!("pnb-sharded-x{n}"),
            n as u64,
            log,
        );
    }
    out
}

/// E11 (extension) — open-loop tail latency vs offered rate: the
/// latency-honest replacement for E8's closed-loop lens. Each cell
/// offers a *fixed* arrival rate (a per-thread intended-start schedule;
/// see `workload::schedule`) and records per-class latency from the
/// intended start, so queueing delay is charged to the structure instead
/// of silently omitted. Keys come from the scrambled-Zipfian
/// distribution — the same skew as rank-Zipf, but with the hot keys
/// dispersed across the key space instead of packed into block 0 (which
/// used to melt exactly one shard of `pnb-sharded` by accident). The
/// rows report offered vs achieved rate, so saturation is visible as a
/// rate gap rather than quietly renormalized percentiles.
pub fn e11(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let threads = if opts.quick { 2 } else { 4 };
    let rates: Vec<f64> = if opts.quick {
        vec![50e3, 200e3, 800e3]
    } else {
        vec![100e3, 400e3, 1600e3]
    };
    // Insert/delete/find only: nb-bst declares neither ranges nor
    // upserts, and the point of the table is comparing the same mix
    // across pnb, nb, sharded and the lock baseline.
    let mix = Mix::new(25, 25, 50, 0, 0);
    let mut out = format!(
        "\n### E11 — Open-loop tail latency vs offered rate (25i/25d/50f, \
         scrambled-Zipf θ=0.99, {threads} threads, key range {kr})\n\n\
         | structure | offered | achieved | op | samples | p50 | p99 | p999 |\n\
         |---|---|---|---|---|---|---|---|\n"
    );
    let structures = [
        Structure::Pnb(adapters::Pnb::new()),
        Structure::PnbSharded(adapters::Sharded::new()),
        Structure::Nb(adapters::Nb::new()),
        Structure::Rw(adapters::Rw::new()),
    ];
    for s in &structures {
        for &rate in &rates {
            // Fresh instance per rate so a saturated run's backlog and
            // heap do not contaminate the next cell.
            let fresh = s.fresh();
            let cfg = OpenLoopConfig {
                threads,
                target_rate: rate,
                duration: opts.duration(),
                key_dist: KeyDist::scrambled_zipfian(kr, 0.99),
                mix,
                prefill_fraction: 0.5,
                seed: 42,
                interval_log: None,
            };
            eprintln!("  {} / offered {:.0}k ops/s ...", fresh.name(), rate / 1e3);
            let m = fresh
                .run_open_loop(&cfg)
                .expect("point-op mix runs on the whole roster");
            for c in &m.classes {
                log.push(
                    "e11",
                    &[
                        ("structure", Val::s(&m.name)),
                        ("threads", Val::U(threads as u64)),
                        ("key_range", Val::U(kr)),
                        ("offered_rate", Val::F(m.offered_rate)),
                        ("achieved_rate", Val::F(m.achieved_rate)),
                        ("elapsed_secs", Val::F(m.elapsed_secs)),
                        ("op", Val::s(&c.class)),
                        ("samples", Val::U(c.count)),
                        ("p50_ns", Val::U(c.p50_ns)),
                        ("p99_ns", Val::U(c.p99_ns)),
                        ("p999_ns", Val::U(c.p999_ns)),
                        ("max_ns", Val::U(c.max_ns)),
                    ],
                );
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                    m.name,
                    fmt_tput(m.offered_rate),
                    fmt_tput(m.achieved_rate),
                    c.class,
                    c.count,
                    fmt_ns(c.p50_ns),
                    fmt_ns(c.p99_ns),
                    fmt_ns(c.p999_ns),
                ));
            }
            pnb_bst::collector_drain(64);
            pnb_bst::arena_trim(); // heap hygiene between cells
        }
    }
    out.push_str(
        "\n*(latency measured from each operation's intended start — \
         queueing delay included; achieved < offered marks saturation)*\n",
    );
    out
}

/// E12 (extension) — checkpoint drag: what a concurrent durable
/// checkpointer costs the foreground. Each cell drives the open-loop
/// point mix against `pnb-sharded` at a fixed offered rate, once
/// undisturbed and once with a background thread repeatedly writing
/// full durable checkpoints (`ShardedPnbBst::checkpoint`, DESIGN §9)
/// into a scratch directory. Because the checkpointer's cut is a
/// wait-free `ShardedSnapshot`, the *expected* drag is IO + allocator
/// pressure, not blocking — the rows make that claim measurable:
/// `checkpoint_active` marks the mode, `checkpoints` counts completed
/// generations, and `interval_p99_max_ns` (worst per-interval p99 from
/// the interval log) exposes pauses that a whole-run p99 would average
/// away.
pub fn e12(opts: &ExpOpts, log: &mut JsonLog) -> String {
    use std::sync::atomic::{AtomicBool, Ordering};

    let kr: u64 = if opts.quick { 20_000 } else { 100_000 };
    let threads = if opts.quick { 2 } else { 4 };
    let rates: Vec<f64> = if opts.quick {
        vec![50e3, 200e3]
    } else {
        vec![100e3, 400e3]
    };
    let mix = Mix::new(25, 25, 50, 0, 0);
    let mut out = format!(
        "\n### E12 — Checkpoint drag on open-loop tail latency \
         (pnb-sharded, 25i/25d/50f, scrambled-Zipf θ=0.99, {threads} \
         threads, key range {kr})\n\n\
         | ckpt | offered | achieved | ckpts | op | samples | p50 | p99 | worst-interval p99 |\n\
         |---|---|---|---|---|---|---|---|---|\n"
    );
    let scratch = std::env::temp_dir().join(format!("pnb_e12_{}", std::process::id()));
    for checkpoint_active in [false, true] {
        for (cell, &rate) in rates.iter().enumerate() {
            let map = adapters::Sharded::new();
            let ckpt_dir = scratch.join(format!("ckpt_{checkpoint_active}_{cell}"));
            let log_path = scratch.join(format!("ivl_{checkpoint_active}_{cell}.jsonl"));
            let _ = std::fs::remove_file(&log_path);
            std::fs::create_dir_all(&scratch).expect("scratch dir");
            let cfg = OpenLoopConfig {
                threads,
                target_rate: rate,
                duration: opts.duration(),
                key_dist: KeyDist::scrambled_zipfian(kr, 0.99),
                mix,
                prefill_fraction: 0.5,
                seed: 42,
                interval_log: Some(workload::IntervalLogConfig::with_interval(
                    &log_path,
                    Duration::from_millis(50),
                )),
            };
            eprintln!(
                "  checkpointer {} / offered {:.0}k ops/s ...",
                if checkpoint_active { "on" } else { "off" },
                rate / 1e3
            );
            let stop = AtomicBool::new(false);
            let mut checkpoints = 0u64;
            let m = std::thread::scope(|s| {
                let ckpt = checkpoint_active.then(|| {
                    s.spawn(|| {
                        // Checkpoint continuously (with a breather) for
                        // the run's whole lifetime: every generation is
                        // a full wait-free cut serialized + fsynced.
                        let mut n = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            map.0.checkpoint(&ckpt_dir).expect("checkpoint scratch dir");
                            n += 1;
                            for _ in 0..4 {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(25));
                            }
                        }
                        n
                    })
                });
                let m = workload::run_open_loop(&map, &cfg)
                    .expect("sharded map declares the point-op surface");
                stop.store(true, Ordering::Release);
                if let Some(h) = ckpt {
                    checkpoints = h.join().expect("checkpointer thread joins");
                }
                m
            });

            // Worst per-interval p99 from the interval log: the pause
            // lens. (The log is JSONL written by this run alone.)
            let rows_text = std::fs::read_to_string(&log_path).unwrap_or_default();
            let mut intervals = 0u64;
            let mut interval_p99_max_ns = 0u64;
            for line in rows_text.lines() {
                if let Some(rest) = line.split("\"p99_ns\": ").nth(1) {
                    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                    if let Ok(v) = digits.parse::<u64>() {
                        intervals += 1;
                        interval_p99_max_ns = interval_p99_max_ns.max(v);
                    }
                }
            }
            let _ = std::fs::remove_file(&log_path);
            let _ = std::fs::remove_dir_all(&ckpt_dir);

            for c in &m.classes {
                log.push(
                    "e12",
                    &[
                        ("structure", Val::s(&m.name)),
                        ("threads", Val::U(threads as u64)),
                        ("key_range", Val::U(kr)),
                        ("checkpoint_active", Val::B(checkpoint_active)),
                        ("checkpoints", Val::U(checkpoints)),
                        ("offered_rate", Val::F(m.offered_rate)),
                        ("achieved_rate", Val::F(m.achieved_rate)),
                        ("elapsed_secs", Val::F(m.elapsed_secs)),
                        ("intervals", Val::U(intervals)),
                        ("interval_p99_max_ns", Val::U(interval_p99_max_ns)),
                        ("op", Val::s(&c.class)),
                        ("samples", Val::U(c.count)),
                        ("p50_ns", Val::U(c.p50_ns)),
                        ("p99_ns", Val::U(c.p99_ns)),
                        ("p999_ns", Val::U(c.p999_ns)),
                        ("max_ns", Val::U(c.max_ns)),
                    ],
                );
                out.push_str(&format!(
                    "| {} | {} | {} | {checkpoints} | {} | {} | {} | {} | {} |\n",
                    if checkpoint_active { "on" } else { "off" },
                    fmt_tput(m.offered_rate),
                    fmt_tput(m.achieved_rate),
                    c.class,
                    c.count,
                    fmt_ns(c.p50_ns),
                    fmt_ns(c.p99_ns),
                    fmt_ns(interval_p99_max_ns),
                ));
            }
            pnb_bst::collector_drain(64);
            pnb_bst::arena_trim(); // heap hygiene between cells
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    out.push_str(
        "\n*(checkpointer serializes a full wait-free cut + fsync per \
         generation; drag shows up as the on/off gap in p99 and \
         worst-interval p99, not as blocking)*\n",
    );
    out
}

/// E13 (extension) — batched + fused hot-path operations: sweep
/// `apply_batch` batch sizes against the singleton baseline on the
/// contended update-only mix (50% ins / 50% del over a 1 000-key
/// uniform space — the mix where descent sharing has the most overlap
/// to exploit and CAS contention is worst). Batch size 1 through the
/// batched driver *is* the singleton baseline — identical timing
/// windows and refresh cadence — so the `vs b=1` column isolates
/// exactly the batching effects. `ops_per_descent` splits the win into
/// its mechanism: root-to-leaf walks saved by prefix-stack sharing
/// (> 1 when fusion engages) vs per-call amortization (pin, pooled
/// scan stack, combiner). The roster is capability-filtered to
/// structures declaring [`workload::Caps::batched`] (the PNB tree and
/// its sharded front-end); everything else would only re-measure the
/// singleton fallback at 1.0 ops/descent.
pub fn e13(opts: &ExpOpts, log: &mut JsonLog) -> String {
    let kr: u64 = 1_000;
    let mix = Mix::update_only();
    let batch_sizes: Vec<usize> = if opts.quick {
        vec![1, 16, 64]
    } else {
        vec![1, 4, 16, 64, 256]
    };
    let threads = opts.threads();
    let roster = adapters::all_structures(workload::Caps {
        range_scan: false,
        upsert: false,
        snapshot: false,
        batched: true,
    });

    let mut out = format!(
        "\n### E13 — Batch-size sweep: `apply_batch` vs singleton \
         (update-only 50i/50d, uniform {kr} keys, contended)\n\n"
    );
    out.push_str(
        "| structure | threads | batch | Mops/s | vs b=1 | ops/descent | p50 batch | p99 batch |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for s in &roster {
        for &t in &threads {
            let mut baseline = 0.0f64;
            for &b in &batch_sizes {
                eprintln!("  {} / {t} threads / batch {b} ...", s.name());
                let cfg = workload::BatchedRunConfig::new(
                    t,
                    opts.duration(),
                    KeyDist::uniform(kr),
                    mix,
                    b,
                );
                // Fresh instance per cell: a batch-size sweep must not
                // inherit the previous cell's heap or epoch garbage.
                let cell = s.fresh();
                let m = cell
                    .run_batched_throughput(&cfg)
                    .expect("roster is filtered by Caps::batched; mix is range-free");
                if b == 1 {
                    baseline = m.ops_per_sec;
                }
                let speedup = if baseline > 0.0 {
                    m.ops_per_sec / baseline
                } else {
                    0.0
                };
                log.push(
                    "e13",
                    &[
                        ("structure", Val::s(&m.name)),
                        ("threads", Val::U(t as u64)),
                        ("key_range", Val::U(kr)),
                        ("batch_size", Val::U(m.batch_size as u64)),
                        ("elapsed_secs", Val::F(m.elapsed_secs)),
                        ("batches", Val::U(m.batches)),
                        ("total_ops", Val::U(m.total_ops)),
                        ("root_descents", Val::U(m.root_descents)),
                        ("ops_per_descent", Val::F(m.ops_per_descent)),
                        ("ops_per_sec", Val::F(m.ops_per_sec)),
                        ("speedup_vs_singleton", Val::F(speedup)),
                        ("p50_ns", Val::U(m.p50_ns)),
                        ("p99_ns", Val::U(m.p99_ns)),
                    ],
                );
                out.push_str(&format!(
                    "| {} | {t} | {b} | {} | {speedup:.2}× | {:.2} | {} | {} |\n",
                    m.name,
                    fmt_tput(m.ops_per_sec),
                    m.ops_per_descent,
                    fmt_ns(m.p50_ns),
                    fmt_ns(m.p99_ns),
                ));
                pnb_bst::collector_drain(64);
                pnb_bst::arena_trim(); // heap hygiene between cells
            }
        }
    }
    out.push_str(
        "\n*(per-batch latency percentiles: a batch of 64 trades one \
         longer call for 64 short ones, so compare p99 across batch \
         sizes per-op, not per-call; `vs b=1` already is per-op)*\n",
    );
    out
}

/// E14 (extension) — the network round trip: open-loop tail latency vs
/// offered rate through `pnb-server` on loopback. Same engine and
/// schema as E11, but every operation crosses the full server stack
/// (frame encode → TCP → worker loop → long-lived sharded session →
/// response), so the rows price the paper's wait-free range queries as
/// a *service*: series `pnb-sharded-net`, one point-op mix and one
/// range mix, three offered rates each. A fresh in-process server is
/// spawned (ephemeral port) and drained per cell so one saturated
/// cell's backlog cannot contaminate the next. With `--features stats`
/// the per-shard op counters also yield a load-imbalance (max/mean)
/// figure per cell; without it that column reads `n/a`.
pub fn e14(opts: &ExpOpts, log: &mut JsonLog) -> String {
    use pnb_server::{Client, NetMap, Server, ServerConfig};

    let kr: u64 = if opts.quick { 8_192 } else { 65_536 };
    let threads = if opts.quick { 2 } else { 4 };
    let rates: Vec<f64> = if opts.quick {
        vec![5e3, 20e3, 80e3]
    } else {
        vec![20e3, 80e3, 320e3]
    };
    let mixes: [(&str, Mix); 2] = [
        ("point", Mix::new(25, 25, 50, 0, 0)),
        ("range", Mix::new(20, 20, 50, 10, 100)),
    ];
    let mut out = format!(
        "\n### E14 — Open-loop latency through the network server \
         (pnb-server on loopback, scrambled-Zipf θ=0.99, {threads} client \
         threads, key range {kr})\n\n\
         | mix | offered | achieved | imbalance | op | samples | p50 | p99 | p999 |\n\
         |---|---|---|---|---|---|---|---|---|\n"
    );
    for (mix_name, mix) in mixes {
        for &rate in &rates {
            // Fresh server per cell: its own map, workers and port;
            // drained and joined before the next cell starts.
            let server_cfg = ServerConfig {
                shards: 8,
                workers: threads,
                refresh_every: 256,
                drain_grace: Duration::from_millis(100),
                ..Default::default()
            };
            let (addr, shutdown, join) = Server::bind("127.0.0.1:0", server_cfg)
                .expect("bind loopback ephemeral port")
                .spawn()
                .expect("spawn in-process server");
            let map = NetMap::connect(addr).expect("dial in-process server");
            let cfg = OpenLoopConfig {
                threads,
                target_rate: rate,
                duration: opts.duration(),
                key_dist: KeyDist::scrambled_zipfian(kr, 0.99),
                mix,
                prefill_fraction: 0.5,
                seed: 42,
                interval_log: None,
            };
            eprintln!("  {mix_name} mix / offered {:.0}k ops/s ...", rate / 1e3);
            let m = workload::run_open_loop(&map, &cfg).expect("NetMap declares every capability");

            // Per-shard load spread, served by the Stats opcode (zeros
            // without the stats build).
            let shard_ops = Client::connect(addr)
                .and_then(|mut c| c.stats().map_err(|_| std::io::ErrorKind::Other.into()))
                .map(|s| s.shard_ops)
                .unwrap_or_default();
            let total: u64 = shard_ops.iter().sum();
            let imbalance = if total == 0 {
                None
            } else {
                let max = *shard_ops.iter().max().expect("non-empty") as f64;
                Some(max / (total as f64 / shard_ops.len() as f64))
            };
            let imb_label = imbalance.map_or("n/a".to_string(), |x| format!("{x:.2}"));

            drop(map);
            shutdown.signal();
            join.join()
                .expect("server thread joins")
                .expect("server drains cleanly");

            for c in &m.classes {
                log.push(
                    "e14",
                    &[
                        ("structure", Val::s(&m.name)),
                        ("mix", Val::s(mix_name)),
                        ("threads", Val::U(threads as u64)),
                        ("key_range", Val::U(kr)),
                        ("offered_rate", Val::F(m.offered_rate)),
                        ("achieved_rate", Val::F(m.achieved_rate)),
                        ("elapsed_secs", Val::F(m.elapsed_secs)),
                        ("load_imbalance", Val::F(imbalance.unwrap_or(0.0))),
                        ("op", Val::s(&c.class)),
                        ("samples", Val::U(c.count)),
                        ("p50_ns", Val::U(c.p50_ns)),
                        ("p99_ns", Val::U(c.p99_ns)),
                        ("p999_ns", Val::U(c.p999_ns)),
                        ("max_ns", Val::U(c.max_ns)),
                    ],
                );
                out.push_str(&format!(
                    "| {mix_name} | {} | {} | {imb_label} | {} | {} | {} | {} | {} |\n",
                    fmt_tput(m.offered_rate),
                    fmt_tput(m.achieved_rate),
                    c.class,
                    c.count,
                    fmt_ns(c.p50_ns),
                    fmt_ns(c.p99_ns),
                    fmt_ns(c.p999_ns),
                ));
            }
            pnb_bst::collector_drain(64);
            pnb_bst::arena_trim(); // heap hygiene between cells
        }
    }
    out.push_str(
        "\n*(every operation crosses loopback TCP and the server's worker \
         loop; imbalance is max/mean of per-shard op counts — `n/a` without \
         `--features stats`)*\n",
    );
    out
}

/// E15: the graceful-degradation curve. Calibrate the server's
/// single-connection capacity with a closed-loop pipelined burst, then
/// sweep offered rate at {0.5, 1, 2, 4}× capacity with an open-loop
/// pipelined driver (arrivals on schedule, *not* waiting for
/// responses, so the worker's backlog genuinely grows past its
/// admission limit) and record, per rate: goodput (accepted ops/s),
/// shed rate (fraction answered with a typed `Busy` frame), and the
/// p99 of *accepted* ops measured from each op's intended start.
///
/// The overload contract this plots: goodput must plateau near
/// capacity instead of collapsing, every over-limit request must be
/// *answered* (the driver asserts sent == accepted + shed), and the
/// Busy frames carry the shed signal clients back off on.
pub fn e15(opts: &ExpOpts, log: &mut JsonLog) -> String {
    use pnb_server::{
        decode_response, encode_request, AdmissionConfig, Client, FrameBuf, ReqBody, Request,
        RespBody, Server, ServerConfig,
    };
    use std::io::{Read, Write};
    use workload::HdrHistogram;

    let kr: u64 = if opts.quick { 8_192 } else { 65_536 };
    let duration = if opts.quick {
        Duration::from_millis(400)
    } else {
        Duration::from_millis(1500)
    };
    let multipliers = [0.5, 1.0, 2.0, 4.0];

    // One worker with a modest in-flight budget: overload must shed,
    // not absorb the whole sweep into queueing.
    let server_cfg = ServerConfig {
        shards: 8,
        workers: 1,
        drain_grace: Duration::from_millis(100),
        admission: AdmissionConfig {
            max_inflight: 512,
            ..AdmissionConfig::default()
        },
        ..Default::default()
    };
    let (addr, shutdown, join) = Server::bind("127.0.0.1:0", server_cfg)
        .expect("bind loopback ephemeral port")
        .spawn()
        .expect("spawn in-process server");

    // Prefill so gets have data to hit — windowed at 256 outstanding so
    // the admission limit (512) never sheds a prefill insert.
    {
        let mut c = Client::connect(addr).expect("dial for prefill");
        let n = kr.min(8_192);
        for batch in (0..n).step_by(256) {
            let hi = (batch + 256).min(n);
            for k in batch..hi {
                c.send(ReqBody::Insert { key: k, value: k }).expect("send");
            }
            for _ in batch..hi {
                c.recv().expect("prefill ack");
            }
        }
    }

    // Closed-loop calibration: a fixed window of pipelined gets (well
    // under max_inflight, so nothing sheds) for ~300 ms.
    let capacity = {
        let mut c = Client::connect(addr).expect("dial for calibration");
        let window = 256u64;
        for i in 0..window {
            c.send(ReqBody::Get { key: i % kr }).expect("send");
        }
        let t0 = std::time::Instant::now();
        let mut done = 0u64;
        while t0.elapsed() < Duration::from_millis(300) {
            c.recv().expect("calibration recv");
            c.send(ReqBody::Get { key: done % kr }).expect("send");
            done += 1;
        }
        for _ in 0..window {
            c.recv().expect("drain window");
        }
        done as f64 / t0.elapsed().as_secs_f64()
    };
    eprintln!("  calibrated capacity ≈ {:.0}k ops/s", capacity / 1e3);

    let mut out = format!(
        "\n### E15 — Graceful degradation past capacity (pnb-server on \
         loopback, 1 worker, max_inflight 512, calibrated capacity \
         {}, key range {kr})\n\n\
         | offered | ×cap | goodput | goodput/cap | shed | p99 accepted |\n\
         |---|---|---|---|---|---|\n",
        fmt_tput(capacity)
    );

    for &mult in &multipliers {
        let rate = capacity * mult;
        eprintln!("  offered {:.0}k ops/s ({mult}× capacity) ...", rate / 1e3);
        let stream = std::net::TcpStream::connect(addr).expect("dial driver conn");
        stream.set_nodelay(true).expect("nodelay");
        // Short read timeout: the reader re-checks the writer's final
        // sent count on each wakeup instead of parking forever once the
        // last response has been drained.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        let mut wstream = stream.try_clone().expect("clone for writer");
        let interval = Duration::from_secs_f64(1.0 / rate);
        let total_sent = std::sync::atomic::AtomicU64::new(u64::MAX);
        let (accepted, shed, hist, elapsed) = std::thread::scope(|s| {
            // Writer: open loop — send every op at its intended time,
            // batch whatever is due, never wait for responses.
            let sent_ref = &total_sent;
            s.spawn(move || {
                let start = std::time::Instant::now();
                let mut sent = 0u64;
                let mut buf = Vec::with_capacity(64 * 28);
                while start.elapsed() < duration {
                    let due = (start.elapsed().as_secs_f64() / interval.as_secs_f64()) as u64 + 1;
                    buf.clear();
                    while sent < due {
                        buf.extend_from_slice(&encode_request(&Request {
                            id: sent,
                            body: ReqBody::Get { key: sent % kr },
                        }));
                        sent += 1;
                    }
                    if !buf.is_empty() {
                        wstream.write_all(&buf).expect("driver write");
                    }
                    std::thread::sleep(interval.min(Duration::from_micros(200)));
                }
                sent_ref.store(sent, std::sync::atomic::Ordering::Release);
            });
            // Reader: responses come back in request order; latency is
            // measured from each op's *intended* start (index i maps to
            // start + i·interval) — coordinated-omission-free.
            let reader = s.spawn(move || {
                let start = std::time::Instant::now();
                let mut rstream = stream;
                let mut frames = FrameBuf::new();
                let mut chunk = [0u8; 64 * 1024];
                let mut hist = HdrHistogram::new();
                let (mut got, mut ok, mut busy) = (0u64, 0u64, 0u64);
                loop {
                    let target = sent_ref.load(std::sync::atomic::Ordering::Acquire);
                    if got >= target {
                        break;
                    }
                    assert!(
                        start.elapsed() < duration + Duration::from_secs(30),
                        "driver wedged: {got} of {target} responses after the deadline"
                    );
                    match frames.next_frame().expect("driver frame") {
                        Some(frame) => {
                            let resp = decode_response(&frame).expect("driver decode");
                            let intended = interval.mul_f64(got as f64);
                            match resp.body {
                                RespBody::Busy { .. } => busy += 1,
                                _ => {
                                    ok += 1;
                                    hist.record(
                                        start.elapsed().saturating_sub(intended).as_nanos() as u64,
                                    );
                                }
                            }
                            got += 1;
                        }
                        None => match rstream.read(&mut chunk) {
                            Ok(0) => panic!("server closed mid-run"),
                            Ok(n) => frames.feed(&chunk[..n]),
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut => {}
                            Err(e) => panic!("driver read: {e}"),
                        },
                    }
                }
                assert_eq!(got, ok + busy, "every request answered, none dropped");
                (ok, busy, hist, start.elapsed())
            });
            reader.join().expect("reader thread")
        });
        let total = accepted + shed;
        let goodput = accepted as f64 / elapsed.as_secs_f64();
        let shed_rate = shed as f64 / total.max(1) as f64;
        let p99 = hist.value_at_percentile(99.0).unwrap_or(0);
        out.push_str(&format!(
            "| {} | {mult}× | {} | {:.2} | {:.1}% | {} |\n",
            fmt_tput(rate),
            fmt_tput(goodput),
            goodput / capacity,
            shed_rate * 100.0,
            fmt_ns(p99),
        ));
        log.push(
            "e15",
            &[
                ("structure", Val::s("pnb-sharded-net")),
                ("key_range", Val::U(kr)),
                ("capacity_ops", Val::F(capacity)),
                ("rate_multiplier", Val::F(mult)),
                ("offered_rate", Val::F(rate)),
                ("goodput", Val::F(goodput)),
                ("goodput_vs_capacity", Val::F(goodput / capacity)),
                ("shed_rate", Val::F(shed_rate)),
                ("accepted", Val::U(accepted)),
                ("shed", Val::U(shed)),
                ("p99_ns", Val::U(p99)),
            ],
        );
    }

    shutdown.signal();
    join.join()
        .expect("server thread joins")
        .expect("server drains cleanly");
    pnb_bst::collector_drain(64);
    pnb_bst::arena_trim();
    out.push_str(
        "\n*(open-loop pipelined driver on one connection: arrivals stay on \
         schedule past capacity, so the worker's backlog crosses its \
         admission limit and excess requests come back as typed `Busy` \
         frames; goodput plateauing near capacity — instead of collapsing \
         under queueing — is the graceful-degradation contract. p99 is over \
         accepted ops only, measured from intended start.)*\n",
    );
    out
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

// Re-exported so the roster helpers read naturally from the bin.
pub use workload::CapabilityError;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOpts {
        ExpOpts { quick: true }
    }

    // These are smoke tests: each experiment must run end-to-end and
    // produce a table (plus JSON rows for the trajectory file).

    #[test]
    fn e5_produces_three_rows_and_json() {
        let mut log = JsonLog::new();
        let s = e5(&tiny(), &mut log);
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("nb-bst"));
        assert!(s.contains("seq-bst"));
        assert_eq!(log.len(), 3);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e5\""));
        assert!(rendered.contains("\"structure\": \"pnb-bst\""));
    }

    #[test]
    fn e7_runs_and_mentions_stats_state() {
        let mut log = JsonLog::new();
        let s = e7(&tiny(), &mut log);
        assert!(s.contains("scan %") || s.contains("scan%") || s.contains("| 0 |"));
        assert_eq!(log.len(), 4); // one row per scan percentage
    }

    #[test]
    fn table_formatting_helpers() {
        assert_eq!(fmt_tput(2_000_000.0), "2.00 Mops/s");
        assert_eq!(fmt_tput(5_000.0), "5 Kops/s");
    }

    #[test]
    fn e8_reports_both_structures() {
        let mut log = JsonLog::new();
        let s = e8(&ExpOpts { quick: true }, &mut log);
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("rwlock-btreemap"));
        assert!(s.contains("range_scan"));
        assert!(log.len() >= 8); // ≥4 op classes × 2 structures
    }

    #[test]
    fn e8r_reports_collector_scaling_rows() {
        let mut log = JsonLog::new();
        let s = e8r(&tiny(), &mut log);
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("nb-bst"));
        // 2 structures × 3 thread counts in quick mode.
        assert_eq!(log.len(), 6);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e8r\""));
        assert!(rendered.contains("\"bags_sealed\""));
    }

    #[test]
    fn e9_reports_arena_churn_rows() {
        let mut log = JsonLog::new();
        let s = e9(&tiny(), &mut log);
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("nb-bst"));
        // 2 structures × 3 thread counts in quick mode.
        assert_eq!(log.len(), 6);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e9\""));
        assert!(rendered.contains("\"pool_hits\""));
        #[cfg(feature = "stats")]
        {
            // The pnb rows must show the pools actually working.
            assert!(rendered.contains("\"stats_enabled\": true"));
        }
    }

    #[test]
    fn e10_reports_shard_scaling_rows() {
        let mut log = JsonLog::new();
        let s = e10(&tiny(), &mut log);
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("pnb-sharded-x8"));
        // (1 unsharded + 3 shard counts) × 3 thread counts in quick mode.
        assert_eq!(log.len(), 12);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e10\""));
        assert!(rendered.contains("\"shards\": 8"));
    }

    #[test]
    fn e11_reports_open_loop_rows_per_rate_and_class() {
        let mut log = JsonLog::new();
        let s = e11(&tiny(), &mut log);
        for name in ["pnb-bst", "pnb-sharded", "nb-bst", "rwlock-btreemap"] {
            assert!(s.contains(name), "{name} missing from the table");
        }
        // 4 structures × 3 offered rates × 3 op classes (every class of
        // a 25/25/50 mix is sampled thousands of times per cell).
        assert_eq!(log.len(), 36);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e11\""));
        assert!(rendered.contains("\"offered_rate\""));
        assert!(rendered.contains("\"achieved_rate\""));
        assert!(rendered.contains("\"p999_ns\""));
    }

    #[test]
    fn e12_reports_checkpoint_drag_rows_per_mode_rate_and_class() {
        let mut log = JsonLog::new();
        let s = e12(&tiny(), &mut log);
        assert!(s.contains("Checkpoint drag"));
        // 2 checkpointer modes × 2 offered rates × 3 op classes.
        assert_eq!(log.len(), 12);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e12\""));
        assert!(rendered.contains("\"checkpoint_active\": true"));
        assert!(rendered.contains("\"checkpoint_active\": false"));
        assert!(rendered.contains("\"checkpoints\""));
        assert!(rendered.contains("\"interval_p99_max_ns\""));
    }

    #[test]
    fn e13_reports_batched_rows_with_descent_sharing() {
        let mut log = JsonLog::new();
        let s = e13(&tiny(), &mut log);
        assert!(s.contains("Batch-size sweep"));
        assert!(s.contains("pnb-bst"));
        assert!(s.contains("pnb-sharded"));
        // 2 batch-capable structures × 3 thread counts × 3 batch sizes
        // in quick mode.
        assert_eq!(log.len(), 18);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e13\""));
        assert!(rendered.contains("\"batch_size\": 64"));
        assert!(rendered.contains("\"ops_per_descent\""));
        assert!(rendered.contains("\"speedup_vs_singleton\""));
        assert!(rendered.contains("\"p99_ns\""));
    }

    #[test]
    fn e15_reports_overload_shedding_rows() {
        let mut log = JsonLog::new();
        let s = e15(&tiny(), &mut log);
        assert!(s.contains("Graceful degradation"));
        assert!(s.contains("shed"));
        // One row per offered-rate multiplier.
        assert_eq!(log.len(), 4);
        let rendered = log.render("quick", 1);
        assert!(rendered.contains("\"experiment\": \"e15\""));
        assert!(rendered.contains("\"goodput\""));
        assert!(rendered.contains("\"shed_rate\""));
        assert!(rendered.contains("\"goodput_vs_capacity\""));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(2_500), "2.5 \u{b5}s");
        assert_eq!(fmt_ns(3_000_000), "3.0 ms");
    }
}
