//! Regenerate the paper-protocol experiment tables (E1–E7).
//!
//! ```text
//! cargo run --release -p pnbbst-bench --bin experiments            # full sweep
//! cargo run --release -p pnbbst-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p pnbbst-bench --bin experiments -- e1 e5   # subset
//! cargo run --release -p pnbbst-bench --features stats --bin experiments -- e7
//! ```
//!
//! Markdown goes to stdout (pipe into EXPERIMENTS.md material); progress
//! goes to stderr.

use pnbbst_bench::experiments::{self, ExpOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"];
    let run_list: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };

    let opts = ExpOpts { quick };
    println!(
        "## Experiment results ({} mode, {} hardware threads)\n",
        if quick { "quick" } else { "full" },
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    for exp in run_list {
        eprintln!("=== running {exp} ===");
        let section = match exp {
            "e1" => experiments::e1(&opts),
            "e2" => experiments::e2(&opts),
            "e3" => experiments::e3(&opts),
            "e4" => experiments::e4(&opts),
            "e5" => experiments::e5(&opts),
            "e6" => experiments::e6(&opts),
            "e7" => experiments::e7(&opts),
            "e8" => experiments::e8(&opts),
            other => {
                eprintln!("unknown experiment: {other} (expected e1..e8)");
                std::process::exit(2);
            }
        };
        println!("{section}");
    }
}
