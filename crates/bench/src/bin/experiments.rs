//! Regenerate the paper-protocol experiment tables (E1–E8, plus the
//! E8r collector-reclamation, E9 allocator-churn, E10 shard-scaling,
//! E11 open-loop tail-latency, E12 checkpoint-drag, E13 batch-size,
//! E14 network-server and E15 overload-shedding extensions).
//!
//! ```text
//! cargo run --release -p pnbbst-bench --bin experiments            # full sweep
//! cargo run --release -p pnbbst-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p pnbbst-bench --bin experiments -- e1 e5   # subset
//! cargo run --release -p pnbbst-bench --features stats --bin experiments -- e7
//! cargo run --release -p pnbbst-bench --features stats --bin experiments -- e9
//! cargo run --release -p pnbbst-bench --bin experiments -- e10  # shard-count sweep
//! cargo run --release -p pnbbst-bench --bin experiments -- --quick --json BENCH_quick.json
//! ```
//!
//! Markdown goes to stdout (pipe into EXPERIMENTS.md material); progress
//! goes to stderr; `--json <path>` additionally writes every measurement
//! as a flat machine-readable row so CI can record `BENCH_*.json` perf
//! trajectories across PRs.

use pnbbst_bench::experiments::{self, ExpOpts, JsonLog};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path: Option<String> =
        args.iter()
            .position(|a| a == "--json")
            .map(|i| match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => p.clone(),
                _ => {
                    eprintln!("--json requires a file path argument");
                    std::process::exit(2);
                }
            });
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let all = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e8r", "e9", "e10", "e11", "e12", "e13",
        "e14", "e15",
    ];
    let run_list: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };

    let opts = ExpOpts { quick };
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "## Experiment results ({} mode, {} hardware threads)\n",
        if quick { "quick" } else { "full" },
        hw_threads
    );

    let mut log = JsonLog::new();
    for exp in run_list {
        eprintln!("=== running {exp} ===");
        let section = match exp {
            "e1" => experiments::e1(&opts, &mut log),
            "e2" => experiments::e2(&opts, &mut log),
            "e3" => experiments::e3(&opts, &mut log),
            "e4" => experiments::e4(&opts, &mut log),
            "e5" => experiments::e5(&opts, &mut log),
            "e6" => experiments::e6(&opts, &mut log),
            "e7" => experiments::e7(&opts, &mut log),
            "e8" => experiments::e8(&opts, &mut log),
            "e8r" => experiments::e8r(&opts, &mut log),
            "e9" => experiments::e9(&opts, &mut log),
            "e10" => experiments::e10(&opts, &mut log),
            "e11" => experiments::e11(&opts, &mut log),
            "e12" => experiments::e12(&opts, &mut log),
            "e13" => experiments::e13(&opts, &mut log),
            "e14" => experiments::e14(&opts, &mut log),
            "e15" => experiments::e15(&opts, &mut log),
            other => {
                eprintln!(
                    "unknown experiment: {other} (expected e1..e8, e8r, e9, e10, e11, e12, e13, e14, e15)"
                );
                std::process::exit(2);
            }
        };
        println!("{section}");
    }

    if let Some(path) = json_path {
        let doc = log.render(if quick { "quick" } else { "full" }, hw_threads);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} JSON rows to {path}", log.len());
    }
}
