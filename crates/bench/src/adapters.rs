//! [`ConcurrentMap`] adapters for every structure under test, so the
//! workload driver and all experiments are structure-agnostic.

use workload::ConcurrentMap;

/// PNB-BST (the paper's structure).
#[derive(Default)]
pub struct Pnb(pub pnb_bst::PnbBst<u64, u64>);

impl Pnb {
    /// Fresh empty tree.
    pub fn new() -> Self {
        Pnb(pnb_bst::PnbBst::new())
    }
}

impl ConcurrentMap for Pnb {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn delete(&self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
    fn name(&self) -> &'static str {
        "pnb-bst"
    }
}

/// NB-BST (Ellen et al., the non-persistent substrate — no range scans).
#[derive(Default)]
pub struct Nb(pub nb_bst::NbBst<u64, u64>);

impl Nb {
    /// Fresh empty tree.
    pub fn new() -> Self {
        Nb(nb_bst::NbBst::new())
    }
}

impl ConcurrentMap for Nb {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn delete(&self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&self, _lo: &u64, _hi: &u64) -> usize {
        unreachable!("NB-BST has no linearizable range scan")
    }
    fn supports_range_scan(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "nb-bst"
    }
}

/// Coarse reader-writer-locked BTreeMap.
#[derive(Default)]
pub struct Rw(pub lock_bst::RwLockTree<u64, u64>);

impl Rw {
    /// Fresh empty map.
    pub fn new() -> Self {
        Rw(lock_bst::RwLockTree::new())
    }
}

impl ConcurrentMap for Rw {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn delete(&self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
    fn name(&self) -> &'static str {
        "rwlock-btreemap"
    }
}

/// Coarse mutex-locked BTreeMap.
#[derive(Default)]
pub struct Mx(pub lock_bst::MutexTree<u64, u64>);

impl Mx {
    /// Fresh empty map.
    pub fn new() -> Self {
        Mx(lock_bst::MutexTree::new())
    }
}

impl ConcurrentMap for Mx {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn delete(&self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
    fn name(&self) -> &'static str {
        "mutex-btreemap"
    }
}

/// Build one instance of every structure that supports the given mix.
pub fn all_structures(need_ranges: bool) -> Vec<Box<dyn ConcurrentMap>> {
    let mut v: Vec<Box<dyn ConcurrentMap>> = vec![Box::new(Pnb::new())];
    if !need_ranges {
        v.push(Box::new(Nb::new()));
    }
    v.push(Box::new(Rw::new()));
    v.push(Box::new(Mx::new()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapters_agree_on_semantics() {
        let maps: Vec<Box<dyn ConcurrentMap>> = vec![
            Box::new(Pnb::new()),
            Box::new(Nb::new()),
            Box::new(Rw::new()),
            Box::new(Mx::new()),
        ];
        for m in &maps {
            assert!(m.insert(5, 50), "{}", m.name());
            assert!(!m.insert(5, 51), "{}", m.name());
            assert_eq!(m.get(&5), Some(50), "{}", m.name());
            assert!(m.delete(&5), "{}", m.name());
            assert!(!m.delete(&5), "{}", m.name());
            assert_eq!(m.get(&5), None, "{}", m.name());
        }
    }

    #[test]
    fn range_capable_adapters_scan() {
        let maps: Vec<Box<dyn ConcurrentMap>> = vec![
            Box::new(Pnb::new()),
            Box::new(Rw::new()),
            Box::new(Mx::new()),
        ];
        for m in &maps {
            for k in 0..100 {
                m.insert(k, k);
            }
            assert_eq!(m.range_scan(&10, &19), 10, "{}", m.name());
            assert!(m.supports_range_scan());
        }
    }

    #[test]
    fn structure_roster_respects_range_support() {
        assert_eq!(all_structures(false).len(), 4);
        let with_ranges = all_structures(true);
        assert_eq!(with_ranges.len(), 3);
        assert!(with_ranges.iter().all(|m| m.supports_range_scan()));
    }
}
