//! [`ConcurrentMap`] adapters for every structure under test, so the
//! workload driver and all experiments are structure-agnostic.
//!
//! Each adapter pairs the map with a pinned session type (epoch handle
//! for the trees, plain borrow for the locked maps) and a typed
//! capability declaration ([`Caps`]): NB-BST declares
//! `range_scan: false` instead of panicking from an `unreachable!` when
//! a misconfigured mix reaches it — the drivers reject such mixes with a
//! [`workload::CapabilityError`] before any operation runs.

use workload::{BatchOp, BatchReport, CapabilityError, Caps, ConcurrentMap, MapSession, Mix};

/// Convert the harness's `u64` batch ops into the core batch type.
fn to_core_batch(ops: &[BatchOp]) -> Vec<pnb_bst::BatchOp<u64, u64>> {
    ops.iter()
        .map(|op| match *op {
            BatchOp::Get(k) => pnb_bst::BatchOp::Get(k),
            BatchOp::Insert(k, v) => pnb_bst::BatchOp::Insert(k, v),
            BatchOp::Upsert(k, v) => pnb_bst::BatchOp::Upsert(k, v),
            BatchOp::Delete(k) => pnb_bst::BatchOp::Delete(k),
        })
        .collect()
}

/// Convert the core descent telemetry back into the harness type.
fn from_core_report(r: pnb_bst::BatchReport) -> BatchReport {
    BatchReport {
        ops: r.ops,
        root_descents: r.root_descents,
    }
}

/// PNB-BST (the paper's structure).
#[derive(Default)]
pub struct Pnb(pub pnb_bst::PnbBst<u64, u64>);

impl Pnb {
    /// Fresh empty tree.
    pub fn new() -> Self {
        Pnb(pnb_bst::PnbBst::new())
    }
}

/// Pinned session on a [`Pnb`] (wraps `pnb_bst::Handle`).
pub struct PnbSession<'a>(pnb_bst::Handle<'a, u64, u64>);

impl MapSession for PnbSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        self.0.upsert(k, v)
    }
    fn delete(&mut self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&mut self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
    fn refresh(&mut self) {
        self.0.refresh()
    }
    fn apply_batch(&mut self, ops: &[BatchOp]) -> BatchReport {
        let (out, r) = self.0.apply_batch_reported(&to_core_batch(ops));
        std::hint::black_box(out);
        from_core_report(r)
    }
}

impl ConcurrentMap for Pnb {
    type Session<'a> = PnbSession<'a>;
    fn pin(&self) -> PnbSession<'_> {
        PnbSession(self.0.pin())
    }
    fn capabilities(&self) -> Caps {
        Caps::all()
    }
    fn name(&self) -> &'static str {
        "pnb-bst"
    }
}

/// Sharded PNB-BST front-end (`pnb_shard::ShardedPnbBst`): the key
/// space partitioned over independent PNB-BSTs, point ops routed per
/// shard, ranges merged across per-shard wait-free scans. Full
/// capability surface — every per-shard guarantee carries over, and
/// cross-shard reads are the prefix-consistent cut documented in the
/// `pnb-shard` crate.
pub struct Sharded(pub pnb_shard::ShardedPnbBst<u64, u64>);

impl Sharded {
    /// The shard count the roster uses when no sweep overrides it —
    /// enough to split contention visibly at the thread counts the
    /// experiments drive, small enough that cross-shard scans stay
    /// comparable.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Fresh empty sharded map with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Fresh empty sharded map with an explicit shard count (the E10
    /// sweep axis).
    pub fn with_shards(shards: usize) -> Self {
        Sharded(pnb_shard::ShardedPnbBst::new(shards))
    }
}

impl Default for Sharded {
    fn default() -> Self {
        Self::new()
    }
}

/// Pinned session on a [`Sharded`] map (wraps `pnb_shard::ShardedSession`:
/// one epoch handle per shard).
pub struct ShardedMapSession<'a>(pnb_shard::ShardedSession<'a, u64, u64>);

impl MapSession for ShardedMapSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        self.0.upsert(k, v)
    }
    fn delete(&mut self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&mut self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
    fn refresh(&mut self) {
        self.0.refresh()
    }
    fn apply_batch(&mut self, ops: &[BatchOp]) -> BatchReport {
        let (out, r) = self.0.apply_batch_reported(&to_core_batch(ops));
        std::hint::black_box(out);
        from_core_report(r)
    }
}

impl ConcurrentMap for Sharded {
    type Session<'a> = ShardedMapSession<'a>;
    fn pin(&self) -> ShardedMapSession<'_> {
        ShardedMapSession(self.0.pin())
    }
    /// Declares the full surface, with one honesty note: `range_scan`
    /// here means *per-shard linearizable, cross-shard
    /// prefix-consistent* (the `pnb-shard` consistency model, DESIGN
    /// §6) — strictly weaker than the single-tree structures' fully
    /// linearizable scans, strictly stronger than the no-guarantee
    /// case the flag exists to exclude. Range-mix tables (E3/E4) that
    /// include this row are comparing that documented model, not
    /// claiming equivalence.
    fn capabilities(&self) -> Caps {
        Caps::all()
    }
    fn name(&self) -> &'static str {
        "pnb-sharded"
    }
}

/// NB-BST (Ellen et al., the non-persistent substrate — no range scans,
/// no atomic upsert, no snapshots; exactly what [`Caps::point_ops`]
/// declares).
#[derive(Default)]
pub struct Nb(pub nb_bst::NbBst<u64, u64>);

impl Nb {
    /// Fresh empty tree.
    pub fn new() -> Self {
        Nb(nb_bst::NbBst::new())
    }
}

/// Pinned session on an [`Nb`] (wraps `nb_bst::Handle`).
pub struct NbSession<'a>(nb_bst::Handle<'a, u64, u64>);

impl MapSession for NbSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        // Best-effort emulation (delete-then-insert): NOT atomic — an
        // observer can see the key absent mid-upsert, which is why `Nb`
        // declares `upsert: false` and no driver mix ever reaches this.
        let prev = self.0.remove(&k);
        self.0.insert(k, v);
        prev
    }
    fn delete(&mut self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&mut self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        // Unreachable by construction: `Caps::point_ops` keeps range
        // mixes away at configuration time — loudly so in debug builds.
        debug_assert!(
            false,
            "range_scan driven on nb-bst despite Caps {{ range_scan: false }}"
        );
        // If reached anyway, a bound-respecting quiescent count is the
        // most honest non-linearizable answer.
        self.0
            .tree()
            .to_vec_quiescent()
            .into_iter()
            .filter(|(k, _)| k >= lo && k <= hi)
            .count()
    }
    fn refresh(&mut self) {
        self.0.refresh()
    }
}

impl ConcurrentMap for Nb {
    type Session<'a> = NbSession<'a>;
    fn pin(&self) -> NbSession<'_> {
        NbSession(self.0.pin())
    }
    fn capabilities(&self) -> Caps {
        Caps::point_ops()
    }
    fn name(&self) -> &'static str {
        "nb-bst"
    }
}

/// Coarse reader-writer-locked BTreeMap.
#[derive(Default)]
pub struct Rw(pub lock_bst::RwLockTree<u64, u64>);

impl Rw {
    /// Fresh empty map.
    pub fn new() -> Self {
        Rw(lock_bst::RwLockTree::new())
    }
}

/// Session on an [`Rw`] — no guard; a plain borrow.
pub struct RwSession<'a>(&'a lock_bst::RwLockTree<u64, u64>);

impl MapSession for RwSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        self.0.upsert(k, v)
    }
    fn delete(&mut self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&mut self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
}

impl ConcurrentMap for Rw {
    type Session<'a> = RwSession<'a>;
    fn pin(&self) -> RwSession<'_> {
        RwSession(&self.0)
    }
    fn capabilities(&self) -> Caps {
        Caps {
            range_scan: true,
            upsert: true,
            snapshot: false,
            batched: false,
        }
    }
    fn name(&self) -> &'static str {
        "rwlock-btreemap"
    }
}

/// Coarse mutex-locked BTreeMap.
#[derive(Default)]
pub struct Mx(pub lock_bst::MutexTree<u64, u64>);

impl Mx {
    /// Fresh empty map.
    pub fn new() -> Self {
        Mx(lock_bst::MutexTree::new())
    }
}

/// Session on an [`Mx`] — no guard; a plain borrow.
pub struct MxSession<'a>(&'a lock_bst::MutexTree<u64, u64>);

impl MapSession for MxSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        self.0.upsert(k, v)
    }
    fn delete(&mut self, k: &u64) -> bool {
        self.0.delete(k)
    }
    fn get(&mut self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        self.0.scan_count(lo, hi)
    }
}

impl ConcurrentMap for Mx {
    type Session<'a> = MxSession<'a>;
    fn pin(&self) -> MxSession<'_> {
        MxSession(&self.0)
    }
    fn capabilities(&self) -> Caps {
        Caps {
            range_scan: true,
            upsert: true,
            snapshot: false,
            batched: false,
        }
    }
    fn name(&self) -> &'static str {
        "mutex-btreemap"
    }
}

/// One of the structures under test, for code that iterates the roster
/// (the session-typed [`ConcurrentMap`] is not object-safe, so the
/// experiments dispatch through this enum instead of `dyn`).
// The variants intentionally embed the whole structure (a few cache
// lines for the padded counter): a handful of roster entries exist per
// experiment, so the size imbalance is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum Structure {
    /// The paper's tree.
    Pnb(Pnb),
    /// The sharded front-end over the paper's tree.
    PnbSharded(Sharded),
    /// The PODC 2010 baseline.
    Nb(Nb),
    /// RwLock'd BTreeMap.
    Rw(Rw),
    /// Mutex'd BTreeMap.
    Mx(Mx),
}

/// Dispatch a generic closure-like body over the concrete map inside a
/// [`Structure`] (crate-visible so the experiments module can reuse it
/// for its own generic helpers).
macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            $crate::adapters::Structure::Pnb($m) => $body,
            $crate::adapters::Structure::PnbSharded($m) => $body,
            $crate::adapters::Structure::Nb($m) => $body,
            $crate::adapters::Structure::Rw($m) => $body,
            $crate::adapters::Structure::Mx($m) => $body,
        }
    };
}
pub(crate) use dispatch;

impl Structure {
    /// Structure name for reports.
    pub fn name(&self) -> &'static str {
        dispatch!(self, m => m.name())
    }

    /// Declared capabilities.
    pub fn capabilities(&self) -> Caps {
        dispatch!(self, m => m.capabilities())
    }

    /// A fresh instance of the same structure (experiments that sweep a
    /// parameter use one instance per cell).
    pub fn fresh(&self) -> Structure {
        match self {
            Structure::Pnb(_) => Structure::Pnb(Pnb::new()),
            Structure::PnbSharded(s) => {
                Structure::PnbSharded(Sharded::with_shards(s.0.shard_count()))
            }
            Structure::Nb(_) => Structure::Nb(Nb::new()),
            Structure::Rw(_) => Structure::Rw(Rw::new()),
            Structure::Mx(_) => Structure::Mx(Mx::new()),
        }
    }

    /// [`workload::run_throughput`] on the wrapped map.
    pub fn run_throughput(
        &self,
        cfg: &workload::RunConfig,
    ) -> Result<workload::Measurement, CapabilityError> {
        dispatch!(self, m => workload::run_throughput(m, cfg))
    }

    /// [`workload::run_scan_updater`] on the wrapped map.
    pub fn run_scan_updater(
        &self,
        cfg: &workload::ScanUpdaterConfig,
    ) -> Result<workload::ScanUpdaterMeasurement, CapabilityError> {
        dispatch!(self, m => workload::run_scan_updater(m, cfg))
    }

    /// [`workload::run_open_loop`] on the wrapped map.
    pub fn run_open_loop(
        &self,
        cfg: &workload::OpenLoopConfig,
    ) -> Result<workload::OpenLoopMeasurement, CapabilityError> {
        dispatch!(self, m => workload::run_open_loop(m, cfg))
    }

    /// [`workload::run_batched_throughput`] on the wrapped map.
    pub fn run_batched_throughput(
        &self,
        cfg: &workload::BatchedRunConfig,
    ) -> Result<workload::BatchedMeasurement, CapabilityError> {
        dispatch!(self, m => workload::run_batched_throughput(m, cfg))
    }

    /// [`workload::run_latency`] on the wrapped map.
    pub fn run_latency(
        &self,
        threads: usize,
        duration: std::time::Duration,
        key_dist: &workload::KeyDist,
        mix: Mix,
        seed: u64,
    ) -> Result<workload::LatencyReport, CapabilityError> {
        dispatch!(self, m => workload::run_latency(m, threads, duration, key_dist, mix, seed))
    }
}

/// Build one instance of every structure whose declared capabilities
/// cover `required` (e.g. `Caps::point_ops()` admits everything;
/// a `range_scan` requirement excludes NB-BST).
pub fn all_structures(required: Caps) -> Vec<Structure> {
    let covers = |c: Caps| {
        (!required.range_scan || c.range_scan)
            && (!required.upsert || c.upsert)
            && (!required.snapshot || c.snapshot)
            && (!required.batched || c.batched)
    };
    [
        Structure::Pnb(Pnb::new()),
        Structure::PnbSharded(Sharded::new()),
        Structure::Nb(Nb::new()),
        Structure::Rw(Rw::new()),
        Structure::Mx(Mx::new()),
    ]
    .into_iter()
    .filter(|s| covers(s.capabilities()))
    .collect()
}

/// Capability requirement implied by a mix.
pub fn required_caps(mix: &Mix) -> Caps {
    Caps {
        range_scan: mix.uses_ranges(),
        upsert: mix.uses_upserts(),
        snapshot: false,
        batched: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<M: ConcurrentMap>(m: &M) {
        let mut s = m.pin();
        assert!(s.insert(5, 50), "{}", m.name());
        assert!(!s.insert(5, 51), "{}", m.name());
        assert_eq!(s.get(&5), Some(50), "{}", m.name());
        assert!(s.delete(&5), "{}", m.name());
        assert!(!s.delete(&5), "{}", m.name());
        assert_eq!(s.get(&5), None, "{}", m.name());
        s.refresh();
    }

    #[test]
    fn adapters_agree_on_semantics() {
        drive(&Pnb::new());
        drive(&Sharded::new());
        drive(&Sharded::with_shards(1));
        drive(&Nb::new());
        drive(&Rw::new());
        drive(&Mx::new());
    }

    fn drive_upsert<M: ConcurrentMap>(m: &M) {
        assert!(m.capabilities().upsert, "{}", m.name());
        let mut s = m.pin();
        assert_eq!(s.upsert(3, 30), None, "{}", m.name());
        assert_eq!(s.upsert(3, 31), Some(30), "{}", m.name());
        assert_eq!(s.get(&3), Some(31), "{}", m.name());
    }

    #[test]
    fn upsert_capable_adapters_replace() {
        drive_upsert(&Pnb::new());
        drive_upsert(&Sharded::new());
        drive_upsert(&Rw::new());
        drive_upsert(&Mx::new());
        assert!(!Nb::new().capabilities().upsert);
    }

    #[test]
    fn range_capable_adapters_scan() {
        fn scan<M: ConcurrentMap>(m: &M) {
            assert!(m.capabilities().range_scan, "{}", m.name());
            let mut s = m.pin();
            for k in 0..100 {
                s.insert(k, k);
            }
            assert_eq!(s.range_scan(&10, &19), 10, "{}", m.name());
        }
        scan(&Pnb::new());
        scan(&Sharded::new());
        scan(&Rw::new());
        scan(&Mx::new());
    }

    #[test]
    fn structure_roster_respects_capabilities() {
        assert_eq!(all_structures(Caps::point_ops()).len(), 5);
        let with_ranges = all_structures(required_caps(&Mix::with_ranges(64)));
        assert_eq!(with_ranges.len(), 4);
        assert!(with_ranges.iter().all(|s| s.capabilities().range_scan));
        let with_upserts = all_structures(required_caps(&Mix::upsert_heavy()));
        assert_eq!(with_upserts.len(), 4);
        assert!(with_upserts.iter().all(|s| s.name() != "nb-bst"));
    }

    #[test]
    fn batch_capable_adapters_share_descents() {
        fn batch<M: ConcurrentMap>(m: &M, native: bool) {
            assert_eq!(m.capabilities().batched, native, "{}", m.name());
            let mut s = m.pin();
            let ops: Vec<BatchOp> = (0..32).map(|k| BatchOp::Upsert(k, k * 10)).collect();
            let r = s.apply_batch(&ops);
            assert_eq!(r.ops, 32, "{}", m.name());
            if native {
                assert!(
                    r.root_descents < 32,
                    "{}: fused batch must share descents ({} descents)",
                    m.name(),
                    r.root_descents
                );
            } else {
                assert_eq!(
                    r.root_descents,
                    32,
                    "{}: fallback is one descent/op",
                    m.name()
                );
            }
            for k in 0..32 {
                assert_eq!(s.get(&k), Some(k * 10), "{}", m.name());
            }
        }
        batch(&Pnb::new(), true);
        batch(&Sharded::new(), true);
        batch(&Sharded::with_shards(1), true);
        batch(&Rw::new(), false);
        batch(&Mx::new(), false);
    }

    #[test]
    fn misconfigured_mix_is_a_typed_config_error_not_a_panic() {
        // The old adapter hit `unreachable!` mid-run; now the driver
        // rejects the configuration before any operation executes.
        let nb = Structure::Nb(Nb::new());
        let cfg = workload::RunConfig::new(
            1,
            std::time::Duration::from_millis(10),
            workload::KeyDist::uniform(64),
            Mix::with_ranges(8),
        );
        let err = nb.run_throughput(&cfg).unwrap_err();
        assert_eq!(
            err,
            CapabilityError::RangeScan {
                structure: "nb-bst"
            }
        );
        assert!(err.to_string().contains("nb-bst"));
    }
}
