//! E1 — update-only scaling (paper evaluation protocol: 50% insert /
//! 50% delete, prefilled to half density, throughput vs thread count).
//!
//! Criterion lens: time to complete a fixed batch of operations split
//! across T threads — lower is better, and the T-thread/1-thread ratio
//! is the scaling curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Mx, Nb, Pnb, Rw};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

const OPS_PER_THREAD: u64 = 10_000;

fn bench_structure<M: ConcurrentMap>(c: &mut Criterion, map: &M, key_range: u64) {
    let mut group = c.benchmark_group(format!("e1_update_only/range_{key_range}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dist = KeyDist::uniform(key_range);
    prefill(map, key_range, 0.5, 42);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(map.name(), threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(
                            map,
                            threads,
                            OPS_PER_THREAD,
                            Mix::update_only(),
                            &dist,
                            42 + i,
                        );
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn e1(c: &mut Criterion) {
    for key_range in [1_000u64, 100_000] {
        let pnb = Pnb::new();
        bench_structure(c, &pnb, key_range);
        let nb = Nb::new();
        bench_structure(c, &nb, key_range);
        let rw = Rw::new();
        bench_structure(c, &rw, key_range);
        let mx = Mx::new();
        bench_structure(c, &mx, key_range);
    }
}

criterion_group!(benches, e1);
criterion_main!(benches);
