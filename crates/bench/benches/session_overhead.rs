//! Session vs per-call API: what the pinned [`pnb_bst::Handle`] buys on
//! the hot path.
//!
//! The compat methods pin and drop an epoch guard per operation; the
//! handle pins once per session. Under the E2 (search-dominated) shape
//! — where the tree work per operation is smallest — the guard churn is
//! the largest *relative* overhead, so that is where the session API
//! shows its win. The E1 (update-only) shape is the no-regression
//! check.
//!
//! Expected numbers with the *vendored* epoch shim: a modest E2 win and
//! parity (within the shim-criterion's ~5% noise) on E1 — the shim's
//! `pin()` is a bare thread-local epoch store, so there is little churn
//! to amortize, and holding a pin across a 64-op update batch delays
//! node reuse slightly (see DESIGN.md §3.4 on the shim collector).
//! With upstream crossbeam-epoch swapped in (full SeqCst fence per pin)
//! the session win grows; this bench exists so that swap — and any
//! later change to the hot path — has a trajectory to diff against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnb_bst::PnbBst;
use std::time::Duration;

const N: u64 = 10_000;

/// E2-shaped single-thread loop: 80% find / 10% insert / 10% delete.
fn e2_step_per_op(tree: &PnbBst<u64, u64>, x: &mut u64) {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
    let k = (*x >> 33) % N;
    match *x % 10 {
        0 => {
            std::hint::black_box(tree.insert(k, k));
        }
        1 => {
            std::hint::black_box(tree.delete(&k));
        }
        _ => {
            std::hint::black_box(tree.get(&k));
        }
    }
}

fn e2_step_session(h: &pnb_bst::Handle<'_, u64, u64>, x: &mut u64) {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
    let k = (*x >> 33) % N;
    match *x % 10 {
        0 => {
            std::hint::black_box(h.insert(k, k));
        }
        1 => {
            std::hint::black_box(h.delete(&k));
        }
        _ => {
            std::hint::black_box(h.get(&k));
        }
    }
}

fn bench_session_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_overhead");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Fresh, identically prefilled tree per measurement so neither
    // variant inherits the other's churned shape or deferred garbage.
    // Shuffled-ish prefill (odd stride): ascending insertion would
    // degenerate the unbalanced leaf-oriented BST into an O(n) spine.
    fn fresh_tree() -> PnbBst<u64, u64> {
        let tree = PnbBst::new();
        for i in 0..N / 2 {
            let k = (i.wrapping_mul(0x9E37 | 1) % N) & !1;
            tree.insert(k, k);
        }
        tree
    }

    for (label, update_only) in [("e2_read_mostly", false), ("e1_update_only", true)] {
        let tree = fresh_tree();
        let mut x = 0x9E3779B97F4A7C15u64;
        group.bench_function(BenchmarkId::new("per_op_pin", label), |b| {
            b.iter(|| {
                if update_only {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let k = (x >> 33) % N;
                    if x & 1 == 0 {
                        std::hint::black_box(tree.insert(k, k));
                    } else {
                        std::hint::black_box(tree.delete(&k));
                    }
                } else {
                    e2_step_per_op(&tree, &mut x);
                }
            })
        });

        let tree = fresh_tree();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut h = tree.pin();
        let mut n = 0u32;
        group.bench_function(BenchmarkId::new("pinned_session", label), |b| {
            b.iter(|| {
                if update_only {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let k = (x >> 33) % N;
                    if x & 1 == 0 {
                        std::hint::black_box(h.insert(k, k));
                    } else {
                        std::hint::black_box(h.delete(&k));
                    }
                } else {
                    e2_step_session(&h, &mut x);
                }
                n = n.wrapping_add(1);
                if n.is_multiple_of(64) {
                    h.refresh();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_overhead);
criterion_main!(benches);
