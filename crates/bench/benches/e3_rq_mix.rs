//! E3 — mixed workload including wait-free range queries
//! (25% insert / 25% delete / 40% find / 10% range query of width 100).
//!
//! NB-BST is excluded: it has no linearizable range query — that is the
//! capability gap PNB-BST closes. The lock-based maps serialize scans
//! against updates; PNB-BST's scans are wait-free and do not block
//! updates outside their path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Mx, Pnb, Rw};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

const OPS_PER_THREAD: u64 = 5_000;

fn bench_structure<M: ConcurrentMap>(c: &mut Criterion, map: &M, key_range: u64) {
    let mut group = c.benchmark_group(format!("e3_rq_mix/range_{key_range}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dist = KeyDist::uniform(key_range);
    prefill(map, key_range, 0.5, 42);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(map.name(), threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(
                            map,
                            threads,
                            OPS_PER_THREAD,
                            Mix::with_ranges(100),
                            &dist,
                            2042 + i,
                        );
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn e3(c: &mut Criterion) {
    for key_range in [1_000u64, 100_000] {
        let pnb = Pnb::new();
        bench_structure(c, &pnb, key_range);
        let rw = Rw::new();
        bench_structure(c, &rw, key_range);
        let mx = Mx::new();
        bench_structure(c, &mx, key_range);
    }
}

criterion_group!(benches, e3);
criterion_main!(benches);
