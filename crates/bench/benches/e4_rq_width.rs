//! E4 — range-query width sweep: cost of a single wait-free scan as the
//! requested range widens (10 → 10 000 keys over a 100k key space, half
//! full), with one updater thread churning concurrently.
//!
//! Expected shape: PNB-BST scan cost grows linearly in the number of
//! keys returned and is insensitive to the updater; the RwLock scan has
//! similar traversal cost but serializes with (and stalls) the updater.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pnbbst_bench::adapters::{Pnb, Rw};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use workload::{prefill, ConcurrentMap, KeyDist, MapSession};

const KEY_RANGE: u64 = 100_000;

fn bench_scans<M: ConcurrentMap>(c: &mut Criterion, map: &M) {
    let mut group = c.benchmark_group("e4_rq_width");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    prefill(map, KEY_RANGE, 0.5, 42);
    let _dist = KeyDist::uniform(KEY_RANGE);

    for width in [10u64, 100, 1_000, 10_000] {
        group.throughput(Throughput::Elements(width / 2)); // ~half density
        group.bench_with_input(BenchmarkId::new(map.name(), width), &width, |b, &width| {
            // One background updater churns for the whole measurement.
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let mut session = map.pin();
                    let mut x = 0x1234_5678u64;
                    let mut n = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEY_RANGE;
                        if x & 1 == 0 {
                            session.insert(k, k);
                        } else {
                            session.delete(&k);
                        }
                        n = n.wrapping_add(1);
                        if n.is_multiple_of(64) {
                            session.refresh();
                        }
                    }
                });
                let mut session = map.pin();
                let mut lo = 0u64;
                b.iter(|| {
                    lo = (lo + 7919) % (KEY_RANGE - width);
                    let hits = session.range_scan(&lo, &(lo + width - 1));
                    // Re-pin between scans so the churner's garbage can
                    // be reclaimed during the measurement.
                    session.refresh();
                    std::hint::black_box(hits)
                });
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
    group.finish();
}

fn e4(c: &mut Criterion) {
    let pnb = Pnb::new();
    bench_scans(c, &pnb);
    let rw = Rw::new();
    bench_scans(c, &rw);
}

criterion_group!(benches, e4);
criterion_main!(benches);
