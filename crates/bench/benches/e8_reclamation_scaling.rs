//! E8r — collector reclamation scaling (extension; not a paper
//! experiment). A retire-heavy update mix (50% insert / 50% delete)
//! over a deliberately tiny key range, so nearly every committed update
//! unlinks nodes and pushes garbage through the epoch collector: this
//! measures the *collector's* hot paths (pin, defer, seal, collect)
//! under contention, at 1/2/4/8/16 threads.
//!
//! Before the collector rewrite this curve measured two global mutexes
//! (participant registry + garbage queue); with the lock-free list +
//! Michael–Scott queue the collector scales with the tree (old-vs-new
//! numbers are documented in DESIGN.md §3.4). Both epoch-based trees
//! run, so a collector regression shows up twice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Nb, Pnb};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

/// Small enough that churn dominates and retirement is constant.
const KEY_RANGE: u64 = 1_024;
const OPS_PER_THREAD: u64 = 10_000;

fn bench_structure<M: ConcurrentMap>(c: &mut Criterion, map: &M) {
    let mut group = c.benchmark_group(format!("e8_reclamation/range_{KEY_RANGE}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dist = KeyDist::uniform(KEY_RANGE);
    prefill(map, KEY_RANGE, 0.5, 42);
    for threads in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new(map.name(), threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(
                            map,
                            threads,
                            OPS_PER_THREAD,
                            Mix::update_only(),
                            &dist,
                            42 + i,
                        );
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn e8_reclamation(c: &mut Criterion) {
    let pnb = Pnb::new();
    bench_structure(c, &pnb);
    let nb = Nb::new();
    bench_structure(c, &nb);
}

criterion_group!(benches, e8_reclamation);
criterion_main!(benches);
