//! E5 — the cost of persistence (table): single-threaded per-operation
//! latency of PNB-BST vs the non-persistent NB-BST it extends, vs the
//! unsynchronized sequential floor.
//!
//! What PNB-BST pays on top of NB-BST: a `prev` pointer and sequence
//! number per node, the `Counter` read + handshake per attempt, and a
//! node *copy* on every delete (NB-BST relinks the sibling instead).
//! The paper's design goal is that this is a modest constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Nb, Pnb};
use std::time::Duration;
use workload::ConcurrentMap;

const N: u64 = 10_000;

/// insert+delete round trip at stationary size.
fn bench_update_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_persistence_cost/insert_delete_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let structures: Vec<Box<dyn ConcurrentMap>> = vec![Box::new(Pnb::new()), Box::new(Nb::new())];
    for map in &structures {
        for k in 0..N {
            map.insert(k * 2, k); // even keys resident
        }
        let mut k = 1u64;
        group.bench_function(BenchmarkId::new(map.name(), "odd_key_churn"), |b| {
            b.iter(|| {
                k = (k + 2) % (2 * N);
                let kk = k | 1;
                std::hint::black_box(map.insert(kk, kk));
                std::hint::black_box(map.delete(&kk));
            })
        });
    }

    // Sequential floor.
    let mut seq = lock_bst::seq::SeqBst::<u64, u64>::new();
    for k in 0..N {
        seq.insert(k * 2, k);
    }
    let mut k = 1u64;
    group.bench_function(BenchmarkId::new("seq-bst", "odd_key_churn"), |b| {
        b.iter(|| {
            k = (k + 2) % (2 * N);
            let kk = k | 1;
            std::hint::black_box(seq.insert(kk, kk));
            std::hint::black_box(seq.delete(&kk));
        })
    });
    group.finish();
}

fn bench_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_persistence_cost/find");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let structures: Vec<Box<dyn ConcurrentMap>> = vec![Box::new(Pnb::new()), Box::new(Nb::new())];
    for map in &structures {
        for k in 0..N {
            map.insert(k, k);
        }
        let mut k = 0u64;
        group.bench_function(BenchmarkId::new(map.name(), "hit"), |b| {
            b.iter(|| {
                k = (k + 7919) % N;
                std::hint::black_box(map.get(&k))
            })
        });
        let mut k = 0u64;
        group.bench_function(BenchmarkId::new(map.name(), "miss"), |b| {
            b.iter(|| {
                k = (k + 7919) % N;
                std::hint::black_box(map.get(&(k + N)))
            })
        });
    }

    let mut seq = lock_bst::seq::SeqBst::<u64, u64>::new();
    for k in 0..N {
        seq.insert(k, k);
    }
    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("seq-bst", "hit"), |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            std::hint::black_box(seq.get(&k))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_pair, bench_find);
criterion_main!(benches);
