//! E5 — the cost of persistence (table): single-threaded per-operation
//! latency of PNB-BST vs the non-persistent NB-BST it extends, vs the
//! unsynchronized sequential floor.
//!
//! What PNB-BST pays on top of NB-BST: a `prev` pointer and sequence
//! number per node, the `Counter` read + handshake per attempt, and a
//! node *copy* on every delete (NB-BST relinks the sibling instead).
//! The paper's design goal is that this is a modest constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Nb, Pnb};
use std::time::Duration;
use workload::{ConcurrentMap, MapSession};

const N: u64 = 10_000;

/// insert+delete churn through a pinned session (the structures' hot
/// path: no per-op guard).
fn churn<M: ConcurrentMap>(group: &mut BenchmarkGroup<'_>, map: &M) {
    let mut session = map.pin();
    for k in 0..N {
        session.insert(k * 2, k); // even keys resident
    }
    let mut k = 1u64;
    let mut n = 0u32;
    group.bench_function(BenchmarkId::new(map.name(), "odd_key_churn"), |b| {
        b.iter(|| {
            k = (k + 2) % (2 * N);
            let kk = k | 1;
            std::hint::black_box(session.insert(kk, kk));
            std::hint::black_box(session.delete(&kk));
            n = n.wrapping_add(1);
            if n.is_multiple_of(64) {
                session.refresh();
            }
        })
    });
}

/// insert+delete round trip at stationary size.
fn bench_update_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_persistence_cost/insert_delete_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let pnb = Pnb::new();
    churn(&mut group, &pnb);
    let nb = Nb::new();
    churn(&mut group, &nb);

    // Sequential floor.
    let mut seq = lock_bst::seq::SeqBst::<u64, u64>::new();
    for k in 0..N {
        seq.insert(k * 2, k);
    }
    let mut k = 1u64;
    group.bench_function(BenchmarkId::new("seq-bst", "odd_key_churn"), |b| {
        b.iter(|| {
            k = (k + 2) % (2 * N);
            let kk = k | 1;
            std::hint::black_box(seq.insert(kk, kk));
            std::hint::black_box(seq.delete(&kk));
        })
    });
    group.finish();
}

fn finds<M: ConcurrentMap>(group: &mut BenchmarkGroup<'_>, map: &M) {
    let mut session = map.pin();
    for k in 0..N {
        session.insert(k, k);
    }
    let mut k = 0u64;
    group.bench_function(BenchmarkId::new(map.name(), "hit"), |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            std::hint::black_box(session.get(&k))
        })
    });
    let mut k = 0u64;
    group.bench_function(BenchmarkId::new(map.name(), "miss"), |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            std::hint::black_box(session.get(&(k + N)))
        })
    });
}

fn bench_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_persistence_cost/find");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let pnb = Pnb::new();
    finds(&mut group, &pnb);
    let nb = Nb::new();
    finds(&mut group, &nb);

    let mut seq = lock_bst::seq::SeqBst::<u64, u64>::new();
    for k in 0..N {
        seq.insert(k, k);
    }
    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("seq-bst", "hit"), |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            std::hint::black_box(seq.get(&k))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_pair, bench_find);
criterion_main!(benches);
