//! E10 — shard scaling (extension; not a paper experiment). Point-op
//! throughput of the sharded front-end (`pnb_shard::ShardedPnbBst`
//! through the `Sharded` adapter) as the shard count grows, against the
//! unsharded tree.
//!
//! Sharding divides everything that contends inside one PNB-BST — the
//! freeze/child CAS traffic, the helping collisions, the phase counter
//! that every scan bumps — by the shard count, and shrinks each tree's
//! depth by `log2(N)`. The update-only 50i/50d mix is where those
//! effects concentrate; the range mix rides along to price the
//! cross-shard merge (one phase close per participating shard).
//!
//! The `experiments e10` table covers the same axis through the timed
//! ops/sec lens and emits the JSON trajectory rows CI records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Pnb, Sharded};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

const KEY_RANGE: u64 = 100_000;
const OPS_PER_THREAD: u64 = 10_000;

fn bench_map<M: ConcurrentMap>(
    group: &mut criterion::BenchmarkGroup<'_>,
    map: &M,
    label: &str,
    mix: Mix,
) {
    let dist = KeyDist::uniform(KEY_RANGE);
    prefill(map, KEY_RANGE, 0.5, 42);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    total += run_fixed_ops(map, threads, OPS_PER_THREAD, mix, &dist, 4242 + i);
                }
                total
            })
        });
    }
}

fn e10_shard_scaling(c: &mut Criterion) {
    for (group_name, mix) in [
        ("e10_shard_scaling/update_50i50d", Mix::update_only()),
        (
            "e10_shard_scaling/ranges_25i25d40f10rq",
            Mix::with_ranges(100),
        ),
    ] {
        let mut group = c.benchmark_group(group_name);
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));

        let pnb = Pnb::new();
        bench_map(&mut group, &pnb, "pnb-bst", mix);
        drop(pnb);
        pnb_bst::collector_drain(64);
        pnb_bst::arena_trim();

        for shards in [1usize, 4, 16] {
            let map = Sharded::with_shards(shards);
            bench_map(&mut group, &map, &format!("pnb-sharded-x{shards}"), mix);
            drop(map);
            pnb_bst::collector_drain(64);
            pnb_bst::arena_trim(); // heap hygiene between shard counts
        }
        group.finish();
    }
}

criterion_group!(benches, e10_shard_scaling);
criterion_main!(benches);
