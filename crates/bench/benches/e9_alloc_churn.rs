//! E9 — allocator churn (extension; not a paper experiment). The
//! workloads where per-attempt `Node`/`Info` allocation dominates the
//! operation cost: a retire-heavy 50i/50d mix and an upsert-heavy mix
//! (25u/25d/50f — the `Replace` shape is one node in, one node out,
//! pure allocator traffic) over a tiny key range.
//!
//! This is the bench the per-thread arena pools (`pnb-bst`'s
//! epoch-integrated free lists; DESIGN.md §3.5) exist for: before them,
//! every update attempt paid `malloc` for each `Node`/`Info` and the
//! collector paid cross-thread `free` for each retirement. `nb-bst`
//! rides along as the non-pooled epoch baseline; the committed
//! `BENCH_baseline.json` holds the pre-arena pnb numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Nb, Pnb};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

/// Small enough that churn (not search depth) dominates.
const KEY_RANGE: u64 = 1_024;
const OPS_PER_THREAD: u64 = 10_000;

fn bench_mix<M: ConcurrentMap>(c: &mut Criterion, map: &M, group_name: &str, mix: Mix) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dist = KeyDist::uniform(KEY_RANGE);
    prefill(map, KEY_RANGE, 0.5, 42);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(map.name(), threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(map, threads, OPS_PER_THREAD, mix, &dist, 1042 + i);
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn e9_alloc_churn(c: &mut Criterion) {
    // 50i/50d: the E1 shape — three fresh nodes + an Info per insert,
    // a sibling copy + an Info per delete, everything retired soon after.
    let pnb = Pnb::new();
    bench_mix(c, &pnb, "e9_alloc_churn/update_50i50d", Mix::update_only());
    let nb = Nb::new();
    bench_mix(c, &nb, "e9_alloc_churn/update_50i50d", Mix::update_only());

    // Upsert-heavy (pnb-only capability): the one-leaf Replace shape —
    // the minimal allocate/retire cycle.
    let pnb2 = Pnb::new();
    bench_mix(c, &pnb2, "e9_alloc_churn/upsert_heavy", Mix::upsert_heavy());
}

criterion_group!(benches, e9_alloc_churn);
criterion_main!(benches);
