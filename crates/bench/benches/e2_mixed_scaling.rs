//! E2 — search-dominated scaling (10% insert / 10% delete / 80% find).
//!
//! The paper's claim under this mix: finds never interfere with one
//! another and help only updates at the leaf's neighbourhood, so the
//! lock-free trees scale with readers while the mutex serializes and the
//! RwLock pays writer exclusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::{Mx, Nb, Pnb, Rw};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, Mix};

const OPS_PER_THREAD: u64 = 10_000;

fn bench_structure<M: ConcurrentMap>(c: &mut Criterion, map: &M, key_range: u64) {
    let mut group = c.benchmark_group(format!("e2_read_mostly/range_{key_range}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dist = KeyDist::uniform(key_range);
    prefill(map, key_range, 0.5, 42);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(map.name(), threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(
                            map,
                            threads,
                            OPS_PER_THREAD,
                            Mix::read_mostly(),
                            &dist,
                            1042 + i,
                        );
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn e2(c: &mut Criterion) {
    for key_range in [1_000u64, 100_000] {
        let pnb = Pnb::new();
        bench_structure(c, &pnb, key_range);
        let nb = Nb::new();
        bench_structure(c, &nb, key_range);
        let rw = Rw::new();
        bench_structure(c, &rw, key_range);
        let mx = Mx::new();
        bench_structure(c, &mx, key_range);
    }
}

criterion_group!(benches, e2);
criterion_main!(benches);
