//! E6 — scan/update non-interference (paper §1: "RangeScans operating on
//! different parts of the tree do not interfere with one another", and
//! scans only help updates on the nodes they traverse).
//!
//! Measures the latency of one scan over (a) a narrow disjoint slice far
//! from the updaters' working set vs (b) the updaters' hot range vs (c)
//! the full key space, with updaters running throughout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::Pnb;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use workload::{prefill, ConcurrentMap, MapSession};

const KEY_RANGE: u64 = 100_000;
// Updaters churn only in [0, HOT); the cold slice [COLD_LO, COLD_HI] is
// never updated.
const HOT: u64 = 10_000;
const COLD_LO: u64 = 80_000;
const COLD_HI: u64 = 89_999;

fn e6(c: &mut Criterion) {
    let map = Pnb::new();
    prefill(&map, KEY_RANGE, 0.5, 42);

    let mut group = c.benchmark_group("e6_scan_interference");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let cases: [(&str, u64, u64); 3] = [
        ("cold_disjoint_slice", COLD_LO, COLD_HI),
        ("hot_contended_slice", 0, HOT - 1),
        ("full_key_space", 0, KEY_RANGE - 1),
    ];

    for (label, lo, hi) in cases {
        group.bench_function(BenchmarkId::new("pnb-bst", label), |b| {
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                // Two updaters hammer the hot range for the whole
                // measurement.
                for t in 0..2u64 {
                    let stop = &stop;
                    let map = &map;
                    s.spawn(move || {
                        let mut session = map.pin();
                        let mut x = 0xABCD_EF01u64 ^ t;
                        let mut n = 0u32;
                        while !stop.load(Ordering::Relaxed) {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = x % HOT;
                            if x & 1 == 0 {
                                session.insert(k, k);
                            } else {
                                session.delete(&k);
                            }
                            n = n.wrapping_add(1);
                            if n.is_multiple_of(64) {
                                session.refresh();
                            }
                        }
                    });
                }
                let mut session = map.pin();
                b.iter(|| {
                    let hits = session.range_scan(&lo, &hi);
                    session.refresh();
                    std::hint::black_box(hits)
                });
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, e6);
criterion_main!(benches);
