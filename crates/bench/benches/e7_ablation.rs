//! E7 — ablation of the scan/update coordination machinery: how does
//! update cost change as the scan rate (and therefore phase-counter
//! churn + handshake aborts + helping) increases?
//!
//! Each point measures a fixed batch of updates on 2 threads while a
//! scanner thread issues range queries at a controlled rate. Rising scan
//! rates advance the phase counter faster, which forces more handshake
//! aborts and retried attempts (the `stats` feature on the experiments
//! binary exposes the raw counters; here the effect shows up as batch
//! time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnbbst_bench::adapters::Pnb;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use workload::{prefill, run_fixed_ops, ConcurrentMap, KeyDist, MapSession, Mix};

const KEY_RANGE: u64 = 10_000;
const OPS_PER_THREAD: u64 = 5_000;

fn e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_handshake_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let dist = KeyDist::uniform(KEY_RANGE);

    // scan_pause_us == None: no scanner at all (baseline).
    let cases: [(&str, Option<u64>); 4] = [
        ("no_scans", None),
        ("scan_every_1ms", Some(1_000)),
        ("scan_every_100us", Some(100)),
        ("scan_continuous", Some(0)),
    ];

    for (label, pause) in cases {
        let map = Pnb::new();
        prefill(&map, KEY_RANGE, 0.5, 42);
        group.bench_function(BenchmarkId::new("updates_2thr", label), |b| {
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                if let Some(pause_us) = pause {
                    let stop = &stop;
                    let map = &map;
                    s.spawn(move || {
                        let mut session = map.pin();
                        let mut lo = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            lo = (lo + 997) % (KEY_RANGE - 128);
                            std::hint::black_box(session.range_scan(&lo, &(lo + 127)));
                            session.refresh();
                            if pause_us > 0 {
                                std::thread::sleep(Duration::from_micros(pause_us));
                            }
                        }
                    });
                }
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        total += run_fixed_ops(
                            &map,
                            2,
                            OPS_PER_THREAD,
                            Mix::update_only(),
                            &dist,
                            7042 + i,
                        );
                    }
                    total
                });
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, e7);
criterion_main!(benches);
