//! A *sequential* leaf-oriented BST with the same shape as NB-BST /
//! PNB-BST (full tree, `∞₁`/`∞₂` sentinels, elements only in leaves).
//!
//! Two jobs:
//!
//! 1. **Cost floor** for experiment E5: the concurrent trees pay CAS,
//!    helping and allocation overheads on top of exactly this structure,
//!    so `SeqBst` isolates the algorithmic baseline from the coordination
//!    cost.
//! 2. **Oracle** for property tests: same key placement rules as the
//!    concurrent trees, so structural comparisons are meaningful.

/// Sentinel-extended key (`Fin < Inf1 < Inf2`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum SKey<K> {
    Fin(K),
    Inf1,
    Inf2,
}

impl<K: Ord> SKey<K> {
    fn fin_lt(&self, k: &K) -> bool {
        match self {
            SKey::Fin(me) => k < me,
            _ => true,
        }
    }
    fn fin_eq(&self, k: &K) -> bool {
        matches!(self, SKey::Fin(me) if me == k)
    }
}

struct Node<K, V> {
    key: SKey<K>,
    value: Option<V>,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
}

impl<K, V> Node<K, V> {
    fn leaf(key: SKey<K>, value: Option<V>) -> Box<Self> {
        Box::new(Node {
            key,
            value,
            left: None,
            right: None,
        })
    }
    fn is_leaf(&self) -> bool {
        self.left.is_none()
    }
}

/// Sequential leaf-oriented full BST (set-semantics insert).
pub struct SeqBst<K, V> {
    root: Box<Node<K, V>>,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for SeqBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> SeqBst<K, V> {
    /// Empty tree (root `∞₂` over sentinel leaves `∞₁`, `∞₂`).
    pub fn new() -> Self {
        let root = Box::new(Node {
            key: SKey::Inf2,
            value: None,
            left: Some(Node::leaf(SKey::Inf1, None)),
            right: Some(Node::leaf(SKey::Inf2, None)),
        });
        SeqBst { root, len: 0 }
    }

    /// Descend to the leaf covering `k`, returning a mutable reference to
    /// the `Box` holding it (its parent link), plus the parent pointer
    /// chain needed by delete.
    fn leaf_slot(&mut self, k: &K) -> &mut Box<Node<K, V>> {
        let mut cur: &mut Box<Node<K, V>> = &mut self.root;
        loop {
            if cur.is_leaf() {
                // Can't return `cur` directly inside the loop due to NLL
                // limitations; restructure via raw break.
                break;
            }
            let go_left = cur.key.fin_lt(k);
            cur = if go_left {
                cur.left.as_mut().unwrap()
            } else {
                cur.right.as_mut().unwrap()
            };
        }
        cur
    }

    /// Insert without replace; `true` iff `k` was absent.
    pub fn insert(&mut self, k: K, v: V) -> bool {
        let slot = self.leaf_slot(&k);
        if slot.key.fin_eq(&k) {
            return false;
        }
        // Replace the leaf with an internal node over {new leaf, old leaf}.
        let old_leaf = std::mem::replace(slot, Node::leaf(SKey::Inf2, None));
        let new_leaf = Node::leaf(SKey::Fin(k.clone()), Some(v));
        let k_lt_old = old_leaf.key.fin_lt(&k);
        let internal_key = std::cmp::max(SKey::Fin(k), old_leaf.key.clone());
        let (l, r) = if k_lt_old {
            (new_leaf, old_leaf)
        } else {
            (old_leaf, new_leaf)
        };
        **slot = Node {
            key: internal_key,
            value: None,
            left: Some(l),
            right: Some(r),
        };
        self.len += 1;
        true
    }

    /// Remove `k`, returning its value.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        // Descend tracking the parent-of-leaf slot so we can splice.
        if self.root.is_leaf() {
            return None; // unreachable by construction (root is internal)
        }
        // The node to splice is the *parent* of the leaf; we need the
        // grandparent's link to it.
        let mut cur: *mut Box<Node<K, V>> = &mut self.root;
        loop {
            // SAFETY: raw pointer dance to emulate parent-pointer descent
            // under the borrow checker; all pointers are into `self` and
            // used exclusively.
            let cur_ref = unsafe { &mut *cur };
            let go_left = cur_ref.key.fin_lt(k);
            let child = if go_left {
                cur_ref.left.as_mut().unwrap()
            } else {
                cur_ref.right.as_mut().unwrap()
            };
            if child.is_leaf() {
                if !child.key.fin_eq(k) {
                    return None;
                }
                // Splice: replace `cur`'s slot content with the sibling.
                let cur_owned = unsafe { &mut *cur };
                let (mut leaf, sibling) = if go_left {
                    (
                        cur_owned.left.take().unwrap(),
                        cur_owned.right.take().unwrap(),
                    )
                } else {
                    (
                        cur_owned.right.take().unwrap(),
                        cur_owned.left.take().unwrap(),
                    )
                };
                let value = leaf.value.take();
                **cur_owned = *sibling;
                self.len -= 1;
                return value;
            }
            let grand = if child.key.fin_lt(k) {
                child.left.as_mut().unwrap()
            } else {
                child.right.as_mut().unwrap()
            };
            if grand.is_leaf() {
                // `child` is the parent of the target leaf: splice below.
                if !grand.key.fin_eq(k) {
                    return None;
                }
                let go_left_child = child.key.fin_lt(k);
                let (mut leaf, sibling) = if go_left_child {
                    (child.left.take().unwrap(), child.right.take().unwrap())
                } else {
                    (child.right.take().unwrap(), child.left.take().unwrap())
                };
                let value = leaf.value.take();
                **child = *sibling;
                self.len -= 1;
                return value;
            }
            cur = if go_left {
                cur_ref.left.as_mut().unwrap()
            } else {
                cur_ref.right.as_mut().unwrap()
            };
        }
    }

    /// Remove; `true` iff present.
    pub fn delete(&mut self, k: &K) -> bool {
        self.remove(k).is_some()
    }

    /// Lookup.
    pub fn get(&self, k: &K) -> Option<V> {
        let mut cur = &self.root;
        while !cur.is_leaf() {
            cur = if cur.key.fin_lt(k) {
                cur.left.as_ref().unwrap()
            } else {
                cur.right.as_ref().unwrap()
            };
        }
        if cur.key.fin_eq(k) {
            cur.value.clone()
        } else {
            None
        }
    }

    /// Membership.
    pub fn contains(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Inclusive range scan, ascending.
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            if n.is_leaf() {
                if let SKey::Fin(k) = &n.key {
                    if k >= lo && k <= hi {
                        out.push((k.clone(), n.value.clone().unwrap()));
                    }
                }
                continue;
            }
            // Prune exactly like the concurrent scans.
            let skip_left = !n.key.fin_lt(lo);
            let skip_right = n.key.fin_lt(hi);
            if !skip_right {
                stack.push(n.right.as_ref().unwrap());
            }
            if !skip_left {
                stack.push(n.left.as_ref().unwrap());
            }
        }
        out
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Emptiness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Full dump, ascending.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            if n.is_leaf() {
                if let SKey::Fin(k) = &n.key {
                    out.push((k.clone(), n.value.clone().unwrap()));
                }
                continue;
            }
            stack.push(n.right.as_ref().unwrap());
            stack.push(n.left.as_ref().unwrap());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basics() {
        let mut t: SeqBst<i32, i32> = SeqBst::new();
        assert!(t.is_empty());
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.get(&5), Some(50));
        assert!(t.insert(2, 20));
        assert!(t.insert(8, 80));
        assert_eq!(t.len(), 3);
        assert_eq!(t.to_vec(), vec![(2, 20), (5, 50), (8, 80)]);
        assert_eq!(t.range_scan(&3, &8), vec![(5, 50), (8, 80)]);
        assert_eq!(t.remove(&5), Some(50));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.to_vec(), vec![(2, 20), (8, 80)]);
    }

    #[test]
    fn delete_all_orders() {
        // Delete in insertion order, reverse order, and middle-out.
        for order in 0..3 {
            let mut t: SeqBst<u32, u32> = SeqBst::new();
            let keys: Vec<u32> = (0..64).collect();
            for &k in &keys {
                assert!(t.insert(k, k));
            }
            let del: Vec<u32> = match order {
                0 => keys.clone(),
                1 => keys.iter().rev().copied().collect(),
                _ => {
                    let mut v = Vec::new();
                    let (mut a, mut b) = (0i64, 63i64);
                    while a <= b {
                        v.push(a as u32);
                        if a != b {
                            v.push(b as u32);
                        }
                        a += 1;
                        b -= 1;
                    }
                    v
                }
            };
            for &k in &del {
                assert_eq!(t.remove(&k), Some(k), "order {order} key {k}");
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn matches_btreemap() {
        let mut t: SeqBst<i32, usize> = SeqBst::new();
        let mut m: BTreeMap<i32, usize> = BTreeMap::new();
        let mut x: u64 = 42;
        for step in 0..6000usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 80) as i32;
            match step % 4 {
                0 | 3 => {
                    assert_eq!(t.insert(k, step), !m.contains_key(&k));
                    m.entry(k).or_insert(step);
                }
                1 => assert_eq!(t.remove(&k), m.remove(&k)),
                _ => assert_eq!(t.get(&k), m.get(&k).copied()),
            }
            if step % 500 == 0 {
                let lo = ((x >> 20) % 80) as i32;
                let hi = lo + 20;
                let expect: Vec<_> = m.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(t.range_scan(&lo, &hi), expect);
            }
        }
        assert_eq!(t.len(), m.len());
        let expect: Vec<_> = m.into_iter().collect();
        assert_eq!(t.to_vec(), expect);
    }
}
