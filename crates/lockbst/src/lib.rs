//! # lock-bst — lock-based baselines and a sequential reference model
//!
//! Comparators for the PNB-BST evaluation (experiments E1–E5):
//!
//! * [`RwLockTree`] — a `parking_lot::RwLock<BTreeMap>`: the idiomatic
//!   "just take a reader-writer lock" solution. Reads and range scans
//!   share the lock; every update excludes everything. Range scans are
//!   trivially linearizable but serialize against all writers.
//! * [`MutexTree`] — a single `parking_lot::Mutex<BTreeMap>`: the
//!   pessimistic floor every concurrent structure must beat.
//! * [`seq::SeqBst`] — a *sequential* leaf-oriented BST with the same
//!   shape (sentinels, full tree, leaf-oriented) as NB-BST/PNB-BST but no
//!   synchronization at all: the single-threaded cost floor (E5) and the
//!   oracle used by property tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod seq;

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Coarse reader-writer-locked ordered map (set semantics on insert, to
/// match the trees under test).
#[derive(Default)]
pub struct RwLockTree<K, V> {
    inner: RwLock<BTreeMap<K, V>>,
}

impl<K: Ord + Clone, V: Clone> RwLockTree<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        RwLockTree {
            inner: RwLock::new(BTreeMap::new()),
        }
    }

    /// Insert without replace; `true` iff the key was absent.
    pub fn insert(&self, k: K, v: V) -> bool {
        let mut m = self.inner.write();
        if let std::collections::btree_map::Entry::Vacant(e) = m.entry(k) {
            e.insert(v);
            true
        } else {
            false
        }
    }

    /// Insert or replace, returning the displaced value (atomic under
    /// the write lock).
    pub fn upsert(&self, k: K, v: V) -> Option<V> {
        self.inner.write().insert(k, v)
    }

    /// Remove; `true` iff the key was present.
    pub fn delete(&self, k: &K) -> bool {
        self.inner.write().remove(k).is_some()
    }

    /// Remove returning the value.
    pub fn remove(&self, k: &K) -> Option<V> {
        self.inner.write().remove(k)
    }

    /// Lookup.
    pub fn get(&self, k: &K) -> Option<V> {
        self.inner.read().get(k).cloned()
    }

    /// Membership.
    pub fn contains(&self, k: &K) -> bool {
        self.inner.read().contains_key(k)
    }

    /// Inclusive range scan under the read lock.
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.inner
            .read()
            .range((Bound::Included(lo), Bound::Included(hi)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Count keys in `[lo, hi]` under the read lock.
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        self.inner
            .read()
            .range((Bound::Included(lo), Bound::Included(hi)))
            .count()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Full dump, ascending.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Coarse mutex-locked ordered map (set semantics on insert).
#[derive(Default)]
pub struct MutexTree<K, V> {
    inner: Mutex<BTreeMap<K, V>>,
}

impl<K: Ord + Clone, V: Clone> MutexTree<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        MutexTree {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Insert without replace; `true` iff the key was absent.
    pub fn insert(&self, k: K, v: V) -> bool {
        let mut m = self.inner.lock();
        if let std::collections::btree_map::Entry::Vacant(e) = m.entry(k) {
            e.insert(v);
            true
        } else {
            false
        }
    }

    /// Insert or replace, returning the displaced value (atomic under
    /// the lock).
    pub fn upsert(&self, k: K, v: V) -> Option<V> {
        self.inner.lock().insert(k, v)
    }

    /// Remove; `true` iff the key was present.
    pub fn delete(&self, k: &K) -> bool {
        self.inner.lock().remove(k).is_some()
    }

    /// Remove returning the value.
    pub fn remove(&self, k: &K) -> Option<V> {
        self.inner.lock().remove(k)
    }

    /// Lookup.
    pub fn get(&self, k: &K) -> Option<V> {
        self.inner.lock().get(k).cloned()
    }

    /// Membership.
    pub fn contains(&self, k: &K) -> bool {
        self.inner.lock().contains_key(k)
    }

    /// Inclusive range scan under the lock.
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.inner
            .lock()
            .range((Bound::Included(lo), Bound::Included(hi)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Count keys in `[lo, hi]` under the lock.
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        self.inner
            .lock()
            .range((Bound::Included(lo), Bound::Included(hi)))
            .count()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Full dump, ascending.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_tree_semantics() {
        let t: RwLockTree<i32, i32> = RwLockTree::new();
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 20));
        assert_eq!(t.get(&1), Some(10));
        assert!(t.contains(&1));
        assert_eq!(t.range_scan(&0, &5), vec![(1, 10)]);
        assert_eq!(t.scan_count(&0, &5), 1);
        assert_eq!(t.remove(&1), Some(10));
        assert!(t.is_empty());
    }

    #[test]
    fn mutex_tree_semantics() {
        let t: MutexTree<i32, i32> = MutexTree::new();
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 20));
        assert_eq!(t.get(&1), Some(10));
        assert!(t.delete(&1));
        assert!(!t.delete(&1));
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_vec(), vec![]);
        assert!(t.range_scan(&0, &100).is_empty());
        assert_eq!(t.scan_count(&0, &100), 0);
    }

    #[test]
    fn concurrent_smoke() {
        use std::sync::Arc;
        let t = Arc::new(RwLockTree::<u64, u64>::new());
        let hs: Vec<_> = (0..4u64)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        t.insert(w * 1000 + i, i);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 2000);
    }
}
