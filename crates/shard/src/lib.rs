//! # pnb-shard — a sharded front-end over `pnb-bst`
//!
//! [`ShardedPnbBst`] partitions the key space over `N` independent
//! [`pnb_bst::PnbBst`] instances. Point operations route to exactly one
//! shard through a pluggable [`Partitioner`] and inherit that shard's
//! lock-freedom and linearizability unchanged; cross-shard range
//! queries and snapshots exploit the one thing the paper's structure is
//! uniquely good at — *every shard can produce a linearizable snapshot
//! in wait-free time* — to stitch per-shard views into one consistent
//! cut.
//!
//! Why shard at all: each `PnbBst` has one phase counter and one epoch
//! of CAS/helping traffic. Sharding divides the key space, the counter
//! traffic, the helping collisions, and the tree depth by `N`, so
//! point-op throughput scales with the shard count (experiment E10 in
//! the repository measures exactly this). The price is paid on
//! cross-shard reads, and this crate's job is to keep that price to
//! "one phase close per shard" while documenting precisely what the
//! combined read means.
//!
//! ## Quick start
//!
//! ```
//! use pnb_shard::ShardedPnbBst;
//!
//! let map: ShardedPnbBst<u64, String> = ShardedPnbBst::new(8);
//! let s = map.pin();                       // one session, all shards
//! s.insert(17, "seventeen".into());
//! s.upsert(40_000, "far away".into());     // a different shard
//! assert_eq!(s.get(&17).as_deref(), Some("seventeen"));
//! // Cross-shard lazy range, merged ascending:
//! let keys: Vec<u64> = s.range(..).map(|(k, _)| k).collect();
//! assert_eq!(keys, vec![17, 40_000]);
//! // Cross-shard snapshot, frozen while the map moves on:
//! let snap = s.snapshot();
//! s.delete(&17);
//! assert_eq!(snap.len(), 2);
//! ```
//!
//! ## Consistency model
//!
//! * **Per shard: linearizable.** A shard is a plain `PnbBst`; every
//!   operation on it keeps the paper's guarantees (lock-free updates,
//!   wait-free linearizable scans).
//! * **Across shards: serializable at snapshot boundaries, with a
//!   prefix-consistency guarantee.** A cross-shard read
//!   ([`ShardedSession::range`], [`ShardedPnbBst::snapshot`]) captures
//!   per-shard versions in **descending shard order** — shard `N-1`
//!   first, shard `0` last. Each capture is a per-shard linearization
//!   point `t_i`, and the capture order makes them monotone:
//!   `t_{N-1} < … < t_1 < t_0`. The combined view is the database-style
//!   *serializable snapshot*: it equals the state produced by executing
//!   every operation that linearized before its shard's `t_i`, and no
//!   transaction-level interleaving can fake it after the fact.
//!
//!   The guarantee that makes multi-shard updates usable: a writer that
//!   updates shards in **ascending** order is observed *prefix-closed*.
//!   If the view contains the writer's update `u_i` to shard `i`, then
//!   for every `j < i`: `u_j` linearized before `u_i` (program order),
//!   `u_i` before `t_i` (it is visible), and `t_i < t_j` (capture
//!   order) — so `u_j` linearized before `t_j` and is visible too. A
//!   reader can see a multi-shard update half-done, but only ever as a
//!   *prefix* in shard order, never with holes; "write the commit
//!   record last (highest shard), then its presence implies every
//!   earlier piece" is the idiom this enables. The repository's
//!   `tests/sharded.rs` hammers this property concurrently.
//!
//! * **What it is not:** there is no cross-shard linearizability — two
//!   concurrent cross-shard reads may disagree on the relative order of
//!   concurrent single-shard writes to *different* shards, exactly as
//!   two database snapshots taken at different times may. Writers that
//!   need atomic multi-key visibility across shards must either keep
//!   those keys in one shard (choose the partitioner accordingly) or
//!   use the prefix idiom above.
//!
//! ## Choosing a partitioner
//!
//! [`RangePrefixPartitioner`] (the `u64` default) hashes the key's
//! aligned block index, so narrow range queries resolve to one or two
//! shards ([`Partitioner::shards_for_range`]) and the rest are skipped
//! outright. [`HashPartitioner`] spreads single keys best but forces
//! every range query to visit every shard. Both are pure functions —
//! see [`Partitioner`] for the contract a custom policy must meet.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod map;
mod merge;
mod partition;
mod persist;
mod session;
mod snapshot;
mod stats;

pub use map::ShardedPnbBst;
pub use merge::MergeRange;
pub use partition::{HashPartitioner, Partitioner, RangePrefixPartitioner};
pub use persist::PersistentPartitioner;
pub use pnb_bst::persist::{CheckpointError, CheckpointReport};
pub use pnb_bst::{BatchOp, BatchOutcome, BatchReport};
pub use session::ShardedSession;
pub use snapshot::ShardedSnapshot;
pub use stats::{load_imbalance, ShardOpStats};
