//! The sharded map itself: construction, routing, and the per-call
//! compat surface.

use pnb_bst::PnbBst;

use crate::partition::{Partitioner, RangePrefixPartitioner};
use crate::session::ShardedSession;
use crate::snapshot::ShardedSnapshot;
use crate::stats::{ShardCounters, ShardOpStats};

/// A sharded front-end over `N` independent [`PnbBst`] instances.
///
/// The key space is partitioned by a pluggable [`Partitioner`] (default:
/// [`RangePrefixPartitioner`], which keeps narrow range queries
/// shard-local); every point operation routes to exactly one shard, so
/// point-op throughput scales with the shard count (each shard has its
/// own phase counter, its own CAS traffic, its own helping traffic).
/// Cross-shard [`range`](ShardedSession::range) and
/// [`snapshot`](ShardedPnbBst::snapshot) stitch per-shard linearizable
/// views into one ascending, *prefix-consistent* view — see the crate
/// docs for the exact consistency model and its proof sketch.
///
/// # Example
///
/// ```
/// use pnb_shard::ShardedPnbBst;
///
/// let map: ShardedPnbBst<u64, &str> = ShardedPnbBst::new(8);
/// let s = map.pin(); // one session, all shards
/// s.insert(1, "one");
/// s.insert(60_000, "far away");          // routed to another shard
/// assert_eq!(s.get(&1), Some("one"));
/// let all: Vec<u64> = s.range(..).map(|(k, _)| k).collect();
/// assert_eq!(all, vec![1, 60_000]);      // merged, ascending
/// ```
pub struct ShardedPnbBst<K, V, P = RangePrefixPartitioner> {
    pub(crate) shards: Box<[PnbBst<K, V>]>,
    pub(crate) partitioner: P,
    /// Index-aligned with `shards`; zero-sized without the `stats`
    /// feature (see [`crate::stats`]).
    pub(crate) counters: Box<[ShardCounters]>,
}

impl<V> ShardedPnbBst<u64, V>
where
    V: Clone + 'static,
{
    /// A sharded map over `u64` keys with `shards` shards and the
    /// default [`RangePrefixPartitioner`]. Other key types pick their
    /// routing policy explicitly via
    /// [`with_partitioner`](Self::with_partitioner).
    ///
    /// # Panics
    ///
    /// If `shards == 0`.
    pub fn new(shards: usize) -> Self {
        Self::with_partitioner(shards, RangePrefixPartitioner::default())
    }
}

impl<K, V, P> ShardedPnbBst<K, V, P>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
    P: Partitioner<K>,
{
    /// A sharded map with `shards` shards routed by `partitioner`.
    ///
    /// # Panics
    ///
    /// If `shards == 0`.
    pub fn with_partitioner(shards: usize, partitioner: P) -> Self {
        assert!(shards > 0, "a sharded map needs at least one shard");
        ShardedPnbBst {
            shards: (0..shards).map(|_| PnbBst::new()).collect(),
            partitioner,
            counters: (0..shards).map(|_| ShardCounters::default()).collect(),
        }
    }

    /// The number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// The shard index `key` routes to (diagnostics and tests; normal
    /// operations route internally).
    pub fn shard_of(&self, key: &K) -> usize {
        let s = self.partitioner.shard_of(key, self.shards.len());
        debug_assert!(s < self.shards.len(), "partitioner routed out of range");
        s
    }

    /// Direct access to one shard's tree (diagnostics and tests).
    pub fn shard(&self, index: usize) -> &PnbBst<K, V> {
        &self.shards[index]
    }

    /// Open a pinned session over every shard: the hot-path API. See
    /// [`ShardedSession`].
    pub fn pin(&self) -> ShardedSession<'_, K, V, P> {
        ShardedSession::new(self)
    }

    /// Per-shard operation totals as counted at the routing layer, one
    /// entry per shard in index order. All zeros unless built with the
    /// `stats` feature (the counters are compiled out of measurement
    /// builds so they cannot perturb E1–E6). Feed the result to
    /// [`crate::load_imbalance`] for the max/mean balance ratio.
    pub fn shard_stats(&self) -> Vec<ShardOpStats> {
        self.counters.iter().map(ShardCounters::snapshot).collect()
    }

    /// Take a cross-shard snapshot: per-shard [`pnb_bst::Snapshot`]s
    /// captured in **descending shard order**, which is what makes the
    /// combined view prefix-consistent for writers that update shards
    /// in ascending order (crate docs, "Consistency model").
    pub fn snapshot(&self) -> ShardedSnapshot<'_, K, V, P> {
        ShardedSnapshot::new(self)
    }

    // --- per-call compat surface (each call opens a session) ---------

    /// Look up `key` (pins per call; loops should use [`pin`](Self::pin)).
    pub fn get(&self, key: &K) -> Option<V> {
        self.pin().get(key)
    }

    /// Whether `key` is present (pins per call).
    pub fn contains(&self, key: &K) -> bool {
        self.pin().contains(key)
    }

    /// Insert without replacement — set semantics (pins per call).
    pub fn insert(&self, key: K, value: V) -> bool {
        self.pin().insert(key, value)
    }

    /// Atomically insert or replace, returning the displaced value
    /// (pins per call).
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        self.pin().upsert(key, value)
    }

    /// Remove `key`; `true` iff it was present (pins per call).
    pub fn delete(&self, key: &K) -> bool {
        self.pin().delete(key)
    }

    /// Remove `key`, returning its value (pins per call).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.pin().remove(key)
    }

    /// Closed-interval range query returning a `Vec` (pins per call).
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.pin().range(lo.clone()..=hi.clone()).collect()
    }

    /// Linearizable-per-shard cardinality: one wait-free scan per
    /// shard, summed (pins per call).
    pub fn len(&self) -> usize {
        self.pin().len()
    }

    /// Whether the map holds no keys (pins per call).
    pub fn is_empty(&self) -> bool {
        self.pin().is_empty()
    }

    /// Run every shard's structural validation; returns the total key
    /// count. Quiescent use only (see [`PnbBst::check_invariants`]).
    pub fn check_invariants(&self) -> usize {
        self.shards.iter().map(|t| t.check_invariants()).sum()
    }
}

impl<K, V, P> std::fmt::Debug for ShardedPnbBst<K, V, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPnbBst")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_call_compat_surface() {
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
        assert_eq!(m.shard_count(), 4);
        assert!(m.is_empty());
        assert!(m.insert(7, 70));
        assert!(!m.insert(7, 71)); // set semantics
        assert_eq!(m.upsert(7, 77), Some(70));
        assert_eq!(m.upsert(9, 90), None);
        assert!(m.contains(&7));
        assert_eq!(m.get(&9), Some(90));
        assert_eq!(m.len(), 2);
        assert_eq!(m.range_scan(&0, &100), vec![(7, 77), (9, 90)]);
        assert_eq!(m.remove(&7), Some(77));
        assert!(!m.delete(&7));
        assert_eq!(m.check_invariants(), 1);
    }

    #[test]
    fn keys_actually_spread_over_shards() {
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(8);
        let s = m.pin();
        // Spread keys block-by-block so the prefix partitioner sees
        // many distinct blocks.
        for k in (0..(64u64 << 12)).step_by(1 << 12) {
            s.insert(k, k);
        }
        drop(s);
        let populated = (0..8).filter(|&i| !m.shard(i).is_empty()).count();
        assert!(populated >= 4, "only {populated}/8 shards used");
        let total: usize = (0..8).map(|i| m.shard(i).check_invariants()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn shard_stats_shape_matches_shard_count() {
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
        let s = m.pin();
        assert!(s.insert(1, 1));
        assert_eq!(s.get(&1), Some(1));
        assert_eq!(s.range_scan(&0, &10), vec![(1, 1)]);
        drop(s);
        let st = m.shard_stats();
        assert_eq!(st.len(), 4);
        let total: u64 = st.iter().map(crate::ShardOpStats::total).sum();
        #[cfg(feature = "stats")]
        {
            // 1 insert + 1 get + one scan participation per shard the
            // partitioner visited (at least one).
            assert!(total >= 3, "expected counted ops, got {st:?}");
            assert!((1.0..=4.0).contains(&crate::load_imbalance(&st)));
        }
        #[cfg(not(feature = "stats"))]
        assert_eq!(total, 0, "counters must compile out without `stats`");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(0);
    }

    #[test]
    fn routing_agrees_with_the_partitioner() {
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(5);
        let s = m.pin();
        for k in (0..200_000u64).step_by(4_096) {
            s.insert(k, k);
        }
        drop(s);
        for k in (0..200_000u64).step_by(4_096) {
            let shard = m.shard_of(&k);
            assert_eq!(m.shard(shard).get(&k), Some(k));
            for other in (0..5).filter(|&i| i != shard) {
                assert_eq!(m.shard(other).get(&k), None);
            }
        }
    }
}
