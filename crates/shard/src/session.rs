//! Pinned sessions over every shard — the sharded hot-path API.

use std::ops::RangeBounds;

use pnb_bst::{BatchOp, BatchOutcome, BatchReport, Handle, Range};

use crate::map::ShardedPnbBst;
use crate::merge::MergeRange;
use crate::partition::Partitioner;
use crate::snapshot::ShardedSnapshot;

/// A pinned session over a [`ShardedPnbBst`]: one [`Handle`] per shard,
/// opened once and amortized over any number of operations.
///
/// Point operations route to exactly one shard's handle. Cross-shard
/// [`range`](Self::range) closes one phase per participating shard (in
/// descending shard order — the creation discipline behind the
/// prefix-consistency guarantee, see the crate docs) and merges the
/// per-shard lazy iterators by ascending key.
///
/// Like [`Handle`], a session is not `Send`: open one per thread.
///
/// # Reclamation
///
/// The epoch pin is per-thread and *nested*: while a session holds `N`
/// shard handles, the thread's pin count is `N`, and
/// [`Handle::refresh`]'s `Guard::repin` would be a no-op. The session's
/// own [`refresh`](Self::refresh) therefore drops **all** of its
/// handles (pin count reaches zero) before re-pinning, which is what
/// actually lets the collector advance past garbage retired since the
/// pin. Call it between batches in long-lived loops, exactly as you
/// would with a single-tree handle.
pub struct ShardedSession<'t, K, V, P = crate::RangePrefixPartitioner> {
    map: &'t ShardedPnbBst<K, V, P>,
    /// One handle per shard, index-aligned with `map.shards`. Only ever
    /// empty transiently inside `refresh`.
    handles: Vec<Handle<'t, K, V>>,
}

impl<'t, K, V, P> ShardedSession<'t, K, V, P>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
    P: Partitioner<K>,
{
    pub(crate) fn new(map: &'t ShardedPnbBst<K, V, P>) -> Self {
        ShardedSession {
            map,
            handles: map.shards.iter().map(|t| t.pin()).collect(),
        }
    }

    /// The underlying sharded map.
    pub fn map(&self) -> &'t ShardedPnbBst<K, V, P> {
        self.map
    }

    /// The key's shard index, with the per-shard counter bumped by the
    /// caller-named class (compiled out without the `stats` feature).
    #[inline]
    fn route(&self, key: &K) -> usize {
        let i = self.map.shard_of(key);
        debug_assert!(i < self.handles.len());
        i
    }

    /// Look up `key` in its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        let i = self.route(key);
        self.map.counters[i].gets();
        self.handles[i].get(key)
    }

    /// Whether `key` is present in its shard.
    pub fn contains(&self, key: &K) -> bool {
        let i = self.route(key);
        self.map.counters[i].gets();
        self.handles[i].contains(key)
    }

    /// Insert without replacement (set semantics); `true` iff `key` was
    /// absent.
    pub fn insert(&self, key: K, value: V) -> bool {
        let i = self.route(&key);
        self.map.counters[i].inserts();
        self.handles[i].insert(key, value)
    }

    /// Atomically insert or replace, returning the displaced value.
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        let i = self.route(&key);
        self.map.counters[i].upserts();
        self.handles[i].upsert(key, value)
    }

    /// Remove `key`; `true` iff it was present.
    pub fn delete(&self, key: &K) -> bool {
        let i = self.route(key);
        self.map.counters[i].deletes();
        self.handles[i].delete(key)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let i = self.route(key);
        self.map.counters[i].deletes();
        self.handles[i].remove(key)
    }

    /// Batched lookup across shards: one `Option<V>` per key, in
    /// submission order.
    ///
    /// Keys are bucketed per shard by the partitioner and each bucket
    /// runs as one [`Handle::multi_get`] (key-sorted, shared descent
    /// prefix, one amortized epoch pin per shard). Each lookup still
    /// linearizes individually.
    pub fn multi_get(&self, keys: &[K]) -> Vec<Option<V>> {
        self.multi_get_reported(keys).0
    }

    /// [`multi_get`](Self::multi_get) plus descent-sharing telemetry
    /// merged across the participating shards.
    pub fn multi_get_reported(&self, keys: &[K]) -> (Vec<Option<V>>, BatchReport) {
        let shards = self.handles.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (oi, k) in keys.iter().enumerate() {
            buckets[self.map.shard_of(k)].push(oi);
        }
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        let mut report = BatchReport::default();
        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let sub: Vec<K> = bucket.iter().map(|&oi| keys[oi].clone()).collect();
            for _ in bucket {
                self.map.counters[i].gets();
            }
            let (vals, r) = self.handles[i].multi_get_reported(&sub);
            report.merge(r);
            for (&oi, v) in bucket.iter().zip(vals) {
                out[oi] = v;
            }
        }
        (out, report)
    }

    /// Apply a mixed batch across shards, returning one
    /// [`BatchOutcome`] per operation in submission order.
    ///
    /// Operations bucket per shard (stable, so duplicates of one key
    /// keep batch order) and each bucket runs as one
    /// [`Handle::apply_batch`]. Buckets execute in **ascending** shard
    /// order — the writer-side convention that, combined with
    /// snapshots/scans closing phases in *descending* shard order,
    /// yields prefix-consistent cross-shard cuts (crate docs): an
    /// observer that misses this batch's sub-batch on shard `i` cannot
    /// have seen its sub-batch on any `j > i`. A batch is a sequence of
    /// individually-linearizable operations, not an atomic transaction.
    pub fn apply_batch(&self, ops: &[BatchOp<K, V>]) -> Vec<BatchOutcome<V>> {
        self.apply_batch_reported(ops).0
    }

    /// [`apply_batch`](Self::apply_batch) plus descent-sharing
    /// telemetry merged across the participating shards.
    pub fn apply_batch_reported(
        &self,
        ops: &[BatchOp<K, V>],
    ) -> (Vec<BatchOutcome<V>>, BatchReport) {
        let shards = self.handles.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (oi, op) in ops.iter().enumerate() {
            buckets[self.map.shard_of(op.key())].push(oi);
        }
        let mut out: Vec<Option<BatchOutcome<V>>> = vec![None; ops.len()];
        let mut report = BatchReport::default();
        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let sub: Vec<BatchOp<K, V>> = bucket.iter().map(|&oi| ops[oi].clone()).collect();
            for op in &sub {
                match op {
                    BatchOp::Get(_) => self.map.counters[i].gets(),
                    BatchOp::Insert(..) => self.map.counters[i].inserts(),
                    BatchOp::Upsert(..) => self.map.counters[i].upserts(),
                    BatchOp::Delete(_) => self.map.counters[i].deletes(),
                }
            }
            let (res, r) = self.handles[i].apply_batch_reported(&sub);
            report.merge(r);
            for (&oi, o) in bucket.iter().zip(res) {
                out[oi] = Some(o);
            }
        }
        (
            out.into_iter()
                .map(|o| o.expect("every op was bucketed exactly once"))
                .collect(),
            report,
        )
    }

    /// Cross-shard lazy range query over any [`RangeBounds`], ascending
    /// by key.
    ///
    /// Asks the partitioner which shards can hold keys in the bounds
    /// (skipping the rest), closes one phase per participating shard in
    /// **descending shard order**, and returns the k-way merge of the
    /// per-shard wait-free iterators. Each per-shard view is
    /// linearizable; the combined view is the prefix-consistent cut
    /// described in the crate docs.
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> MergeRange<'_, K, V> {
        let lo = range.start_bound().cloned();
        let hi = range.end_bound().cloned();
        let targets =
            self.map
                .partitioner
                .shards_for_range(lo.as_ref(), hi.as_ref(), self.handles.len());
        let mut ranges: Vec<Range<'_, K, V>> = Vec::new();
        match targets {
            // Consistency discipline: phases close in descending shard
            // order (creating a `Range` closes the phase; it traverses
            // nothing until polled).
            None => {
                for (i, h) in self.handles.iter().enumerate().rev() {
                    self.map.counters[i].scans();
                    ranges.push(h.range((lo.clone(), hi.clone())));
                }
            }
            Some(mut idx) => {
                idx.sort_unstable_by(|a, b| b.cmp(a)); // descending
                idx.dedup();
                for i in idx {
                    self.map.counters[i].scans();
                    ranges.push(self.handles[i].range((lo.clone(), hi.clone())));
                }
            }
        }
        MergeRange::new(ranges)
    }

    /// Lazy iteration over the whole map (`range(..)`), ascending.
    pub fn iter(&self) -> MergeRange<'_, K, V> {
        self.range(..)
    }

    /// Closed-interval range query returning a `Vec` — compat shim over
    /// [`range`](Self::range).
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.range(lo.clone()..=hi.clone()).collect()
    }

    /// Count keys in `[lo, hi]` across shards without cloning values
    /// into a result set.
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        self.range(lo.clone()..=hi.clone()).count()
    }

    /// Cardinality: one wait-free scan per shard, merged.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Emptiness test (stops at the first key found).
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }

    /// Take a cross-shard snapshot (independent of this session; it
    /// pins its own guards and may outlive the session). See
    /// [`ShardedPnbBst::snapshot`].
    pub fn snapshot(&self) -> ShardedSnapshot<'t, K, V, P> {
        self.map.snapshot()
    }

    /// Re-pin the session so memory reclamation can advance past
    /// everything retired since the last pin.
    ///
    /// Drops every shard handle *first* (the thread's pin count must
    /// reach zero — `Guard::repin` is a no-op while sibling guards
    /// exist) and then re-pins all shards. `&mut self` proves no
    /// borrowed iterator is in flight across the re-pin.
    pub fn refresh(&mut self) {
        self.handles.clear(); // pin count → 0: the epoch can move
        self.handles.extend(self.map.shards.iter().map(|t| t.pin()));
    }

    /// Seal this thread's deferred garbage and attempt a collection
    /// pass (see `crossbeam_epoch::Guard::flush`). The flush is a
    /// thread-level operation, so one handle's flush covers the whole
    /// session.
    pub fn flush(&self) {
        if let Some(h) = self.handles.first() {
            h.flush();
        }
    }

    /// How many shard handles this session holds (always the map's
    /// shard count; diagnostics).
    pub fn shard_handles(&self) -> usize {
        self.handles.len()
    }
}

impl<K, V, P> std::fmt::Debug for ShardedSession<'_, K, V, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.handles.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RangePrefixPartitioner;
    use std::ops::Bound;

    fn map(shards: usize) -> ShardedPnbBst<u64, u64> {
        ShardedPnbBst::with_partitioner(shards, RangePrefixPartitioner::with_block_bits(8))
    }

    #[test]
    fn session_covers_the_operation_set() {
        let m = map(4);
        let s = m.pin();
        assert!(s.is_empty());
        assert!(s.insert(5, 50));
        assert!(!s.insert(5, 51));
        assert_eq!(s.upsert(5, 55), Some(50));
        assert_eq!(s.upsert(6_000, 60), None);
        assert_eq!(s.get(&5), Some(55));
        assert!(s.contains(&6_000));
        assert_eq!(s.len(), 2);
        assert_eq!(s.range_scan(&0, &10_000), vec![(5, 55), (6_000, 60)]);
        assert_eq!(s.scan_count(&0, &10_000), 2);
        assert_eq!(s.remove(&5), Some(55));
        assert!(!s.delete(&5));
        assert_eq!(s.map().check_invariants(), 1);
    }

    #[test]
    fn merged_range_is_globally_ascending() {
        let m = map(8);
        let s = m.pin();
        // Stride past the block size so consecutive keys hit different
        // shards and the merge has real interleaving to do.
        let keys: Vec<u64> = (0..200u64).map(|i| i * 257).collect();
        for &k in &keys {
            s.insert(k, k * 10);
        }
        let got: Vec<u64> = s.range(..).map(|(k, _)| k).collect();
        assert_eq!(got, keys);
        // Sub-ranges agree with a filtered model across all bound kinds.
        let got: Vec<u64> = s.range(1_000..5_000).map(|(k, _)| k).collect();
        let expect: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| (1_000..5_000).contains(k))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(
            s.range((Bound::Excluded(257), Bound::Included(1028)))
                .map(|(k, _)| k)
                .collect::<Vec<_>>(),
            vec![514, 771, 1028]
        );
    }

    #[test]
    fn narrow_ranges_skip_shards() {
        let m = map(8); // 256-key blocks
        let s = m.pin();
        for k in 0..2_048u64 {
            s.insert(k, k);
        }
        // A range inside one block touches at most two shards.
        let r = s.range(10u64..100);
        assert!(r.width() <= 2, "width {}", r.width());
        assert_eq!(r.count(), 90);
        // An unbounded range visits all of them.
        assert_eq!(s.range(..).width(), 8);
        // An inverted range yields nothing (bounds invert inside one
        // 256-key block, so at most that block's shard participates).
        // Explicit Bound pairs: a reversed range *literal* is a denied
        // lint, and rightly so outside this deliberate edge-case test.
        let r = s.range((Bound::Included(500u64), Bound::Excluded(400u64)));
        assert!(r.width() <= 1);
        assert_eq!(r.count(), 0);
        // Inverted across blocks: provably empty, no shard visited.
        let r = s.range((Bound::Included(1_500u64), Bound::Excluded(400u64)));
        assert_eq!(r.width(), 0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn refresh_keeps_the_session_usable() {
        let m = map(3);
        let mut s = m.pin();
        for k in 0..300u64 {
            s.insert(k, k);
            if k.is_multiple_of(50) {
                s.refresh();
            }
        }
        s.flush();
        assert_eq!(s.len(), 300);
        assert_eq!(s.shard_handles(), 3);
        assert_eq!(m.check_invariants(), 300);
    }

    #[test]
    fn updates_interleave_with_live_merged_iteration() {
        // A MergeRange reads closed phases: updates through the same
        // session while it is consumed must not disturb it.
        let m = map(4);
        let s = m.pin();
        for k in 0..40u64 {
            s.insert(k * 300, k);
        }
        let mut seen = Vec::new();
        for (k, _) in s.range(..) {
            s.delete(&k);
            s.insert(1_000_000 + k, k);
            seen.push(k);
        }
        assert_eq!(seen, (0..40u64).map(|k| k * 300).collect::<Vec<_>>());
        assert_eq!(m.check_invariants(), 40);
    }

    #[test]
    fn snapshot_outlives_session() {
        let m = map(2);
        let snap = {
            let s = m.pin();
            s.insert(1, 1);
            s.snapshot()
        };
        m.insert(2, 2);
        assert_eq!(snap.to_vec(), vec![(1, 1)]);
    }
}
