//! Cross-shard snapshots: per-shard [`Snapshot`]s captured in the
//! consistency-preserving order and read as one view.

use std::ops::RangeBounds;

use pnb_bst::Snapshot;

use crate::map::ShardedPnbBst;
use crate::merge::MergeRange;
use crate::partition::Partitioner;

/// A wait-free, immutable cross-shard view of a [`ShardedPnbBst`].
///
/// Holds one [`Snapshot`] per shard, captured in **descending shard
/// order** at creation. Each per-shard view is linearizable; the
/// combined view is a *prefix-consistent cut*: any sequence of writes
/// issued in ascending shard order is observed prefix-closed — if the
/// snapshot shows a transaction's write to shard `i`, it shows that
/// transaction's writes to every shard `j < i` too (crate docs,
/// "Consistency model").
///
/// Like [`Snapshot`], it is not `Send` (it embeds the creating thread's
/// epoch guards), and holding it long delays reclamation of everything
/// retired after its creation — in every shard.
///
/// # Example
///
/// ```
/// use pnb_shard::ShardedPnbBst;
///
/// let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
/// let s = map.pin();
/// for k in 0..100u64 {
///     s.insert(k * 1000, k);
/// }
/// let snap = map.snapshot();
/// for k in 0..100u64 {
///     s.delete(&(k * 1000));
/// }
/// assert!(s.is_empty());          // the map has moved on...
/// assert_eq!(snap.len(), 100);    // ...the snapshot has not
/// assert_eq!(snap.get(&5_000), Some(5));
/// ```
pub struct ShardedSnapshot<'t, K, V, P = crate::RangePrefixPartitioner> {
    map: &'t ShardedPnbBst<K, V, P>,
    /// Index-aligned with `map.shards`; *captured* in descending shard
    /// order (the vector is then reversed back into index order).
    snaps: Vec<Snapshot<'t, K, V>>,
}

impl<'t, K, V, P> ShardedSnapshot<'t, K, V, P>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
    P: Partitioner<K>,
{
    pub(crate) fn new(map: &'t ShardedPnbBst<K, V, P>) -> Self {
        // Capture order IS the consistency mechanism: highest shard
        // first, shard 0 last (see the type docs / crate docs §model).
        let mut snaps: Vec<Snapshot<'t, K, V>> = map
            .shards
            .iter()
            .enumerate()
            .rev()
            .map(|(i, t)| {
                map.counters[i].scans();
                t.snapshot()
            })
            .collect();
        snaps.reverse(); // back to index order for routing
        ShardedSnapshot { map, snaps }
    }

    /// The underlying sharded map.
    pub fn map(&self) -> &'t ShardedPnbBst<K, V, P> {
        self.map
    }

    /// The per-shard phase (sequence number) each component snapshot
    /// reads, index-aligned with the shards (diagnostics).
    pub fn seqs(&self) -> Vec<u64> {
        self.snaps.iter().map(|s| s.seq()).collect()
    }

    /// One shard's component snapshot (diagnostics and tests).
    pub fn shard(&self, index: usize) -> &Snapshot<'t, K, V> {
        &self.snaps[index]
    }

    /// Wait-free point lookup in the snapshot's version of the key's
    /// shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.snaps[self.map.shard_of(key)].get(key)
    }

    /// Whether `key` was present when its shard was captured.
    pub fn contains(&self, key: &K) -> bool {
        self.snaps[self.map.shard_of(key)].contains(key)
    }

    /// Cross-shard lazy range iteration within the snapshot, ascending.
    /// The phases are already closed, so (unlike
    /// [`ShardedSession::range`](crate::ShardedSession::range)) this
    /// advances no counters and any number of iterations observe the
    /// same cut.
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> MergeRange<'_, K, V> {
        let lo = range.start_bound().cloned();
        let hi = range.end_bound().cloned();
        let targets =
            self.map
                .partitioner
                .shards_for_range(lo.as_ref(), hi.as_ref(), self.snaps.len());
        let indices: Vec<usize> = match targets {
            None => (0..self.snaps.len()).collect(),
            Some(mut idx) => {
                idx.sort_unstable();
                idx.dedup();
                idx
            }
        };
        MergeRange::new(
            indices
                .into_iter()
                .map(|i| self.snaps[i].range((lo.clone(), hi.clone())))
                .collect(),
        )
    }

    /// Lazy iteration over the whole snapshot (`range(..)`), ascending.
    pub fn iter(&self) -> MergeRange<'_, K, V> {
        self.range(..)
    }

    /// All key/value pairs in the snapshot, ascending.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.iter().collect()
    }

    /// Keys only, ascending.
    pub fn keys(&self) -> Vec<K> {
        self.iter().map(|(k, _)| k).collect()
    }

    /// Number of keys in the snapshot (sum of per-shard cardinalities).
    pub fn len(&self) -> usize {
        self.snaps.iter().map(|s| s.len()).sum()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snaps.iter().all(|s| s.is_empty())
    }
}

impl<K, V, P> std::fmt::Debug for ShardedSnapshot<'_, K, V, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSnapshot")
            .field("shards", &self.snaps.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize) -> ShardedPnbBst<u64, u64> {
        ShardedPnbBst::with_partitioner(shards, crate::RangePrefixPartitioner::with_block_bits(8))
    }

    #[test]
    fn snapshot_is_frozen_in_time() {
        let m = map(4);
        let s = m.pin();
        for k in 0..64u64 {
            s.insert(k * 300, k);
        }
        let snap = m.snapshot();
        for k in 0..64u64 {
            s.delete(&(k * 300));
            s.insert(k * 300 + 1, k);
        }
        assert_eq!(snap.len(), 64);
        assert_eq!(snap.keys(), (0..64u64).map(|k| k * 300).collect::<Vec<_>>());
        assert_eq!(snap.get(&600), Some(2));
        assert!(!snap.contains(&601)); // written after the capture
        assert!(!snap.is_empty());
        assert_eq!(snap.seqs().len(), 4);
    }

    #[test]
    fn snapshot_ranges_merge_ascending_and_skip_shards() {
        let m = map(8);
        let s = m.pin();
        for k in 0..1_024u64 {
            s.insert(k, k);
        }
        let snap = m.snapshot();
        // Narrow range: at most two 256-key blocks participate.
        let r = snap.range(100u64..200);
        assert!(r.width() <= 2);
        assert_eq!(r.count(), 100);
        let got: Vec<u64> = snap.range(..).map(|(k, _)| k).collect();
        assert_eq!(got, (0..1_024).collect::<Vec<_>>());
        // Re-iteration observes the same cut (phases already closed).
        assert_eq!(snap.range(..).count(), 1_024);
    }

    #[test]
    fn multiple_snapshots_capture_distinct_versions() {
        let m = map(2);
        m.insert(1, 1);
        let s1 = m.snapshot();
        m.insert(2_000, 2);
        let s2 = m.snapshot();
        m.delete(&1);
        let s3 = m.snapshot();
        assert_eq!(s1.keys(), vec![1]);
        assert_eq!(s2.keys(), vec![1, 2_000]);
        assert_eq!(s3.keys(), vec![2_000]);
    }

    #[test]
    fn empty_snapshot() {
        let m = map(3);
        let snap = m.snapshot();
        m.insert(1, 1);
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.get(&1), None);
        assert_eq!(snap.to_vec(), vec![]);
    }
}
