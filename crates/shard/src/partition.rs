//! Key-space partitioners: the routing policy of a
//! [`ShardedPnbBst`](crate::ShardedPnbBst).
//!
//! A partitioner is a *pure function* from key to shard index. The
//! sharded map never stores routing state — every point operation
//! recomputes the shard from the key — so the entire correctness
//! contract of a partitioner is determinism (see [`Partitioner`]).
//!
//! Two implementations ship with the crate:
//!
//! * [`RangePrefixPartitioner`] (the default for `u64` keys): hashes
//!   the key's *block prefix* (`key >> block_bits`), so keys inside one
//!   aligned block of `2^block_bits` keys land on the same shard and
//!   narrow range queries stay shard-local, while distinct blocks still
//!   spread uniformly. It also implements
//!   [`shards_for_range`](Partitioner::shards_for_range), which is what
//!   lets cross-shard range queries skip shards that cannot hold a
//!   matching key.
//! * [`HashPartitioner`]: plain per-key hashing for any `K: Hash`.
//!   Best point-op load spread; every range query must visit every
//!   shard.

use std::hash::{Hash, Hasher};
use std::ops::Bound;

/// The routing policy of a sharded map: a deterministic, total mapping
/// from keys to shard indices.
///
/// # Contract
///
/// * **Determinism:** `shard_of(k, n)` must return the same index for
///   the same `(k, n)` forever — the map recomputes the route on every
///   operation, so a drifting partitioner would make keys unreachable.
///   (Changing `n` may reshuffle everything; the sharded map fixes the
///   shard count at construction.)
/// * **Totality and range:** every key must map to some index
///   `< shards`; the map does not re-check the bound in release builds.
/// * **Superset ranges:** when
///   [`shards_for_range`](Self::shards_for_range) returns `Some(set)`,
///   the set must contain *every* shard that could hold a key inside
///   the bounds. Returning a superset (or `None`, meaning "all
///   shards") is always correct; returning too few shards silently
///   drops results.
///
/// # Example
///
/// A partitioner that routes odd and even keys to different shards:
///
/// ```
/// use pnb_shard::{Partitioner, ShardedPnbBst};
///
/// struct ParityPartitioner;
///
/// impl Partitioner<u64> for ParityPartitioner {
///     fn shard_of(&self, key: &u64, shards: usize) -> usize {
///         (*key as usize % 2) % shards
///     }
/// }
///
/// let map: ShardedPnbBst<u64, &str, _> =
///     ShardedPnbBst::with_partitioner(2, ParityPartitioner);
/// let s = map.pin();
/// s.insert(1, "odd");
/// s.insert(2, "even");
/// assert_eq!(map.shard_of(&1), 1);
/// assert_eq!(map.shard_of(&2), 0);
/// // Routing is internal: reads see one map.
/// assert_eq!(s.get(&1), Some("odd"));
/// assert_eq!(s.range(..).count(), 2);
/// ```
pub trait Partitioner<K>: Send + Sync {
    /// The shard (`< shards`) that owns `key`.
    fn shard_of(&self, key: &K, shards: usize) -> usize;

    /// The shards that may hold keys within `[lo, hi]`, or `None` for
    /// "all of them". Used by cross-shard range queries to skip shards
    /// that cannot contribute; must return a **superset** of the shards
    /// actually containing matching keys (see the trait contract).
    ///
    /// The default is the always-correct `None`.
    fn shards_for_range(
        &self,
        _lo: Bound<&K>,
        _hi: Bound<&K>,
        _shards: usize,
    ) -> Option<Vec<usize>> {
        None
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed integer hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The default partitioner for `u64` keys: hash of the key's *range
/// prefix*.
///
/// Keys are grouped into aligned blocks of `2^block_bits` consecutive
/// keys; the block index (`key >> block_bits`) is hashed to pick the
/// shard. Two properties follow:
///
/// * a range query no wider than a block overlaps at most two blocks,
///   so it touches at most two shards (often one) — range queries stay
///   *shard-local where possible*;
/// * distinct blocks spread uniformly (the hash breaks up sequential
///   block-index patterns), so a skewed key distribution still
///   balances across shards at block granularity.
///
/// `block_bits` is the locality/balance dial: larger blocks keep wider
/// ranges shard-local but concentrate hot key clusters on fewer
/// shards. The default is 12 (4096-key blocks) — wider than the range
/// widths the paper's evaluation sweeps (10–10 000, E4) at its low
/// end, and fine-grained enough that a 100 000-key space still spreads
/// over ~25 blocks.
///
/// ```
/// use pnb_shard::{Partitioner, RangePrefixPartitioner};
/// use std::ops::Bound;
///
/// let p = RangePrefixPartitioner::with_block_bits(8); // 256-key blocks
/// // Keys in the same block share a shard...
/// assert_eq!(p.shard_of(&0, 16), p.shard_of(&255, 16));
/// // ...and a block-sized range query touches at most two shards.
/// let shards = p
///     .shards_for_range(Bound::Included(&100), Bound::Included(&300), 16)
///     .expect("narrow range resolves to a concrete shard set");
/// assert!(shards.len() <= 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RangePrefixPartitioner {
    block_bits: u32,
}

impl RangePrefixPartitioner {
    /// How many distinct blocks a range may span before
    /// [`shards_for_range`](Partitioner::shards_for_range) gives up and
    /// reports "all shards" — scanning more block indices than this
    /// would cost more than the skipped shards save.
    const MAX_BLOCK_SPAN: u64 = 64;

    /// Partitioner with the default block size (`2^12` = 4096 keys).
    pub fn new() -> Self {
        Self::with_block_bits(12)
    }

    /// Partitioner with `2^block_bits`-key blocks. `block_bits` is
    /// clamped to 63.
    pub fn with_block_bits(block_bits: u32) -> Self {
        RangePrefixPartitioner {
            block_bits: block_bits.min(63),
        }
    }

    /// The configured block size in keys.
    pub fn block_size(&self) -> u64 {
        1u64 << self.block_bits
    }

    #[inline]
    fn block_of(&self, key: u64) -> u64 {
        key >> self.block_bits
    }
}

impl Default for RangePrefixPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner<u64> for RangePrefixPartitioner {
    #[inline]
    fn shard_of(&self, key: &u64, shards: usize) -> usize {
        (mix64(self.block_of(*key)) % shards as u64) as usize
    }

    fn shards_for_range(
        &self,
        lo: Bound<&u64>,
        hi: Bound<&u64>,
        shards: usize,
    ) -> Option<Vec<usize>> {
        // Superset semantics make the bound arithmetic trivial:
        // treating an excluded bound as included only widens the set.
        let lo_block = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) | Bound::Excluded(k) => self.block_of(*k),
        };
        let hi_block = match hi {
            Bound::Unbounded => self.block_of(u64::MAX),
            Bound::Included(k) | Bound::Excluded(k) => self.block_of(*k),
        };
        if hi_block < lo_block {
            return Some(Vec::new()); // inverted range: nothing matches
        }
        if hi_block - lo_block >= Self::MAX_BLOCK_SPAN {
            return None; // wide range: enumerate nothing, visit all
        }
        let mut out: Vec<usize> = (lo_block..=hi_block)
            .map(|b| (mix64(b) % shards as u64) as usize)
            .collect();
        out.sort_unstable();
        out.dedup();
        Some(out)
    }
}

/// Per-key hashing for any `K: Hash`: the best point-operation load
/// spread, at the price of every range query touching every shard
/// ([`shards_for_range`](Partitioner::shards_for_range) always reports
/// "all").
///
/// ```
/// use pnb_shard::{HashPartitioner, ShardedPnbBst};
///
/// let map: ShardedPnbBst<String, u32, _> =
///     ShardedPnbBst::with_partitioner(4, HashPartitioner::new());
/// let s = map.pin();
/// s.insert("alpha".to_string(), 1);
/// s.insert("beta".to_string(), 2);
/// assert_eq!(s.get(&"alpha".to_string()), Some(1));
/// let all: Vec<(String, u32)> = s.range(..).collect();
/// assert_eq!(all.len(), 2); // merged across shards, ascending
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// A fresh hash partitioner.
    pub fn new() -> Self {
        HashPartitioner
    }
}

impl<K: Hash + Send + Sync> Partitioner<K> for HashPartitioner {
    fn shard_of(&self, key: &K, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (mix64(h.finish()) % shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_partitioner_is_deterministic_and_in_range() {
        let p = RangePrefixPartitioner::new();
        for n in [1usize, 2, 3, 8, 16] {
            for k in (0..100_000u64).step_by(997) {
                let s = p.shard_of(&k, n);
                assert!(s < n);
                assert_eq!(s, p.shard_of(&k, n));
            }
        }
    }

    #[test]
    fn prefix_partitioner_keeps_blocks_together() {
        let p = RangePrefixPartitioner::with_block_bits(10);
        let n = 8;
        for block in 0..64u64 {
            let base = block << 10;
            let s = p.shard_of(&base, n);
            for off in [1u64, 511, 1023] {
                assert_eq!(p.shard_of(&(base + off), n), s);
            }
        }
    }

    #[test]
    fn prefix_partitioner_spreads_blocks() {
        // With many blocks, every shard should own some of them.
        let p = RangePrefixPartitioner::with_block_bits(4);
        let n = 8;
        let mut seen = vec![0usize; n];
        for k in (0..(1u64 << 12)).step_by(16) {
            seen[p.shard_of(&k, n)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "unused shard: {seen:?}");
    }

    #[test]
    fn shards_for_range_is_a_superset() {
        let p = RangePrefixPartitioner::with_block_bits(6);
        let n = 8;
        for (lo, hi) in [(0u64, 63), (10, 500), (1000, 1001), (5000, 8191)] {
            let set = p
                .shards_for_range(Bound::Included(&lo), Bound::Included(&hi), n)
                .expect("narrow ranges resolve");
            for k in lo..=hi {
                assert!(
                    set.contains(&p.shard_of(&k, n)),
                    "key {k} of [{lo}, {hi}] routed outside {set:?}"
                );
            }
        }
    }

    #[test]
    fn shards_for_range_edges() {
        let p = RangePrefixPartitioner::with_block_bits(6);
        // Inverted: provably empty.
        assert_eq!(
            p.shards_for_range(Bound::Included(&100), Bound::Included(&50), 4),
            Some(vec![])
        );
        // Unbounded both sides: all shards.
        assert_eq!(
            p.shards_for_range(Bound::Unbounded, Bound::Unbounded, 4),
            None
        );
        // Wide spans give up rather than enumerate.
        assert_eq!(
            p.shards_for_range(Bound::Included(&0), Bound::Included(&u64::MAX), 4),
            None
        );
        // Excluded bounds are treated as included (superset semantics).
        let a = p.shards_for_range(Bound::Excluded(&100), Bound::Excluded(&200), 4);
        let b = p.shards_for_range(Bound::Included(&100), Bound::Included(&200), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn hash_partitioner_routes_in_range_and_deterministically() {
        let p = HashPartitioner::new();
        for n in [1usize, 2, 7, 8] {
            for k in 0..1000u64 {
                let s = Partitioner::<u64>::shard_of(&p, &k, n);
                assert!(s < n);
                assert_eq!(s, Partitioner::<u64>::shard_of(&p, &k, n));
            }
        }
        // Strings route too (any K: Hash).
        let s = Partitioner::<String>::shard_of(&p, &"hello".to_string(), 4);
        assert!(s < 4);
    }

    #[test]
    fn single_shard_always_routes_to_zero() {
        let pp = RangePrefixPartitioner::new();
        let hp = HashPartitioner::new();
        for k in (0..10_000u64).step_by(97) {
            assert_eq!(pp.shard_of(&k, 1), 0);
            assert_eq!(Partitioner::<u64>::shard_of(&hp, &k, 1), 0);
        }
    }
}
