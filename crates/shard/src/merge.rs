//! Lazy k-way merge over per-shard [`Range`] iterators.
//!
//! Each shard's `Range` yields its keys in ascending order, and a key
//! lives on exactly one shard (the partitioner is a function), so
//! merging by minimum head reproduces the globally ascending order
//! without ever materializing a shard's result set. Laziness is
//! inherited: creating the merge only *creates* the per-shard
//! iterators (each of which closes its shard's phase without
//! traversing anything); all traversal work happens one `next()` at a
//! time, and abandoning the merge early abandons the remaining work.

use pnb_bst::Range;

/// A lazy, ascending iterator over the union of per-shard range
/// queries — the cross-shard analogue of [`pnb_bst::Range`].
///
/// Created by [`ShardedSession::range`](crate::ShardedSession::range) /
/// [`iter`](crate::ShardedSession::iter) (which close one phase per
/// participating shard, in descending shard order — see the crate docs
/// for the consistency model) or by
/// [`ShardedSnapshot::range`](crate::ShardedSnapshot::range) (which
/// reuses the snapshot's already-closed phases).
///
/// The merge holds one buffered head entry per shard and selects the
/// minimum on each `next()` — `O(shards)` per item, which for the
/// intended shard counts (a few dozen at most) beats a binary heap's
/// constant factors and allocates nothing beyond the head slots. The
/// heads are primed on the *first* `next()` call (one initial descent
/// per participating shard), so constructing and then abandoning a
/// merge — or only inspecting [`width`](Self::width) — traverses
/// nothing.
pub struct MergeRange<'a, K, V> {
    /// One [`Source`] per participating shard. Heads are meaningless
    /// until `primed`.
    sources: Vec<Source<'a, K, V>>,
    /// Whether the first `next()` has buffered every source's head.
    primed: bool,
}

/// One merge participant: the buffered head entry (`None` once the
/// source is exhausted) and the per-shard iterator feeding it.
type Source<'a, K, V> = (Option<(K, V)>, Range<'a, K, V>);

impl<'a, K, V> MergeRange<'a, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Merge the given per-shard iterators. The caller is responsible
    /// for the creation-order discipline that gives the merged view its
    /// consistency guarantee; this type only merges.
    pub(crate) fn new(ranges: Vec<Range<'a, K, V>>) -> Self {
        MergeRange {
            sources: ranges.into_iter().map(|r| (None, r)).collect(),
            primed: false,
        }
    }

    /// How many per-shard iterators participate (diagnostics; shards
    /// skipped by the partitioner's range analysis are not counted).
    pub fn width(&self) -> usize {
        self.sources.len()
    }
}

impl<K, V> Iterator for MergeRange<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        // First poll: buffer every source's head (the one place the
        // per-shard initial descents happen — not at construction).
        if !self.primed {
            for (head, source) in &mut self.sources {
                *head = source.next();
            }
            self.primed = true;
        }
        // Index of the source holding the smallest buffered key. Keys
        // are unique across shards (one partitioner owner per key), so
        // ties cannot arise from a well-formed map; `<` keeps the merge
        // stable by shard position if they somehow do.
        let mut min: Option<usize> = None;
        for (i, (head, _)) in self.sources.iter().enumerate() {
            if let Some((k, _)) = head {
                match min {
                    Some(m) => {
                        let (mk, _) = self.sources[m].0.as_ref().expect("min head is buffered");
                        if k < mk {
                            min = Some(i);
                        }
                    }
                    None => min = Some(i),
                }
            }
        }
        let i = min?;
        let (head, source) = &mut self.sources[i];
        let item = head.take();
        *head = source.next();
        item
    }
}

impl<K, V> std::iter::FusedIterator for MergeRange<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
}

impl<K, V> std::fmt::Debug for MergeRange<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeRange")
            .field("width", &self.sources.len())
            .finish()
    }
}
