//! Optional per-shard operation counters (compiled in with the `stats`
//! feature).
//!
//! The sharded front-end's scaling argument rests on the partitioner
//! spreading load evenly; these counters make the spread *observable*.
//! [`ShardedPnbBst::shard_stats`](crate::ShardedPnbBst::shard_stats)
//! returns one [`ShardOpStats`] per shard and [`load_imbalance`]
//! reduces them to the max/mean ratio the reports print (1.0 = perfect
//! balance). Counters are `Relaxed` atomics bumped on the session hot
//! path, one cache line per shard so neighbouring shards never false
//! share; without the feature every bump compiles to nothing and the
//! snapshot reads zero.

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's operation totals, as counted at the routing layer (a
/// retried CAS inside the tree still counts once). Zeros without the
/// `stats` build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardOpStats {
    /// Point reads routed here (`get` + `contains`).
    pub gets: u64,
    /// Set-semantics inserts routed here.
    pub inserts: u64,
    /// Upserts routed here.
    pub upserts: u64,
    /// Deletes/removes routed here.
    pub deletes: u64,
    /// Range queries and snapshots this shard participated in.
    pub scans: u64,
}

impl ShardOpStats {
    /// All operations this shard served.
    pub fn total(&self) -> u64 {
        self.gets + self.inserts + self.upserts + self.deletes + self.scans
    }
}

/// Internal per-shard counter block. One cache line per shard
/// (`align(64)`) so bumps on neighbouring shards never false-share;
/// zero-sized without the `stats` feature.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct ShardCounters {
    #[cfg(feature = "stats")]
    gets: AtomicU64,
    #[cfg(feature = "stats")]
    inserts: AtomicU64,
    #[cfg(feature = "stats")]
    upserts: AtomicU64,
    #[cfg(feature = "stats")]
    deletes: AtomicU64,
    #[cfg(feature = "stats")]
    scans: AtomicU64,
}

macro_rules! bump_impl {
    ($($name:ident),* $(,)?) => {
        $(
            #[cfg(feature = "stats")]
            #[inline]
            pub(crate) fn $name(&self) {
                self.$name.fetch_add(1, Ordering::Relaxed);
            }
            #[cfg(not(feature = "stats"))]
            #[inline(always)]
            pub(crate) fn $name(&self) {}
        )*
    };
}

impl ShardCounters {
    bump_impl!(gets, inserts, upserts, deletes, scans);

    /// Read this shard's totals (zeros without the `stats` feature).
    pub(crate) fn snapshot(&self) -> ShardOpStats {
        #[cfg(feature = "stats")]
        {
            ShardOpStats {
                gets: self.gets.load(Ordering::Relaxed),
                inserts: self.inserts.load(Ordering::Relaxed),
                upserts: self.upserts.load(Ordering::Relaxed),
                deletes: self.deletes.load(Ordering::Relaxed),
                scans: self.scans.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            ShardOpStats::default()
        }
    }
}

/// Max/mean ratio of per-shard totals: 1.0 is a perfect spread, `N` is
/// everything on one of `N` shards. Returns 0.0 when no shard has
/// served any operation (e.g. without the `stats` build), so reports
/// can distinguish "balanced" from "not measured".
pub fn load_imbalance(stats: &[ShardOpStats]) -> f64 {
    let totals: Vec<u64> = stats.iter().map(ShardOpStats::total).collect();
    let sum: u64 = totals.iter().sum();
    if sum == 0 || totals.is_empty() {
        return 0.0;
    }
    let max = *totals.iter().max().expect("non-empty") as f64;
    let mean = sum as f64 / totals.len() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_defaults_to_zero() {
        let c = ShardCounters::default();
        assert_eq!(c.snapshot(), ShardOpStats::default());
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn imbalance_of_nothing_is_zero() {
        assert_eq!(load_imbalance(&[]), 0.0);
        assert_eq!(load_imbalance(&[ShardOpStats::default(); 4]), 0.0);
    }

    #[test]
    fn imbalance_ratio_is_max_over_mean() {
        let mk = |gets| ShardOpStats {
            gets,
            ..Default::default()
        };
        // Perfect balance.
        assert!((load_imbalance(&[mk(10), mk(10)]) - 1.0).abs() < 1e-12);
        // Everything on one of four shards: ratio = N.
        let skew = [mk(100), mk(0), mk(0), mk(0)];
        assert!((load_imbalance(&skew) - 4.0).abs() < 1e-12);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counters_record() {
        let c = ShardCounters::default();
        c.gets();
        c.gets();
        c.inserts();
        c.scans();
        let s = c.snapshot();
        assert_eq!(s.gets, 2);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.total(), 4);
    }
}
