//! Durable sharded checkpoints: one consistent cross-shard cut on disk,
//! restored shard-by-shard with O(n) bulk loads.
//!
//! The on-disk format is `pnb_bst::persist`'s (one segment per shard, a
//! manifest, a commit marker written last); this module adds the two
//! things only the sharded layer knows:
//!
//! * **the cut**: [`checkpoint`](ShardedPnbBst::checkpoint) serializes
//!   a [`ShardedSnapshot`](crate::ShardedSnapshot) — per-shard
//!   snapshots captured in descending shard order, so the on-disk image
//!   is exactly one prefix-consistent view (crate docs, "Consistency
//!   model"), frozen while writers proceed;
//! * **the routing config**: the manifest records the partitioner's
//!   identity and parameter via [`PersistentPartitioner`], and
//!   [`restore`](ShardedPnbBst::restore) re-derives the partitioner
//!   from the manifest — then *verifies* it, rejecting any key that
//!   does not route to the shard whose segment holds it
//!   ([`CheckpointError::MisroutedKey`]). A checkpoint taken under one
//!   routing config can never be silently reinterpreted under another.

use std::path::Path;

use pnb_bst::persist::{
    load_latest, write_generation, CheckpointError, CheckpointReport, Manifest,
};
use pnb_bst::PnbBst;

use crate::map::ShardedPnbBst;
use crate::partition::{HashPartitioner, Partitioner, RangePrefixPartitioner};
use crate::stats::ShardCounters;

/// A partitioner whose configuration can be recorded in a checkpoint
/// manifest and re-derived on restore.
///
/// The pair `(TAG, persist_param())` must identify the routing function
/// completely: [`from_persist`](Self::from_persist) of that pair must
/// route every key exactly as the original did, or restore would file
/// keys in shards where lookups cannot find them. (Restore additionally
/// cross-checks every loaded key against the re-derived route, so a
/// broken implementation fails loudly rather than losing keys.)
pub trait PersistentPartitioner: Partitioner<u64> + Sized {
    /// The tag written to the manifest (tag 0 is reserved for
    /// unsharded single-tree checkpoints).
    const TAG: u32;

    /// The single `u64` parameter that, with [`Self::TAG`], fully
    /// reconstructs this partitioner.
    fn persist_param(&self) -> u64;

    /// Rebuild the partitioner from its persisted parameter.
    fn from_persist(param: u64) -> Self;
}

impl PersistentPartitioner for RangePrefixPartitioner {
    const TAG: u32 = 1;

    fn persist_param(&self) -> u64 {
        u64::from(self.block_size().trailing_zeros())
    }

    fn from_persist(param: u64) -> Self {
        RangePrefixPartitioner::with_block_bits(param.min(63) as u32)
    }
}

impl PersistentPartitioner for HashPartitioner {
    const TAG: u32 = 2;

    fn persist_param(&self) -> u64 {
        0
    }

    fn from_persist(_param: u64) -> Self {
        HashPartitioner::new()
    }
}

impl<P> ShardedPnbBst<u64, u64, P>
where
    P: PersistentPartitioner,
{
    /// Checkpoint the map to `dir`: take one cross-shard
    /// [`snapshot`](ShardedPnbBst::snapshot) (the descending-capture
    /// prefix-consistent cut; updates keep running), serialize each
    /// shard's frozen view as a sorted segment, and commit the set as a
    /// new generation — segments and manifest first, `COMMIT` marker
    /// last, so a crash anywhere in between leaves the previous
    /// complete checkpoint loadable.
    pub fn checkpoint(&self, dir: &Path) -> Result<CheckpointReport, CheckpointError> {
        let snap = self.snapshot();
        let shards: Vec<Vec<(u64, u64)>> = (0..self.shard_count())
            .map(|i| snap.shard(i).to_vec())
            .collect();
        write_generation(dir, P::TAG, self.partitioner().persist_param(), &shards)
    }

    /// Rebuild a sharded map from the newest loadable checkpoint
    /// generation in `dir`. The shard count and partitioner
    /// configuration come from the manifest (the caller only fixes the
    /// partitioner *type*; a manifest recording a different type is
    /// rejected with [`CheckpointError::PartitionerMismatch`]). Each
    /// shard is bulk-loaded in O(n) via [`PnbBst::from_sorted`], and
    /// every key is verified to route to the shard whose segment held
    /// it — a failure anywhere yields a typed error and no map.
    pub fn restore(dir: &Path) -> Result<Self, CheckpointError> {
        let (manifest, shards) = load_latest(dir)?;
        Self::from_loaded(dir, manifest, shards)
    }

    fn from_loaded(
        dir: &Path,
        manifest: Manifest,
        shards: Vec<Vec<(u64, u64)>>,
    ) -> Result<Self, CheckpointError> {
        if manifest.partitioner_tag != P::TAG {
            return Err(CheckpointError::PartitionerMismatch {
                dir: dir.into(),
                found: manifest.partitioner_tag,
            });
        }
        let partitioner = P::from_persist(manifest.partitioner_param);
        let shard_count = shards.len();
        for (i, entries) in shards.iter().enumerate() {
            for (k, _) in entries {
                if partitioner.shard_of(k, shard_count) != i {
                    return Err(CheckpointError::MisroutedKey {
                        path: pnb_bst::persist::segment_path(dir, i as u32),
                        shard: i as u32,
                        key: *k,
                    });
                }
            }
        }
        Ok(ShardedPnbBst {
            shards: shards.into_iter().map(PnbBst::from_sorted).collect(),
            partitioner,
            counters: (0..shard_count).map(|_| ShardCounters::default()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pnbshard-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create test dir");
        d
    }

    #[test]
    fn sharded_roundtrip_preserves_content_and_routing() {
        for shard_count in [1usize, 2, 8] {
            let d = tmpdir(&format!("rt{shard_count}"));
            let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(shard_count);
            let s = m.pin();
            for k in (0..100_000u64).step_by(97) {
                s.insert(k, k + 1);
            }
            drop(s);
            let report = m.checkpoint(&d).expect("checkpoint");
            assert_eq!(report.entries as usize, m.len());
            let r: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&d).expect("restore");
            assert_eq!(r.shard_count(), shard_count);
            assert_eq!(r.check_invariants(), m.len());
            let rs = r.pin();
            let ms = m.pin();
            let got: Vec<(u64, u64)> = rs.range(..).collect();
            let want: Vec<(u64, u64)> = ms.range(..).collect();
            assert_eq!(got, want);
            // Routing survives: point lookups find every key.
            for k in (0..100_000u64).step_by(97) {
                assert_eq!(rs.get(&k), Some(k + 1), "shards={shard_count} key={k}");
            }
            let _ = fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn partitioner_config_comes_from_the_manifest() {
        let d = tmpdir("param");
        let m: ShardedPnbBst<u64, u64> =
            ShardedPnbBst::with_partitioner(4, RangePrefixPartitioner::with_block_bits(8));
        let s = m.pin();
        for k in (0..10_000u64).step_by(13) {
            s.insert(k, k);
        }
        drop(s);
        m.checkpoint(&d).expect("checkpoint");
        let r: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&d).expect("restore");
        // The non-default block size was re-derived, not defaulted.
        assert_eq!(r.partitioner().block_size(), 1 << 8);
        let rs = r.pin();
        for k in (0..10_000u64).step_by(13) {
            assert_eq!(rs.get(&k), Some(k));
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn wrong_partitioner_type_is_rejected() {
        let d = tmpdir("ptype");
        let m: ShardedPnbBst<u64, u64, HashPartitioner> =
            ShardedPnbBst::with_partitioner(2, HashPartitioner::new());
        m.insert(1, 1);
        m.checkpoint(&d).expect("checkpoint");
        // Restoring as the (default) range-prefix type must fail loudly.
        let err = ShardedPnbBst::<u64, u64>::restore(&d).unwrap_err();
        assert!(
            matches!(err, CheckpointError::PartitionerMismatch { found: 2, .. }),
            "got {err}"
        );
        // The matching type restores fine.
        let r: ShardedPnbBst<u64, u64, HashPartitioner> =
            ShardedPnbBst::restore(&d).expect("restore");
        assert_eq!(r.get(&1), Some(1));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn hash_partitioner_roundtrips() {
        let d = tmpdir("hash");
        let m: ShardedPnbBst<u64, u64, HashPartitioner> =
            ShardedPnbBst::with_partitioner(8, HashPartitioner::new());
        let s = m.pin();
        for k in 0..5_000u64 {
            s.insert(k, k * 2);
        }
        drop(s);
        m.checkpoint(&d).expect("checkpoint");
        let r: ShardedPnbBst<u64, u64, HashPartitioner> =
            ShardedPnbBst::restore(&d).expect("restore");
        assert_eq!(r.check_invariants(), 5_000);
        let rs = r.pin();
        assert_eq!(rs.range(..).count(), 5_000);
        assert_eq!(rs.get(&4_999), Some(9_998));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn misrouted_key_is_rejected() {
        use pnb_bst::persist::{
            segment_path, write_commit, write_manifest, write_segment, Manifest, SegmentMeta,
        };
        let d = tmpdir("misroute");
        // Hand-craft a committed generation whose shard 0 holds every
        // key — under any 2-shard partitioner some key must misroute.
        let gen = d.join("gen-000001");
        fs::create_dir(&gen).unwrap();
        let entries: Vec<(u64, u64)> = (0..64u64).map(|k| (k << 12, k)).collect();
        let crc0 = write_segment(&segment_path(&gen, 0), &entries).unwrap();
        let crc1 = write_segment(&segment_path(&gen, 1), &[]).unwrap();
        let manifest = Manifest {
            shard_count: 2,
            partitioner_tag: RangePrefixPartitioner::TAG,
            partitioner_param: 12,
            segments: vec![
                SegmentMeta {
                    entries: entries.len() as u64,
                    crc: crc0,
                },
                SegmentMeta {
                    entries: 0,
                    crc: crc1,
                },
            ],
        };
        let mcrc = write_manifest(&gen, &manifest).unwrap();
        write_commit(&gen, mcrc).unwrap();
        let err = ShardedPnbBst::<u64, u64>::restore(&d).unwrap_err();
        assert!(
            matches!(err, CheckpointError::MisroutedKey { .. }),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn restored_map_accepts_updates_and_snapshots() {
        let d = tmpdir("live");
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
        let s = m.pin();
        for k in (0..50_000u64).step_by(50) {
            s.insert(k, k);
        }
        drop(s);
        m.checkpoint(&d).expect("checkpoint");
        let r: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&d).expect("restore");
        let rs = r.pin();
        assert!(rs.insert(7, 7));
        assert_eq!(rs.upsert(0, 99), Some(0));
        assert!(rs.delete(&50));
        let snap = rs.snapshot();
        rs.delete(&100);
        assert_eq!(snap.get(&100), Some(100)); // frozen cut survives
        assert_eq!(r.check_invariants(), 999); // 1000 + 1 - 1 - 1
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn second_checkpoint_of_a_restored_map_roundtrips() {
        // checkpoint → restore → mutate → checkpoint → restore: the
        // full restart-with-state cycle, twice.
        let d = tmpdir("cycle");
        let m: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(2);
        m.insert(1, 1);
        m.checkpoint(&d).expect("first checkpoint");
        let r1: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&d).expect("first restore");
        r1.insert(2, 2);
        let report = r1.checkpoint(&d).expect("second checkpoint");
        assert_eq!(report.generation, 2);
        let r2: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&d).expect("second restore");
        assert_eq!(r2.get(&1), Some(1));
        assert_eq!(r2.get(&2), Some(2));
        assert_eq!(r2.len(), 2);
        let _ = fs::remove_dir_all(&d);
    }
}
