//! Concurrent batch linearizability stress (ISSUE 10 satellite).
//!
//! A batch writer upserts version `v` to every *designated* key (three
//! per shard) with ONE `apply_batch` per transaction. Because the
//! session applies per-shard sub-batches in ascending shard order and
//! each sub-batch executes in ascending key order, while snapshots and
//! merged ranges capture per-shard views in **descending** shard order,
//! every cross-shard cut must observe the concatenated write sequence
//! *prefix-closed*: versions listed along (shard asc, key asc) are
//! monotone non-increasing. A torn intra-bucket prefix (a later key of
//! a bucket ahead of an earlier one) or a torn cross-shard view both
//! violate monotonicity and fail the assertion — the same
//! version-monotone checker as `tests/sharded.rs`, extended to
//! multi-key buckets.
//!
//! Singleton writers churn disjoint noise keys concurrently, so batches
//! race both singleton updates and snapshot cuts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pnb_shard::{BatchOp, ShardedPnbBst};

/// Designated keys per shard (one multi-key bucket per shard).
const KEYS_PER_SHARD: usize = 3;

fn scaled(n: u64) -> u64 {
    let scale = std::env::var("PNBBST_TEST_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    n * scale
}

/// `KEYS_PER_SHARD` designated keys per shard, flattened in (shard asc,
/// key asc) order — the exact order the batch writer's writes land in.
fn designated_keys(map: &ShardedPnbBst<u64, u64>) -> Vec<u64> {
    let n = map.shard_count();
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut found = 0;
    for block in 0..1_000_000u64 {
        let k = block * 4_096; // default partitioner: 4096-key blocks
        let s = map.shard_of(&k);
        if per_shard[s].len() < KEYS_PER_SHARD {
            per_shard[s].push(k);
            found += 1;
            if found == n * KEYS_PER_SHARD {
                break;
            }
        }
    }
    for (s, keys) in per_shard.iter_mut().enumerate() {
        assert_eq!(keys.len(), KEYS_PER_SHARD, "shard {s} unreachable");
        keys.sort_unstable();
    }
    per_shard.into_iter().flatten().collect()
}

fn batch_cut_consistency_at(shards: usize) {
    let map: Arc<ShardedPnbBst<u64, u64>> = Arc::new(ShardedPnbBst::new(shards));
    let keys = designated_keys(&map);
    // Transaction 0: all designated keys present at version 0.
    {
        let s = map.pin();
        for &k in &keys {
            s.upsert(k, 0);
        }
    }

    let txns = scaled(1_500);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Batch writer: one apply_batch per transaction, every
        // designated key to version v. Submission order is deliberately
        // reversed — the sorting contract, not the caller, must produce
        // the (shard asc, key asc) application order.
        let writer = {
            let map = Arc::clone(&map);
            let keys = keys.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut session = map.pin();
                for v in 1..=txns {
                    let ops: Vec<BatchOp<u64, u64>> =
                        keys.iter().rev().map(|&k| BatchOp::Upsert(k, v)).collect();
                    let acked = session.apply_batch(&ops).len();
                    assert_eq!(acked, keys.len());
                    if v.is_multiple_of(64) {
                        session.refresh();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };

        // Singleton noise writer: churns keys disjoint from the
        // designated set (offset inside each block) so batches race
        // plain point updates on every shard.
        let noise = {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut session = map.pin();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = (i % 64) * 4_096 + 17;
                    session.upsert(k, i);
                    if i.is_multiple_of(3) {
                        session.delete(&k);
                    }
                    if i.is_multiple_of(128) {
                        session.refresh();
                    }
                    i += 1;
                }
            })
        };

        // Readers: alternate snapshot cuts and merged ranges; the
        // version vector along (shard asc, key asc) must be monotone
        // non-increasing — intra-bucket tears and cross-shard tears
        // both break monotonicity.
        let readers: Vec<_> = (0..2u64)
            .map(|r| {
                let map = Arc::clone(&map);
                let keys = keys.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut session = map.pin();
                    let mut rounds = 0u64;
                    let mut observed = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let versions: Vec<u64> = if (rounds + r).is_multiple_of(2) {
                            let snap = session.snapshot();
                            keys.iter()
                                .map(|k| snap.get(k).expect("designated keys never vanish"))
                                .collect()
                        } else {
                            let mut by_key: BTreeMap<u64, u64> = session.range(..).collect();
                            keys.iter()
                                .map(|k| by_key.remove(k).expect("designated keys never vanish"))
                                .collect()
                        };
                        for w in versions.windows(2) {
                            assert!(
                                w[0] >= w[1],
                                "torn batch observation: versions {versions:?} \
                                 (a later write of the batch visible before an earlier one)"
                            );
                        }
                        observed = observed.max(versions[0]);
                        rounds += 1;
                        session.refresh();
                        if done {
                            break;
                        }
                    }
                    (rounds, observed)
                })
            })
            .collect();

        writer.join().unwrap();
        noise.join().unwrap();
        let mut total_rounds = 0u64;
        for h in readers {
            let (rounds, observed) = h.join().unwrap();
            total_rounds += rounds;
            assert!(observed <= txns);
        }
        assert!(total_rounds > 0, "readers never completed a round");
    });

    // Quiescent: the last transaction is fully visible.
    let s = map.pin();
    let finals = s.multi_get(&keys);
    assert!(finals.iter().all(|v| *v == Some(txns)), "{finals:?}");
}

#[test]
fn batch_cut_consistency_2_shards() {
    batch_cut_consistency_at(2);
}

#[test]
fn batch_cut_consistency_8_shards() {
    batch_cut_consistency_at(8);
}
