//! Batch-vs-singleton oracle battery (ISSUE 10 tentpole proof).
//!
//! One random operation sequence drives, simultaneously:
//!
//! * (a) singleton `ShardedSession` calls (`insert`/`upsert`/…),
//! * (b) the same ops through [`ShardedSession::apply_batch`] chopped
//!   into random chunk sizes 1–64,
//! * (c) a `BTreeMap` model,
//!
//! at 1, 2 **and** 8 shards. Per-op return values, final contents (via
//! the merged cross-shard range) and `multi_get` answers must agree
//! bit-for-bit. Duplicate keys inside one batch must resolve in batch
//! order (the stable sort contract).

use proptest::prelude::*;
use std::collections::BTreeMap;

use pnb_shard::{BatchOp, BatchOutcome, ShardedPnbBst};

/// Spread keys over many 4096-key partitioner blocks so every shard
/// count in play sees real multi-shard traffic.
const KEY_STRIDE: u64 = 5_000;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn op_strategy(key_space: u64) -> impl Strategy<Value = BatchOp<u64, u64>> {
    prop_oneof![
        3 => (0..key_space, any::<u64>())
            .prop_map(|(k, v)| BatchOp::Insert(k * KEY_STRIDE, v)),
        3 => (0..key_space, any::<u64>())
            .prop_map(|(k, v)| BatchOp::Upsert(k * KEY_STRIDE, v)),
        3 => (0..key_space).prop_map(|k| BatchOp::Delete(k * KEY_STRIDE)),
        2 => (0..key_space).prop_map(|k| BatchOp::Get(k * KEY_STRIDE)),
    ]
}

/// The model's answer for one op, applied to the model.
fn model_apply(model: &mut BTreeMap<u64, u64>, op: &BatchOp<u64, u64>) -> BatchOutcome<u64> {
    match op {
        BatchOp::Get(k) => BatchOutcome::Get(model.get(k).copied()),
        BatchOp::Insert(k, v) => {
            let absent = !model.contains_key(k);
            if absent {
                model.insert(*k, *v);
            }
            BatchOutcome::Inserted(absent)
        }
        BatchOp::Upsert(k, v) => BatchOutcome::Upserted(model.insert(*k, *v)),
        BatchOp::Delete(k) => BatchOutcome::Removed(model.remove(k)),
    }
}

/// One op through the singleton session API, normalized to the batch
/// outcome type so the comparison is bit-for-bit.
fn singleton_apply(
    s: &pnb_shard::ShardedSession<'_, u64, u64>,
    op: &BatchOp<u64, u64>,
) -> BatchOutcome<u64> {
    match op {
        BatchOp::Get(k) => BatchOutcome::Get(s.get(k)),
        BatchOp::Insert(k, v) => BatchOutcome::Inserted(s.insert(*k, *v)),
        BatchOp::Upsert(k, v) => BatchOutcome::Upserted(s.upsert(*k, *v)),
        BatchOp::Delete(k) => BatchOutcome::Removed(s.remove(k)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batches_match_singletons_and_btreemap_at_1_2_and_8_shards(
        ops in prop::collection::vec(op_strategy(64), 1..300),
        chunks in prop::collection::vec(1usize..=64, 1..24),
    ) {
        let singleton_maps: Vec<ShardedPnbBst<u64, u64>> =
            SHARD_COUNTS.into_iter().map(ShardedPnbBst::new).collect();
        let batch_maps: Vec<ShardedPnbBst<u64, u64>> =
            SHARD_COUNTS.into_iter().map(ShardedPnbBst::new).collect();
        let singles: Vec<_> = singleton_maps.iter().map(|m| m.pin()).collect();
        let batched: Vec<_> = batch_maps.iter().map(|m| m.pin()).collect();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        // Expected per-op outcomes from the model, and live singleton
        // replay (which must agree op-by-op).
        let mut expect: Vec<BatchOutcome<u64>> = Vec::with_capacity(ops.len());
        for op in &ops {
            let want = model_apply(&mut model, op);
            for s in &singles {
                prop_assert_eq!(singleton_apply(s, op), want.clone());
            }
            expect.push(want);
        }

        // Batched replay: the same sequence chopped into random chunk
        // sizes 1..=64 (cycled), compared outcome-for-outcome. Chunks
        // routinely contain duplicate keys, exercising the
        // batch-order-resolution contract.
        for s in &batched {
            let mut got: Vec<BatchOutcome<u64>> = Vec::with_capacity(ops.len());
            let mut cursor = 0usize;
            let mut ci = 0usize;
            while cursor < ops.len() {
                let take = chunks[ci % chunks.len()].min(ops.len() - cursor);
                ci += 1;
                got.extend(s.apply_batch(&ops[cursor..cursor + take]));
                cursor += take;
            }
            prop_assert_eq!(&got, &expect);
        }

        // Final state: merged ranges and multi_get agree with the model
        // across every map.
        let final_kv: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        let probe: Vec<u64> = (0..64u64).map(|k| k * KEY_STRIDE).collect();
        let want_probe: Vec<Option<u64>> =
            probe.iter().map(|k| model.get(k).copied()).collect();
        for s in singles.iter().chain(&batched) {
            let contents: Vec<(u64, u64)> = s.range(..).collect();
            prop_assert_eq!(&contents, &final_kv);
            prop_assert_eq!(&s.multi_get(&probe), &want_probe);
        }
        drop(singles);
        drop(batched);
        for m in singleton_maps.iter().chain(&batch_maps) {
            prop_assert_eq!(m.check_invariants(), model.len());
        }
    }

    #[test]
    fn duplicate_keys_in_one_batch_resolve_in_batch_order(
        key in 0..8u64,
        vals in prop::collection::vec(any::<u64>(), 2..32),
    ) {
        // All ops hit ONE key inside one batch: upsert chain semantics
        // must replay the submission order exactly, not the sorted or
        // arrival-racing order.
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(8);
        let s = map.pin();
        let ops: Vec<BatchOp<u64, u64>> = vals
            .iter()
            .map(|&v| BatchOp::Upsert(key * KEY_STRIDE, v))
            .collect();
        let got = s.apply_batch(&ops);
        let mut want = vec![BatchOutcome::Upserted(None)];
        want.extend(
            vals[..vals.len() - 1]
                .iter()
                .map(|&v| BatchOutcome::Upserted(Some(v))),
        );
        prop_assert_eq!(got, want);
        prop_assert_eq!(s.get(&(key * KEY_STRIDE)), vals.last().copied());
    }
}
