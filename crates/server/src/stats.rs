//! Server-level counters: always-on, served by the Stats opcode.
//!
//! Unlike the structure-level counters (feature-gated `stats` in
//! `pnb-bst`/`pnb-shard`, compiled out of measurement builds), these
//! count *server* events — connections, requests, protocol errors —
//! which the socket already makes far more expensive than one relaxed
//! `fetch_add`, so they are unconditionally compiled in and CI can
//! always health-check a running server.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared server counters (one instance per server, updated by every
/// worker with `Relaxed` ordering — totals, not synchronization).
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    shed: AtomicU64,
    slow_reader_disconnects: AtomicU64,
    peak_conn_pending_bytes: AtomicU64,
}

/// A point-in-time read of [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed (either side, including error closes).
    pub closed: u64,
    /// Well-formed requests served.
    pub requests: u64,
    /// Malformed frames answered with a typed error frame.
    pub protocol_errors: u64,
    /// Requests shed with a typed `Busy` frame by admission control
    /// (each one was answered, never silently dropped, and never
    /// executed).
    pub shed: u64,
    /// Connections dropped by the slow-reader policy: pending-write
    /// buffer over its cap for longer than the stall window.
    pub slow_reader_disconnects: u64,
    /// High-water mark of any single connection's pending-write buffer,
    /// bytes. Bounded by the per-connection write cap plus one maximal
    /// response — the overload tests assert exactly that.
    pub peak_conn_pending_bytes: u64,
}

impl ServerStats {
    /// Count an accepted connection.
    pub fn accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a closed connection.
    pub fn closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a served (well-formed) request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a protocol error answered with an error frame.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request shed with a typed `Busy` frame.
    pub fn shed(&self) {
        self.shed_n(1);
    }

    /// Count `n` shed operations at once. Shed accounting is
    /// *op-granular*: a refused `Batch` frame counts every contained
    /// sub-operation, so `requests_ok + shed` tallies operations the
    /// client submitted regardless of how they were framed.
    pub fn shed_n(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Count a connection dropped by the slow-reader policy.
    pub fn slow_reader_disconnect(&self) {
        self.slow_reader_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection's current pending-write depth; keeps the
    /// high-water mark.
    pub fn note_conn_pending(&self, bytes: u64) {
        self.peak_conn_pending_bytes
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Read every counter.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            slow_reader_disconnects: self.slow_reader_disconnects.load(Ordering::Relaxed),
            peak_conn_pending_bytes: self.peak_conn_pending_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let s = ServerStats::default();
        assert_eq!(s.snapshot(), ServerStatsSnapshot::default());
        s.accepted();
        s.accepted();
        s.request();
        s.protocol_error();
        s.closed();
        s.shed();
        s.slow_reader_disconnect();
        s.note_conn_pending(100);
        s.note_conn_pending(40); // high-water mark keeps the max
        let snap = s.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.slow_reader_disconnects, 1);
        assert_eq!(snap.peak_conn_pending_bytes, 100);
    }
}
