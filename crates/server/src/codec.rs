//! Encoding and incremental decoding of protocol frames.
//!
//! Split in two layers so the connection loop can be byte-stream
//! agnostic:
//!
//! * [`FrameBuf`] — an incremental reassembly buffer: feed it whatever
//!   the socket produced, pull complete [`Frame`]s out. Framing errors
//!   (bad magic, oversized length) surface here, *before* any payload
//!   is buffered, so a hostile length field cannot balloon memory.
//! * [`decode_request`] / [`decode_response`] — map a raw frame to the
//!   typed [`Request`]/[`Response`], validating version, opcode and
//!   payload shape.
//!
//! Every decode failure is a [`DecodeError`] carrying the
//! [`StatusCode`] to answer with and, when the header was readable, the
//! request id to echo — the connection layer turns it into a typed
//! error frame and (for framing errors) closes that one connection.

use crate::proto::{
    flags, BatchSubOp, BatchSubResult, Opcode, ReqBody, Request, RespBody, Response,
    ServerStatsWire, StatusCode, HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION,
};

/// A reassembled raw frame: header fields plus the payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Version byte (validated by the decode layer, not here).
    pub version: u8,
    /// Opcode byte (ditto).
    pub opcode: u8,
    /// Status byte (0 in requests).
    pub status: u8,
    /// Flag bits.
    pub flags: u8,
    /// Correlation id.
    pub id: u64,
    /// Payload bytes (`len <= max_payload`, enforced before buffering).
    pub payload: Vec<u8>,
}

/// A decode failure: the status to answer with, the id to echo (when
/// the header was readable), and a diagnostic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Request id to echo; `None` when the header itself was garbage
    /// (bad magic), in which case the error frame carries id 0 and the
    /// connection is closed.
    pub id: Option<u64>,
    /// The status code for the error frame.
    pub code: StatusCode,
    /// Human-readable diagnostic (the error frame's payload).
    pub msg: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.msg)
    }
}

impl std::error::Error for DecodeError {}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// `feed` appends bytes; `next_frame` yields complete frames (or a
/// framing [`DecodeError`] that poisons the stream — after an error the
/// caller must discard the connection, since resynchronizing an
/// unframed byte stream is guesswork).
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix; compacted periodically instead of per-frame.
    start: usize,
    max_payload: usize,
}

impl FrameBuf {
    /// A buffer enforcing the protocol-wide [`MAX_PAYLOAD`].
    pub fn new() -> Self {
        Self::with_max_payload(MAX_PAYLOAD)
    }

    /// A buffer with a custom payload ceiling (servers may configure a
    /// tighter one).
    pub fn with_max_payload(max_payload: usize) -> Self {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            max_payload,
        }
    }

    /// Append bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, so long-lived
        // connections don't grow the buffer without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// How many *complete* frames are currently buffered (without
    /// consuming them). The server's admission control uses this as its
    /// per-connection in-flight count: every frame counted here has
    /// been received in full and awaits service. Counting stops at the
    /// first malformed or oversized header — those bytes surface as a
    /// [`DecodeError`] when [`next_frame`](Self::next_frame) reaches
    /// them.
    pub fn complete_frames(&self) -> usize {
        let mut avail = &self.buf[self.start..];
        let mut n = 0;
        while avail.len() >= HEADER_LEN && avail[..4] == MAGIC {
            let len = u32::from_le_bytes(avail[16..20].try_into().expect("4 bytes")) as usize;
            if len > self.max_payload || avail.len() < HEADER_LEN + len {
                break;
            }
            n += 1;
            avail = &avail[HEADER_LEN + len..];
        }
        n
    }

    /// Pull the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "need more bytes". `Err` means the stream is
    /// unframeable (bad magic) or hostile (oversized length) — the
    /// caller answers with the error and drops the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        let avail = &self.buf[self.start..];
        // Magic is checked as soon as any of it has arrived: a stream
        // that is not speaking this protocol gets refused immediately
        // instead of being waited on for a full header that will never
        // come.
        let probe = avail.len().min(4);
        if avail[..probe] != MAGIC[..probe] {
            return Err(DecodeError {
                id: None,
                code: StatusCode::BadMagic,
                msg: format!("expected magic {MAGIC:?}, got {:?}", &avail[..probe]),
            });
        }
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let id = u64::from_le_bytes(avail[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(avail[16..20].try_into().expect("4 bytes")) as usize;
        if len > self.max_payload {
            return Err(DecodeError {
                id: Some(id),
                code: StatusCode::Oversized,
                msg: format!("payload length {len} exceeds cap {}", self.max_payload),
            });
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let frame = Frame {
            version: avail[4],
            opcode: avail[5],
            status: avail[6],
            flags: avail[7],
            id,
            payload: avail[HEADER_LEN..HEADER_LEN + len].to_vec(),
        };
        self.start += HEADER_LEN + len;
        Ok(Some(frame))
    }
}

impl Default for FrameBuf {
    fn default() -> Self {
        Self::new()
    }
}

fn put_header(out: &mut Vec<u8>, opcode: u8, status: u8, fl: u8, id: u64, payload_len: usize) {
    debug_assert!(payload_len <= u32::MAX as usize);
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(opcode);
    out.push(status);
    out.push(fl);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Encode a request into a ready-to-send frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let mut fl = 0u8;
    match &req.body {
        ReqBody::Ping | ReqBody::Stats | ReqBody::Checkpoint => {}
        ReqBody::Get { key } | ReqBody::Contains { key } | ReqBody::Delete { key } => {
            payload.extend_from_slice(&key.to_le_bytes());
        }
        ReqBody::Insert { key, value } | ReqBody::Upsert { key, value } => {
            payload.extend_from_slice(&key.to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
        }
        ReqBody::Range { lo, hi, count_only } | ReqBody::SnapshotScan { lo, hi, count_only } => {
            payload.extend_from_slice(&lo.to_le_bytes());
            payload.extend_from_slice(&hi.to_le_bytes());
            if *count_only {
                fl |= flags::COUNT_ONLY;
            }
        }
        ReqBody::Batch { ops } => {
            payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                let (sub, body) = encode_batch_sub_op(op);
                payload.push(sub);
                payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
                payload.extend_from_slice(&body);
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_header(
        &mut out,
        req.body.opcode() as u8,
        StatusCode::Ok as u8,
        fl,
        req.id,
        payload.len(),
    );
    out.extend_from_slice(&payload);
    out
}

/// Serialize one batch sub-operation: its sub-opcode byte plus body.
/// [`BatchSubOp::Malformed`] serializes under the reserved sub-opcode
/// `0xFF` (the decoder flags it malformed again) — it exists so a
/// captured batch can be re-sent for diagnostics, not to roundtrip.
fn encode_batch_sub_op(op: &BatchSubOp) -> (u8, Vec<u8>) {
    match op {
        BatchSubOp::Get { key } => (Opcode::Get as u8, key.to_le_bytes().to_vec()),
        BatchSubOp::Contains { key } => (Opcode::Contains as u8, key.to_le_bytes().to_vec()),
        BatchSubOp::Delete { key } => (Opcode::Delete as u8, key.to_le_bytes().to_vec()),
        BatchSubOp::Insert { key, value } | BatchSubOp::Upsert { key, value } => {
            let mut body = Vec::with_capacity(16);
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&value.to_le_bytes());
            let sub = if matches!(op, BatchSubOp::Insert { .. }) {
                Opcode::Insert
            } else {
                Opcode::Upsert
            };
            (sub as u8, body)
        }
        BatchSubOp::Malformed { msg, .. } => (0xFF, msg.as_bytes().to_vec()),
    }
}

/// Type one batch sub-frame. Sub-op failures never fail the whole
/// batch: an unknown sub-opcode, a non-point sub-opcode, or a body of
/// the wrong shape decodes to [`BatchSubOp::Malformed`], which the
/// handler answers with a per-slot error while its siblings execute.
/// (Structural failures of the *outer* payload — counts and lengths
/// that disagree — are whole-frame [`StatusCode::BadPayload`] instead,
/// handled by the caller: there is no trustworthy slot to pin them on.)
fn decode_batch_sub_op(sub: u8, body: &[u8]) -> BatchSubOp {
    let malformed = |code: StatusCode, msg: String| BatchSubOp::Malformed { code, msg };
    match Opcode::from_u8(sub) {
        Some(op @ (Opcode::Get | Opcode::Contains | Opcode::Delete)) => {
            if body.len() != 8 {
                return malformed(
                    StatusCode::BadPayload,
                    format!(
                        "sub-op {sub:#04x}: expected 8-byte key, got {} bytes",
                        body.len()
                    ),
                );
            }
            let key = u64_at(body, 0);
            match op {
                Opcode::Get => BatchSubOp::Get { key },
                Opcode::Contains => BatchSubOp::Contains { key },
                _ => BatchSubOp::Delete { key },
            }
        }
        Some(op @ (Opcode::Insert | Opcode::Upsert)) => {
            if body.len() != 16 {
                return malformed(
                    StatusCode::BadPayload,
                    format!(
                        "sub-op {sub:#04x}: expected 16-byte key+value, got {} bytes",
                        body.len()
                    ),
                );
            }
            let (key, value) = (u64_at(body, 0), u64_at(body, 1));
            if op == Opcode::Insert {
                BatchSubOp::Insert { key, value }
            } else {
                BatchSubOp::Upsert { key, value }
            }
        }
        Some(op) => malformed(
            StatusCode::BadOpcode,
            format!("opcode {op:?} ({sub:#04x}) is not batchable"),
        ),
        None => malformed(
            StatusCode::BadOpcode,
            format!("unknown sub-opcode {sub:#04x}"),
        ),
    }
}

/// Encode a response frame. `opcode` echoes the request's opcode so the
/// client can parse the body shape (error frames conventionally echo
/// it too; for unparseable requests use `Opcode::Ping`).
pub fn encode_response(opcode: Opcode, resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    let mut status = StatusCode::Ok;
    let mut fl = 0u8;
    match &resp.body {
        RespBody::Pong => {}
        RespBody::Value(v) | RespBody::Displaced(v) => {
            payload.push(u8::from(v.is_some()));
            payload.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
        }
        RespBody::Bool(b) => payload.push(u8::from(*b)),
        RespBody::Entries {
            count,
            entries,
            truncated,
        } => {
            payload.extend_from_slice(&count.to_le_bytes());
            for (k, v) in entries {
                payload.extend_from_slice(&k.to_le_bytes());
                payload.extend_from_slice(&v.to_le_bytes());
            }
            if *truncated {
                fl |= flags::TRUNCATED;
            }
        }
        RespBody::CheckpointDone {
            generation,
            entries,
        } => {
            payload.extend_from_slice(&generation.to_le_bytes());
            payload.extend_from_slice(&entries.to_le_bytes());
        }
        RespBody::Stats(s) => {
            payload.extend_from_slice(&s.accepted.to_le_bytes());
            payload.extend_from_slice(&s.closed.to_le_bytes());
            payload.extend_from_slice(&s.requests.to_le_bytes());
            payload.extend_from_slice(&s.protocol_errors.to_le_bytes());
            payload.extend_from_slice(&s.shed.to_le_bytes());
            payload.extend_from_slice(&s.slow_reader_disconnects.to_le_bytes());
            payload.extend_from_slice(&(s.shard_ops.len() as u64).to_le_bytes());
            for ops in &s.shard_ops {
                payload.extend_from_slice(&ops.to_le_bytes());
            }
        }
        RespBody::BatchResults(results) => {
            payload.extend_from_slice(&(results.len() as u32).to_le_bytes());
            for r in results {
                // Sub-opcode byte discriminates the Ok body shapes:
                // Value travels as Get, Bool as Contains (Insert and
                // Delete results are the same 1-byte bool), Displaced
                // as Upsert. Error slots carry status + message and
                // ignore the sub-opcode byte on decode.
                let (sub, st, body): (u8, u8, Vec<u8>) = match r {
                    BatchSubResult::Value(v) | BatchSubResult::Displaced(v) => {
                        let mut b = Vec::with_capacity(9);
                        b.push(u8::from(v.is_some()));
                        b.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
                        let sub = if matches!(r, BatchSubResult::Value(_)) {
                            Opcode::Get
                        } else {
                            Opcode::Upsert
                        };
                        (sub as u8, StatusCode::Ok as u8, b)
                    }
                    BatchSubResult::Bool(x) => (
                        Opcode::Contains as u8,
                        StatusCode::Ok as u8,
                        vec![u8::from(*x)],
                    ),
                    BatchSubResult::Error(code, msg) => (0, *code as u8, msg.as_bytes().to_vec()),
                };
                payload.push(sub);
                payload.push(st);
                payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
                payload.extend_from_slice(&body);
            }
        }
        RespBody::Busy { retry_after_ms } => {
            status = StatusCode::Busy;
            payload.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        RespBody::Error(code, msg) => {
            status = *code;
            payload.extend_from_slice(msg.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_header(
        &mut out,
        opcode as u8,
        status as u8,
        fl,
        resp.id,
        payload.len(),
    );
    out.extend_from_slice(&payload);
    out
}

/// Encode the error frame for a [`DecodeError`] (id 0 when the header
/// was unreadable).
pub fn encode_decode_error(err: &DecodeError) -> Vec<u8> {
    encode_response(
        Opcode::Ping,
        &Response {
            id: err.id.unwrap_or(0),
            body: RespBody::Error(err.code, err.msg.clone()),
        },
    )
}

fn bad_payload(id: u64, want: &str, got: usize) -> DecodeError {
    DecodeError {
        id: Some(id),
        code: StatusCode::BadPayload,
        msg: format!("expected {want}, got {got} bytes"),
    }
}

fn u64_at(payload: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(payload[idx * 8..idx * 8 + 8].try_into().expect("8 bytes"))
}

/// Validate and type a raw frame as a request (server side).
pub fn decode_request(frame: &Frame) -> Result<Request, DecodeError> {
    let id = frame.id;
    if frame.version != PROTOCOL_VERSION {
        return Err(DecodeError {
            id: Some(id),
            code: StatusCode::BadVersion,
            msg: format!(
                "protocol version {} not supported (this server speaks {PROTOCOL_VERSION})",
                frame.version
            ),
        });
    }
    let opcode = Opcode::from_u8(frame.opcode).ok_or_else(|| DecodeError {
        id: Some(id),
        code: StatusCode::BadOpcode,
        msg: format!("unknown opcode {:#04x}", frame.opcode),
    })?;
    let p = &frame.payload;
    let count_only = frame.flags & flags::COUNT_ONLY != 0;
    let body = match opcode {
        Opcode::Ping | Opcode::Stats | Opcode::Checkpoint => {
            if !p.is_empty() {
                return Err(bad_payload(id, "empty payload", p.len()));
            }
            match opcode {
                Opcode::Ping => ReqBody::Ping,
                Opcode::Stats => ReqBody::Stats,
                _ => ReqBody::Checkpoint,
            }
        }
        Opcode::Get | Opcode::Contains | Opcode::Delete => {
            if p.len() != 8 {
                return Err(bad_payload(id, "8-byte key", p.len()));
            }
            let key = u64_at(p, 0);
            match opcode {
                Opcode::Get => ReqBody::Get { key },
                Opcode::Contains => ReqBody::Contains { key },
                _ => ReqBody::Delete { key },
            }
        }
        Opcode::Insert | Opcode::Upsert => {
            if p.len() != 16 {
                return Err(bad_payload(id, "16-byte key+value", p.len()));
            }
            let (key, value) = (u64_at(p, 0), u64_at(p, 1));
            if opcode == Opcode::Insert {
                ReqBody::Insert { key, value }
            } else {
                ReqBody::Upsert { key, value }
            }
        }
        Opcode::Range | Opcode::SnapshotScan => {
            if p.len() != 16 {
                return Err(bad_payload(id, "16-byte lo+hi", p.len()));
            }
            let (lo, hi) = (u64_at(p, 0), u64_at(p, 1));
            if opcode == Opcode::Range {
                ReqBody::Range { lo, hi, count_only }
            } else {
                ReqBody::SnapshotScan { lo, hi, count_only }
            }
        }
        Opcode::Batch => {
            // Outer structure (count, per-sub-op length prefixes) must
            // be internally consistent or the whole frame is refused —
            // a lying length prefix leaves no trustworthy slot to pin
            // the error on. *Within* a consistent structure, each
            // sub-op parses independently: failures become
            // `BatchSubOp::Malformed` and do not poison siblings.
            if p.len() < 4 {
                return Err(bad_payload(id, "4-byte batch sub-op count", p.len()));
            }
            let count = u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")) as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            let mut at = 4;
            for i in 0..count {
                if p.len() - at < 5 {
                    return Err(DecodeError {
                        id: Some(id),
                        code: StatusCode::BadPayload,
                        msg: format!("batch sub-op {i} header overruns the payload"),
                    });
                }
                let sub = p[at];
                let len =
                    u32::from_le_bytes(p[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
                at += 5;
                if p.len() - at < len {
                    return Err(DecodeError {
                        id: Some(id),
                        code: StatusCode::BadPayload,
                        msg: format!("batch sub-op {i} body ({len} bytes) overruns the payload"),
                    });
                }
                ops.push(decode_batch_sub_op(sub, &p[at..at + len]));
                at += len;
            }
            if at != p.len() {
                return Err(bad_payload(
                    id,
                    "no trailing bytes after batch sub-ops",
                    p.len(),
                ));
            }
            ReqBody::Batch { ops }
        }
    };
    Ok(Request { id, body })
}

/// Validate and type a raw frame as a response (client side). The
/// body shape is keyed by the echoed opcode; error statuses decode to
/// [`RespBody::Error`].
pub fn decode_response(frame: &Frame) -> Result<Response, DecodeError> {
    let id = frame.id;
    let status = StatusCode::from_u8(frame.status).ok_or_else(|| DecodeError {
        id: Some(id),
        code: StatusCode::BadPayload,
        msg: format!("unknown status byte {}", frame.status),
    })?;
    if status == StatusCode::Busy {
        if frame.payload.len() != 8 {
            return Err(bad_payload(
                id,
                "8-byte retry-after hint",
                frame.payload.len(),
            ));
        }
        return Ok(Response {
            id,
            body: RespBody::Busy {
                retry_after_ms: u64_at(&frame.payload, 0),
            },
        });
    }
    if status != StatusCode::Ok {
        let msg = String::from_utf8_lossy(&frame.payload).into_owned();
        return Ok(Response {
            id,
            body: RespBody::Error(status, msg),
        });
    }
    let opcode = Opcode::from_u8(frame.opcode).ok_or_else(|| DecodeError {
        id: Some(id),
        code: StatusCode::BadOpcode,
        msg: format!("unknown opcode {:#04x} in response", frame.opcode),
    })?;
    let p = &frame.payload;
    let body = match opcode {
        Opcode::Ping => {
            if !p.is_empty() {
                return Err(bad_payload(id, "empty pong", p.len()));
            }
            RespBody::Pong
        }
        Opcode::Get | Opcode::Upsert => {
            if p.len() != 9 {
                return Err(bad_payload(id, "present-byte + 8-byte value", p.len()));
            }
            let v = (p[0] != 0).then(|| u64::from_le_bytes(p[1..9].try_into().expect("8 bytes")));
            if opcode == Opcode::Get {
                RespBody::Value(v)
            } else {
                RespBody::Displaced(v)
            }
        }
        Opcode::Contains | Opcode::Insert | Opcode::Delete => {
            if p.len() != 1 {
                return Err(bad_payload(id, "1-byte bool", p.len()));
            }
            RespBody::Bool(p[0] != 0)
        }
        Opcode::Range | Opcode::SnapshotScan => {
            if p.len() < 8 || !(p.len() - 8).is_multiple_of(16) {
                return Err(bad_payload(id, "count + (k,v) pairs", p.len()));
            }
            let count = u64_at(p, 0);
            let entries = p[8..]
                .chunks_exact(16)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[0..8].try_into().expect("8 bytes")),
                        u64::from_le_bytes(c[8..16].try_into().expect("8 bytes")),
                    )
                })
                .collect();
            RespBody::Entries {
                count,
                entries,
                truncated: frame.flags & flags::TRUNCATED != 0,
            }
        }
        Opcode::Checkpoint => {
            if p.len() != 16 {
                return Err(bad_payload(id, "16-byte generation+entries", p.len()));
            }
            RespBody::CheckpointDone {
                generation: u64_at(p, 0),
                entries: u64_at(p, 1),
            }
        }
        Opcode::Stats => {
            if p.len() < 56 {
                return Err(bad_payload(id, ">=56-byte stats block", p.len()));
            }
            let shards = u64_at(p, 6) as usize;
            if p.len() != 56 + shards * 8 {
                return Err(bad_payload(id, "stats block with shard totals", p.len()));
            }
            RespBody::Stats(ServerStatsWire {
                accepted: u64_at(p, 0),
                closed: u64_at(p, 1),
                requests: u64_at(p, 2),
                protocol_errors: u64_at(p, 3),
                shed: u64_at(p, 4),
                slow_reader_disconnects: u64_at(p, 5),
                shard_ops: (0..shards).map(|i| u64_at(p, 7 + i)).collect(),
            })
        }
        Opcode::Batch => {
            if p.len() < 4 {
                return Err(bad_payload(id, "4-byte batch result count", p.len()));
            }
            let count = u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")) as usize;
            let mut results = Vec::with_capacity(count.min(1024));
            let mut at = 4;
            for i in 0..count {
                if p.len() - at < 6 {
                    return Err(DecodeError {
                        id: Some(id),
                        code: StatusCode::BadPayload,
                        msg: format!("batch result {i} header overruns the payload"),
                    });
                }
                let sub = p[at];
                let st = p[at + 1];
                let len =
                    u32::from_le_bytes(p[at + 2..at + 6].try_into().expect("4 bytes")) as usize;
                at += 6;
                if p.len() - at < len {
                    return Err(DecodeError {
                        id: Some(id),
                        code: StatusCode::BadPayload,
                        msg: format!("batch result {i} body ({len} bytes) overruns the payload"),
                    });
                }
                let body = &p[at..at + len];
                at += len;
                let status = StatusCode::from_u8(st).ok_or_else(|| DecodeError {
                    id: Some(id),
                    code: StatusCode::BadPayload,
                    msg: format!("batch result {i}: unknown status byte {st}"),
                })?;
                let r = if status != StatusCode::Ok {
                    BatchSubResult::Error(status, String::from_utf8_lossy(body).into_owned())
                } else {
                    match Opcode::from_u8(sub) {
                        Some(Opcode::Get) | Some(Opcode::Upsert) => {
                            if body.len() != 9 {
                                return Err(bad_payload(
                                    id,
                                    "present-byte + 8-byte value in batch result",
                                    body.len(),
                                ));
                            }
                            let v = (body[0] != 0).then(|| {
                                u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"))
                            });
                            if sub == Opcode::Get as u8 {
                                BatchSubResult::Value(v)
                            } else {
                                BatchSubResult::Displaced(v)
                            }
                        }
                        Some(Opcode::Contains) => {
                            if body.len() != 1 {
                                return Err(bad_payload(
                                    id,
                                    "1-byte bool in batch result",
                                    body.len(),
                                ));
                            }
                            BatchSubResult::Bool(body[0] != 0)
                        }
                        _ => {
                            return Err(DecodeError {
                                id: Some(id),
                                code: StatusCode::BadPayload,
                                msg: format!("batch result {i}: unexpected sub-opcode {sub:#04x}"),
                            })
                        }
                    }
                };
                results.push(r);
            }
            if at != p.len() {
                return Err(bad_payload(
                    id,
                    "no trailing bytes after batch results",
                    p.len(),
                ));
            }
            RespBody::BatchResults(results)
        }
    };
    Ok(Response { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(body: ReqBody) {
        let req = Request { id: 42, body };
        let bytes = encode_request(&req);
        let mut fb = FrameBuf::new();
        fb.feed(&bytes);
        let frame = fb.next_frame().unwrap().expect("complete frame");
        assert_eq!(decode_request(&frame).unwrap(), req);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(ReqBody::Ping);
        roundtrip_req(ReqBody::Get { key: 7 });
        roundtrip_req(ReqBody::Contains { key: u64::MAX });
        roundtrip_req(ReqBody::Insert { key: 1, value: 2 });
        roundtrip_req(ReqBody::Upsert { key: 3, value: 4 });
        roundtrip_req(ReqBody::Delete { key: 0 });
        roundtrip_req(ReqBody::Range {
            lo: 5,
            hi: 10,
            count_only: true,
        });
        roundtrip_req(ReqBody::SnapshotScan {
            lo: 0,
            hi: u64::MAX,
            count_only: false,
        });
        roundtrip_req(ReqBody::Stats);
        roundtrip_req(ReqBody::Checkpoint);
    }

    fn roundtrip_resp(opcode: Opcode, body: RespBody) {
        let resp = Response { id: 9, body };
        let bytes = encode_response(opcode, &resp);
        let mut fb = FrameBuf::new();
        fb.feed(&bytes);
        let frame = fb.next_frame().unwrap().expect("complete frame");
        assert_eq!(decode_response(&frame).unwrap(), resp);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Opcode::Ping, RespBody::Pong);
        roundtrip_resp(Opcode::Get, RespBody::Value(Some(11)));
        roundtrip_resp(Opcode::Get, RespBody::Value(None));
        roundtrip_resp(Opcode::Contains, RespBody::Bool(true));
        roundtrip_resp(Opcode::Insert, RespBody::Bool(false));
        roundtrip_resp(Opcode::Upsert, RespBody::Displaced(Some(0)));
        roundtrip_resp(
            Opcode::Range,
            RespBody::Entries {
                count: 3,
                entries: vec![(1, 10), (2, 20), (3, 30)],
                truncated: false,
            },
        );
        roundtrip_resp(
            Opcode::SnapshotScan,
            RespBody::Entries {
                count: 100,
                entries: vec![],
                truncated: true,
            },
        );
        roundtrip_resp(
            Opcode::Stats,
            RespBody::Stats(ServerStatsWire {
                accepted: 1,
                closed: 2,
                requests: 3,
                protocol_errors: 4,
                shed: 9,
                slow_reader_disconnects: 10,
                shard_ops: vec![5, 6, 7, 8],
            }),
        );
        roundtrip_resp(Opcode::Get, RespBody::Busy { retry_after_ms: 7 });
        roundtrip_resp(
            Opcode::Checkpoint,
            RespBody::CheckpointDone {
                generation: 3,
                entries: 12_345,
            },
        );
        roundtrip_resp(
            Opcode::Ping,
            RespBody::Error(StatusCode::Shutdown, "draining".into()),
        );
    }

    #[test]
    fn frames_reassemble_from_arbitrary_splits() {
        let a = encode_request(&Request {
            id: 1,
            body: ReqBody::Insert { key: 10, value: 20 },
        });
        let b = encode_request(&Request {
            id: 2,
            body: ReqBody::Range {
                lo: 0,
                hi: 100,
                count_only: false,
            },
        });
        let stream: Vec<u8> = a.iter().chain(&b).copied().collect();
        for split in 0..stream.len() {
            let mut fb = FrameBuf::new();
            fb.feed(&stream[..split]);
            let mut frames = Vec::new();
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
            fb.feed(&stream[split..]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
            assert_eq!(frames.len(), 2, "split at {split}");
            assert_eq!(frames[0].id, 1);
            assert_eq!(frames[1].id, 2);
        }
    }

    #[test]
    fn bad_magic_is_unframeable() {
        let mut fb = FrameBuf::new();
        fb.feed(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.code, StatusCode::BadMagic);
        assert_eq!(err.id, None);
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut req = encode_request(&Request {
            id: 77,
            body: ReqBody::Ping,
        });
        // Forge a huge payload length; send only the header.
        req[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut fb = FrameBuf::new();
        fb.feed(&req);
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.code, StatusCode::Oversized);
        assert_eq!(err.id, Some(77), "id still echoed: the header was intact");
    }

    #[test]
    fn truncated_payload_is_rejected_as_bad_payload() {
        let mut bytes = encode_request(&Request {
            id: 5,
            body: ReqBody::Get { key: 1 },
        });
        // Claim 4 payload bytes and deliver 4: frames fine, decode fails.
        bytes[16..20].copy_from_slice(&4u32.to_le_bytes());
        bytes.truncate(HEADER_LEN + 4);
        let mut fb = FrameBuf::new();
        fb.feed(&bytes);
        let frame = fb.next_frame().unwrap().expect("frames ok");
        let err = decode_request(&frame).unwrap_err();
        assert_eq!(err.code, StatusCode::BadPayload);
        assert_eq!(err.id, Some(5));
    }

    #[test]
    fn wrong_version_and_opcode_are_typed_errors() {
        let mut bytes = encode_request(&Request {
            id: 8,
            body: ReqBody::Ping,
        });
        bytes[4] = 9; // version
        let mut fb = FrameBuf::new();
        fb.feed(&bytes);
        let frame = fb.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_request(&frame).unwrap_err().code,
            StatusCode::BadVersion
        );

        let mut bytes = encode_request(&Request {
            id: 8,
            body: ReqBody::Ping,
        });
        bytes[5] = 0xEE; // opcode
        let mut fb = FrameBuf::new();
        fb.feed(&bytes);
        let frame = fb.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_request(&frame).unwrap_err().code,
            StatusCode::BadOpcode
        );
    }

    #[test]
    fn compaction_keeps_long_streams_bounded() {
        let mut fb = FrameBuf::new();
        let frame = encode_request(&Request {
            id: 3,
            body: ReqBody::Insert { key: 1, value: 1 },
        });
        for _ in 0..10_000 {
            fb.feed(&frame);
            assert!(fb.next_frame().unwrap().is_some());
        }
        assert_eq!(fb.pending(), 0);
        // The internal buffer must have been compacted along the way,
        // not grown to 10k frames.
        assert!(
            fb.buf.len() < 100 * frame.len(),
            "buf {} bytes",
            fb.buf.len()
        );
    }
}
