//! Request dispatch: typed request in, typed response out, against one
//! worker's long-lived [`ShardedSession`].
//!
//! The handler is deliberately transport-free (no sockets, no frames):
//! the connection layer decodes, this maps operations onto the map, and
//! the integration tests can drive it directly.

use std::path::Path;

use pnb_shard::ShardedSession;

use crate::proto::{
    BatchSubOp, BatchSubResult, ReqBody, Request, RespBody, Response, ServerStatsWire,
    MAX_RANGE_ENTRIES,
};
use crate::stats::ServerStats;

/// Execute `req` against `session`, producing the response body.
///
/// Range-shaped results are capped at [`MAX_RANGE_ENTRIES`] entries
/// (the `count` field still reports the full match count and the
/// response is flagged truncated); `count_only` requests traverse
/// without materializing entries at all.
///
/// `checkpoint_dir` is where the `Checkpoint` opcode writes its
/// generations; `None` (no `--checkpoint-dir` configured) refuses the
/// opcode with a typed error rather than inventing a location.
pub fn handle(
    req: &Request,
    session: &ShardedSession<'_, u64, u64>,
    stats: &ServerStats,
    checkpoint_dir: Option<&Path>,
) -> Response {
    let body = match &req.body {
        ReqBody::Ping => RespBody::Pong,
        ReqBody::Get { key } => RespBody::Value(session.get(key)),
        ReqBody::Contains { key } => RespBody::Bool(session.contains(key)),
        ReqBody::Insert { key, value } => RespBody::Bool(session.insert(*key, *value)),
        ReqBody::Upsert { key, value } => RespBody::Displaced(session.upsert(*key, *value)),
        ReqBody::Delete { key } => RespBody::Bool(session.delete(key)),
        ReqBody::Range { lo, hi, count_only } => scan(session.range(*lo..=*hi), *count_only),
        ReqBody::SnapshotScan { lo, hi, count_only } => {
            // One consistent cross-shard cut, then read from it: the
            // paper's wait-free snapshot, over the wire.
            let snap = session.snapshot();
            scan(snap.range(*lo..=*hi), *count_only)
        }
        ReqBody::Stats => {
            let s = stats.snapshot();
            RespBody::Stats(ServerStatsWire {
                accepted: s.accepted,
                closed: s.closed,
                requests: s.requests,
                protocol_errors: s.protocol_errors,
                shed: s.shed,
                slow_reader_disconnects: s.slow_reader_disconnects,
                shard_ops: session
                    .map()
                    .shard_stats()
                    .iter()
                    .map(pnb_shard::ShardOpStats::total)
                    .collect(),
            })
        }
        ReqBody::Batch { ops } => RespBody::BatchResults(run_batch(ops, session)),
        ReqBody::Checkpoint => match checkpoint_dir {
            // The worker's session borrows the same map; the checkpoint
            // serializes one consistent descending-capture cut while
            // the other workers keep serving updates.
            Some(dir) => match session.map().checkpoint(dir) {
                Ok(report) => RespBody::CheckpointDone {
                    generation: report.generation,
                    entries: report.entries,
                },
                Err(e) => RespBody::Error(
                    crate::proto::StatusCode::Internal,
                    format!("checkpoint failed: {e}"),
                ),
            },
            None => RespBody::Error(
                crate::proto::StatusCode::Internal,
                "no --checkpoint-dir configured".to_string(),
            ),
        },
    };
    Response { id: req.id, body }
}

/// Run one decoded batch through the map's fused `apply_batch` path.
///
/// Well-formed sub-ops are compacted into one `pnb_shard` batch (so
/// they share descent prefixes and the epoch pin exactly like a native
/// caller's would — `Contains` rides as a `Get` and keeps only the
/// presence bit); their outcomes are scattered back to submission
/// order. `Malformed` slots are answered with their typed error in
/// place, *without executing anything*, and cost nothing beyond their
/// result slot — one bad sub-op never poisons its siblings.
fn run_batch(ops: &[BatchSubOp], session: &ShardedSession<'_, u64, u64>) -> Vec<BatchSubResult> {
    let mut results: Vec<Option<BatchSubResult>> = Vec::with_capacity(ops.len());
    let mut exec: Vec<pnb_shard::BatchOp<u64, u64>> = Vec::new();
    // (result slot, answer as Contains-bool rather than Get-value)
    let mut slots: Vec<(usize, bool)> = Vec::new();
    for op in ops {
        let slot = results.len();
        match op {
            BatchSubOp::Get { key } => {
                slots.push((slot, false));
                exec.push(pnb_shard::BatchOp::Get(*key));
                results.push(None);
            }
            BatchSubOp::Contains { key } => {
                slots.push((slot, true));
                exec.push(pnb_shard::BatchOp::Get(*key));
                results.push(None);
            }
            BatchSubOp::Insert { key, value } => {
                slots.push((slot, false));
                exec.push(pnb_shard::BatchOp::Insert(*key, *value));
                results.push(None);
            }
            BatchSubOp::Upsert { key, value } => {
                slots.push((slot, false));
                exec.push(pnb_shard::BatchOp::Upsert(*key, *value));
                results.push(None);
            }
            BatchSubOp::Delete { key } => {
                slots.push((slot, false));
                exec.push(pnb_shard::BatchOp::Delete(*key));
                results.push(None);
            }
            BatchSubOp::Malformed { code, msg } => {
                results.push(Some(BatchSubResult::Error(*code, msg.clone())));
            }
        }
    }
    let outcomes = session.apply_batch(&exec);
    for ((slot, as_bool), outcome) in slots.into_iter().zip(outcomes) {
        results[slot] = Some(match outcome {
            pnb_shard::BatchOutcome::Get(v) => {
                if as_bool {
                    BatchSubResult::Bool(v.is_some())
                } else {
                    BatchSubResult::Value(v)
                }
            }
            pnb_shard::BatchOutcome::Inserted(b) => BatchSubResult::Bool(b),
            pnb_shard::BatchOutcome::Upserted(v) => BatchSubResult::Displaced(v),
            pnb_shard::BatchOutcome::Removed(v) => BatchSubResult::Bool(v.is_some()),
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every batch slot is filled exactly once"))
        .collect()
}

/// Fold a lazy range iterator into the wire shape, honouring the entry
/// cap and `count_only`.
fn scan(iter: impl Iterator<Item = (u64, u64)>, count_only: bool) -> RespBody {
    let mut count = 0u64;
    let mut entries = Vec::new();
    for (k, v) in iter {
        if !count_only && entries.len() < MAX_RANGE_ENTRIES {
            entries.push((k, v));
        }
        count += 1;
    }
    let truncated = !count_only && (count as usize) > entries.len();
    RespBody::Entries {
        count,
        entries,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnb_shard::ShardedPnbBst;

    fn req(body: ReqBody) -> Request {
        Request { id: 1, body }
    }

    #[test]
    fn handler_covers_the_operation_set() {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
        let session = map.pin();
        let stats = ServerStats::default();
        let run = |body| handle(&req(body), &session, &stats, None).body;

        assert_eq!(run(ReqBody::Ping), RespBody::Pong);
        assert_eq!(
            run(ReqBody::Insert { key: 5, value: 50 }),
            RespBody::Bool(true)
        );
        assert_eq!(
            run(ReqBody::Insert { key: 5, value: 51 }),
            RespBody::Bool(false)
        );
        assert_eq!(
            run(ReqBody::Upsert { key: 5, value: 55 }),
            RespBody::Displaced(Some(50))
        );
        assert_eq!(run(ReqBody::Get { key: 5 }), RespBody::Value(Some(55)));
        assert_eq!(run(ReqBody::Get { key: 6 }), RespBody::Value(None));
        assert_eq!(run(ReqBody::Contains { key: 5 }), RespBody::Bool(true));
        assert_eq!(run(ReqBody::Delete { key: 5 }), RespBody::Bool(true));
        assert_eq!(run(ReqBody::Delete { key: 5 }), RespBody::Bool(false));
    }

    #[test]
    fn range_and_snapshot_scan_agree_when_quiescent() {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
        let session = map.pin();
        let stats = ServerStats::default();
        for k in 0..100u64 {
            session.insert(k * 10, k);
        }
        let live = handle(
            &req(ReqBody::Range {
                lo: 100,
                hi: 500,
                count_only: false,
            }),
            &session,
            &stats,
            None,
        );
        let snap = handle(
            &req(ReqBody::SnapshotScan {
                lo: 100,
                hi: 500,
                count_only: false,
            }),
            &session,
            &stats,
            None,
        );
        assert_eq!(live.body, snap.body);
        match live.body {
            RespBody::Entries {
                count,
                entries,
                truncated,
            } => {
                assert_eq!(count, 41); // 100..=500 step 10
                assert_eq!(entries.len(), 41);
                assert!(!truncated);
                assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
            }
            other => panic!("expected entries, got {other:?}"),
        }
    }

    #[test]
    fn count_only_suppresses_entries() {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(2);
        let session = map.pin();
        let stats = ServerStats::default();
        for k in 0..50u64 {
            session.insert(k, k);
        }
        let r = handle(
            &req(ReqBody::Range {
                lo: 0,
                hi: u64::MAX,
                count_only: true,
            }),
            &session,
            &stats,
            None,
        );
        assert_eq!(
            r.body,
            RespBody::Entries {
                count: 50,
                entries: vec![],
                truncated: false,
            }
        );
    }

    #[test]
    fn stats_reports_shard_count_totals() {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(3);
        let session = map.pin();
        let stats = ServerStats::default();
        stats.request();
        stats.request();
        let r = handle(&req(ReqBody::Stats), &session, &stats, None);
        match r.body {
            RespBody::Stats(w) => {
                assert_eq!(w.requests, 2);
                assert_eq!(w.shard_ops.len(), 3);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_without_a_dir_is_a_typed_error() {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(2);
        let session = map.pin();
        let stats = ServerStats::default();
        let r = handle(&req(ReqBody::Checkpoint), &session, &stats, None);
        match r.body {
            RespBody::Error(code, msg) => {
                assert_eq!(code, crate::proto::StatusCode::Internal);
                assert!(msg.contains("checkpoint-dir"), "msg: {msg}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_writes_a_restorable_generation() {
        let dir =
            std::env::temp_dir().join(format!("pnbserver-handler-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(2);
        let session = map.pin();
        let stats = ServerStats::default();
        for k in 0..100u64 {
            session.insert(k * 3, k);
        }
        let r = handle(&req(ReqBody::Checkpoint), &session, &stats, Some(&dir));
        match r.body {
            RespBody::CheckpointDone {
                generation,
                entries,
            } => {
                assert_eq!(generation, 1);
                assert_eq!(entries, 100);
            }
            other => panic!("expected checkpoint-done, got {other:?}"),
        }
        let restored: ShardedPnbBst<u64, u64> =
            ShardedPnbBst::restore(&dir).expect("restore what the handler wrote");
        assert_eq!(restored.len(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
