//! The wire protocol: frame layout, opcodes, status codes, and the
//! typed request/response bodies the codec maps them to.
//!
//! Every message — request or response — is one *frame*: a fixed
//! [`HEADER_LEN`]-byte header followed by `payload_len` bytes of
//! payload. All integers are little-endian.
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"PNB1"
//! 4       1     version      PROTOCOL_VERSION (= 1)
//! 5       1     opcode       Opcode (request) / echoed (response)
//! 6       1     status       0 in requests; StatusCode in responses
//! 7       1     flags        bit 0 COUNT_ONLY (req), bit 1 TRUNCATED (resp)
//! 8       8     request id   u64, echoed verbatim in the response
//! 16      4     payload len  u32, <= MAX_PAYLOAD
//! ```
//!
//! The request id is an opaque client-chosen correlation token: the
//! server echoes it so clients may pipeline any number of requests on
//! one connection and match responses out of a FIFO (responses are sent
//! in request order). Payloads are sequences of `u64` (keys, values,
//! bounds); error responses carry a UTF-8 message instead. DESIGN.md §8
//! documents the full protocol narrative.

/// Frame magic: the first four bytes of every well-formed frame.
pub const MAGIC: [u8; 4] = *b"PNB1";

/// Protocol version this build speaks. A version mismatch is refused
/// with [`StatusCode::BadVersion`] rather than guessed at.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size, bytes.
pub const HEADER_LEN: usize = 20;

/// Hard payload ceiling. Anything larger is refused with
/// [`StatusCode::Oversized`] *before* the payload is read, so a
/// malicious length field cannot make a worker allocate unboundedly.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Range responses are capped at this many `(key, value)` entries; a
/// capped response sets [`flags::TRUNCATED`]. Keeps one giant scan from
/// wedging a worker behind a multi-megabyte write.
pub const MAX_RANGE_ENTRIES: usize = 65_536;

/// Frame flag bits.
pub mod flags {
    /// Request flag (Range/SnapshotScan): return only the match count,
    /// not the entries. What the open-loop driver uses, mirroring
    /// `MapSession::range_scan` returning `usize`.
    pub const COUNT_ONLY: u8 = 1 << 0;
    /// Response flag: the entry list was cut at
    /// [`super::MAX_RANGE_ENTRIES`]; the count field still reports the
    /// full match count.
    pub const TRUNCATED: u8 = 1 << 1;
}

/// Operation selector, byte 5 of the header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty payload both ways.
    Ping = 0x00,
    /// Point lookup: payload `key`; response `present:u8` + `value:u64`.
    Get = 0x01,
    /// Membership test: payload `key`; response `present:u8`.
    Contains = 0x02,
    /// Set-semantics insert: payload `key value`; response `inserted:u8`.
    Insert = 0x03,
    /// Insert-or-replace: payload `key value`; response `displaced:u8`
    /// + `old_value:u64`.
    Upsert = 0x04,
    /// Remove: payload `key`; response `removed:u8`.
    Delete = 0x05,
    /// Closed-interval range query over the live map: payload `lo hi`;
    /// response `count:u64` then `(key, value)*` unless COUNT_ONLY.
    Range = 0x06,
    /// Range query over a fresh cross-shard snapshot (one consistent
    /// cut, then read): same payload/response shape as Range.
    SnapshotScan = 0x07,
    /// Server counters: empty payload; response is the stats block
    /// (see `RespBody::Stats`).
    Stats = 0x08,
    /// Write a durable checkpoint of the map to the server's
    /// `--checkpoint-dir`: empty payload; response `generation:u64` +
    /// `entries:u64` (see `RespBody::CheckpointDone`). Refused with
    /// [`StatusCode::Internal`] when the server has no checkpoint
    /// directory configured.
    Checkpoint = 0x09,
}

impl Opcode {
    /// Decode byte 5; `None` for unknown opcodes (the caller answers
    /// [`StatusCode::BadOpcode`]).
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x00 => Opcode::Ping,
            0x01 => Opcode::Get,
            0x02 => Opcode::Contains,
            0x03 => Opcode::Insert,
            0x04 => Opcode::Upsert,
            0x05 => Opcode::Delete,
            0x06 => Opcode::Range,
            0x07 => Opcode::SnapshotScan,
            0x08 => Opcode::Stats,
            0x09 => Opcode::Checkpoint,
            _ => return None,
        })
    }
}

/// Response status, byte 6. `Ok` for success; anything else is an
/// error frame whose payload is a UTF-8 message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCode {
    /// Success.
    Ok = 0,
    /// The frame did not start with [`MAGIC`] — the stream is not
    /// speaking this protocol; the connection is closed after the
    /// error frame.
    BadMagic = 1,
    /// Version byte != [`PROTOCOL_VERSION`].
    BadVersion = 2,
    /// Unknown opcode byte.
    BadOpcode = 3,
    /// Payload length does not match the opcode's shape (truncated or
    /// trailing bytes).
    BadPayload = 4,
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversized = 5,
    /// The server is draining; no new requests are accepted.
    Shutdown = 6,
    /// Internal server error.
    Internal = 7,
    /// The worker crossed its admission limit and shed this request
    /// *without executing it*. The payload is an 8-byte LE
    /// retry-after hint in milliseconds (see [`RespBody::Busy`]);
    /// because the operation never ran, retrying is always safe —
    /// mutations included.
    Busy = 8,
}

impl StatusCode {
    /// Decode byte 6; `None` for unknown status bytes.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => StatusCode::Ok,
            1 => StatusCode::BadMagic,
            2 => StatusCode::BadVersion,
            3 => StatusCode::BadOpcode,
            4 => StatusCode::BadPayload,
            5 => StatusCode::Oversized,
            6 => StatusCode::Shutdown,
            7 => StatusCode::Internal,
            8 => StatusCode::Busy,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StatusCode::Ok => "ok",
            StatusCode::BadMagic => "bad magic",
            StatusCode::BadVersion => "bad version",
            StatusCode::BadOpcode => "bad opcode",
            StatusCode::BadPayload => "bad payload",
            StatusCode::Oversized => "oversized payload",
            StatusCode::Shutdown => "server shutting down",
            StatusCode::Internal => "internal error",
            StatusCode::Busy => "server busy",
        };
        f.write_str(s)
    }
}

/// A decoded request: correlation id plus the typed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation token, echoed in the response.
    pub id: u64,
    /// The operation.
    pub body: ReqBody,
}

/// The typed request bodies (one per [`Opcode`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReqBody {
    /// Liveness probe.
    Ping,
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Membership test.
    Contains {
        /// Key to test.
        key: u64,
    },
    /// Set-semantics insert.
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Insert-or-replace.
    Upsert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Remove.
    Delete {
        /// Key to remove.
        key: u64,
    },
    /// Closed-interval `[lo, hi]` range query over the live map.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
        /// Return only the match count (flag bit
        /// [`flags::COUNT_ONLY`]).
        count_only: bool,
    },
    /// Closed-interval query over a fresh cross-shard snapshot.
    SnapshotScan {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
        /// Return only the match count.
        count_only: bool,
    },
    /// Server counters.
    Stats,
    /// Write a durable checkpoint to the server's checkpoint directory.
    Checkpoint,
}

impl ReqBody {
    /// The opcode this body travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            ReqBody::Ping => Opcode::Ping,
            ReqBody::Get { .. } => Opcode::Get,
            ReqBody::Contains { .. } => Opcode::Contains,
            ReqBody::Insert { .. } => Opcode::Insert,
            ReqBody::Upsert { .. } => Opcode::Upsert,
            ReqBody::Delete { .. } => Opcode::Delete,
            ReqBody::Range { .. } => Opcode::Range,
            ReqBody::SnapshotScan { .. } => Opcode::SnapshotScan,
            ReqBody::Stats => Opcode::Stats,
            ReqBody::Checkpoint => Opcode::Checkpoint,
        }
    }
}

/// A decoded response: echoed id plus the typed result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation token, echoed.
    pub id: u64,
    /// The result.
    pub body: RespBody,
}

/// The typed response bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespBody {
    /// Ping reply.
    Pong,
    /// Get result.
    Value(
        /// The value, if the key was present.
        Option<u64>,
    ),
    /// Contains / Insert / Delete result.
    Bool(
        /// Present / newly-inserted / removed.
        bool,
    ),
    /// Upsert result: the displaced value, if any.
    Displaced(
        /// Previous value under the key.
        Option<u64>,
    ),
    /// Range / SnapshotScan result.
    Entries {
        /// Full match count (even when the entry list is truncated or
        /// COUNT_ONLY suppressed it).
        count: u64,
        /// Matching pairs, ascending; empty under COUNT_ONLY.
        entries: Vec<(u64, u64)>,
        /// The entry list was cut at [`MAX_RANGE_ENTRIES`].
        truncated: bool,
    },
    /// Stats reply.
    Stats(ServerStatsWire),
    /// Checkpoint reply: the committed generation and how many entries
    /// it holds.
    CheckpointDone {
        /// The generation number the checkpoint committed as.
        generation: u64,
        /// Total entries written across all shard segments.
        entries: u64,
    },
    /// Admission-control shed: the worker refused to execute the
    /// request (status [`StatusCode::Busy`]). The operation did NOT
    /// run, so retrying — mutations included — is always safe.
    Busy {
        /// Server's suggestion for how long to back off before
        /// retrying, in milliseconds (derived from the worker's
        /// current backlog; a floor of 1).
        retry_after_ms: u64,
    },
    /// Error frame: status plus human-readable message.
    Error(
        /// Status code (never `Ok` and never `Busy`, which has its own
        /// typed shape).
        StatusCode,
        /// UTF-8 diagnostic message.
        String,
    ),
}

/// The Stats opcode's payload: server totals plus per-shard operation
/// totals (the latter all zero unless the server was built with the
/// `stats` feature).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsWire {
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed (either side) since startup.
    pub closed: u64,
    /// Well-formed requests served.
    pub requests: u64,
    /// Protocol errors answered with an error frame.
    pub protocol_errors: u64,
    /// Requests shed with a typed `Busy` frame by admission control.
    pub shed: u64,
    /// Connections dropped for staying over their pending-write cap
    /// longer than the stall window (the slow-reader policy).
    pub slow_reader_disconnects: u64,
    /// Per-shard operation totals, index order.
    pub shard_ops: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bytes_roundtrip() {
        for b in 0u8..=0x09 {
            let op = Opcode::from_u8(b).expect("0x00..=0x09 are assigned");
            assert_eq!(op as u8, b);
        }
        assert_eq!(Opcode::from_u8(0x0A), None);
        assert_eq!(Opcode::from_u8(0xff), None);
    }

    #[test]
    fn status_bytes_roundtrip() {
        for b in 0u8..=8 {
            let st = StatusCode::from_u8(b).expect("0..=8 are assigned");
            assert_eq!(st as u8, b);
        }
        assert_eq!(StatusCode::from_u8(9), None);
    }

    #[test]
    fn body_opcode_mapping() {
        assert_eq!(ReqBody::Ping.opcode(), Opcode::Ping);
        assert_eq!(ReqBody::Get { key: 1 }.opcode(), Opcode::Get);
        assert_eq!(
            ReqBody::Range {
                lo: 0,
                hi: 1,
                count_only: true
            }
            .opcode(),
            Opcode::Range
        );
        assert_eq!(ReqBody::Stats.opcode(), Opcode::Stats);
        assert_eq!(ReqBody::Checkpoint.opcode(), Opcode::Checkpoint);
    }
}
