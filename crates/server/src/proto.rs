//! The wire protocol: frame layout, opcodes, status codes, and the
//! typed request/response bodies the codec maps them to.
//!
//! Every message — request or response — is one *frame*: a fixed
//! [`HEADER_LEN`]-byte header followed by `payload_len` bytes of
//! payload. All integers are little-endian.
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"PNB1"
//! 4       1     version      PROTOCOL_VERSION (= 1)
//! 5       1     opcode       Opcode (request) / echoed (response)
//! 6       1     status       0 in requests; StatusCode in responses
//! 7       1     flags        bit 0 COUNT_ONLY (req), bit 1 TRUNCATED (resp)
//! 8       8     request id   u64, echoed verbatim in the response
//! 16      4     payload len  u32, <= MAX_PAYLOAD
//! ```
//!
//! The request id is an opaque client-chosen correlation token: the
//! server echoes it so clients may pipeline any number of requests on
//! one connection and match responses out of a FIFO (responses are sent
//! in request order). Payloads are sequences of `u64` (keys, values,
//! bounds); error responses carry a UTF-8 message instead. DESIGN.md §8
//! documents the full protocol narrative.

/// Frame magic: the first four bytes of every well-formed frame.
pub const MAGIC: [u8; 4] = *b"PNB1";

/// Protocol version this build speaks. A version mismatch is refused
/// with [`StatusCode::BadVersion`] rather than guessed at.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size, bytes.
pub const HEADER_LEN: usize = 20;

/// Hard payload ceiling. Anything larger is refused with
/// [`StatusCode::Oversized`] *before* the payload is read, so a
/// malicious length field cannot make a worker allocate unboundedly.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Range responses are capped at this many `(key, value)` entries; a
/// capped response sets [`flags::TRUNCATED`]. Keeps one giant scan from
/// wedging a worker behind a multi-megabyte write.
pub const MAX_RANGE_ENTRIES: usize = 65_536;

/// Frame flag bits.
pub mod flags {
    /// Request flag (Range/SnapshotScan): return only the match count,
    /// not the entries. What the open-loop driver uses, mirroring
    /// `MapSession::range_scan` returning `usize`.
    pub const COUNT_ONLY: u8 = 1 << 0;
    /// Response flag: the entry list was cut at
    /// [`super::MAX_RANGE_ENTRIES`]; the count field still reports the
    /// full match count.
    pub const TRUNCATED: u8 = 1 << 1;
}

/// Operation selector, byte 5 of the header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty payload both ways.
    Ping = 0x00,
    /// Point lookup: payload `key`; response `present:u8` + `value:u64`.
    Get = 0x01,
    /// Membership test: payload `key`; response `present:u8`.
    Contains = 0x02,
    /// Set-semantics insert: payload `key value`; response `inserted:u8`.
    Insert = 0x03,
    /// Insert-or-replace: payload `key value`; response `displaced:u8`
    /// + `old_value:u64`.
    Upsert = 0x04,
    /// Remove: payload `key`; response `removed:u8`.
    Delete = 0x05,
    /// Closed-interval range query over the live map: payload `lo hi`;
    /// response `count:u64` then `(key, value)*` unless COUNT_ONLY.
    Range = 0x06,
    /// Range query over a fresh cross-shard snapshot (one consistent
    /// cut, then read): same payload/response shape as Range.
    SnapshotScan = 0x07,
    /// Server counters: empty payload; response is the stats block
    /// (see `RespBody::Stats`).
    Stats = 0x08,
    /// Write a durable checkpoint of the map to the server's
    /// `--checkpoint-dir`: empty payload; response `generation:u64` +
    /// `entries:u64` (see `RespBody::CheckpointDone`). Refused with
    /// [`StatusCode::Internal`] when the server has no checkpoint
    /// directory configured.
    Checkpoint = 0x09,
    /// A batch of point operations served through the map's fused
    /// `apply_batch` path (one descent prefix, one epoch pin).
    ///
    /// Request payload: `count:u32` then `count` length-prefixed
    /// sub-operations, each `sub_opcode:u8` + `len:u32` + `len` payload
    /// bytes (only the point opcodes Get/Contains/Insert/Upsert/Delete
    /// are batchable). Response payload: `count:u32` then per sub-op
    /// `sub_opcode:u8` + `status:u8` + `len:u32` + body — a malformed
    /// sub-operation earns its own error status *without poisoning its
    /// siblings*. Admission control weighs a batch by its contained
    /// operation count, not as one request.
    Batch = 0x0A,
}

impl Opcode {
    /// Decode byte 5; `None` for unknown opcodes (the caller answers
    /// [`StatusCode::BadOpcode`]).
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x00 => Opcode::Ping,
            0x01 => Opcode::Get,
            0x02 => Opcode::Contains,
            0x03 => Opcode::Insert,
            0x04 => Opcode::Upsert,
            0x05 => Opcode::Delete,
            0x06 => Opcode::Range,
            0x07 => Opcode::SnapshotScan,
            0x08 => Opcode::Stats,
            0x09 => Opcode::Checkpoint,
            0x0A => Opcode::Batch,
            _ => return None,
        })
    }
}

/// Response status, byte 6. `Ok` for success; anything else is an
/// error frame whose payload is a UTF-8 message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCode {
    /// Success.
    Ok = 0,
    /// The frame did not start with [`MAGIC`] — the stream is not
    /// speaking this protocol; the connection is closed after the
    /// error frame.
    BadMagic = 1,
    /// Version byte != [`PROTOCOL_VERSION`].
    BadVersion = 2,
    /// Unknown opcode byte.
    BadOpcode = 3,
    /// Payload length does not match the opcode's shape (truncated or
    /// trailing bytes).
    BadPayload = 4,
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversized = 5,
    /// The server is draining; no new requests are accepted.
    Shutdown = 6,
    /// Internal server error.
    Internal = 7,
    /// The worker crossed its admission limit and shed this request
    /// *without executing it*. The payload is an 8-byte LE
    /// retry-after hint in milliseconds (see [`RespBody::Busy`]);
    /// because the operation never ran, retrying is always safe —
    /// mutations included.
    Busy = 8,
}

impl StatusCode {
    /// Decode byte 6; `None` for unknown status bytes.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => StatusCode::Ok,
            1 => StatusCode::BadMagic,
            2 => StatusCode::BadVersion,
            3 => StatusCode::BadOpcode,
            4 => StatusCode::BadPayload,
            5 => StatusCode::Oversized,
            6 => StatusCode::Shutdown,
            7 => StatusCode::Internal,
            8 => StatusCode::Busy,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StatusCode::Ok => "ok",
            StatusCode::BadMagic => "bad magic",
            StatusCode::BadVersion => "bad version",
            StatusCode::BadOpcode => "bad opcode",
            StatusCode::BadPayload => "bad payload",
            StatusCode::Oversized => "oversized payload",
            StatusCode::Shutdown => "server shutting down",
            StatusCode::Internal => "internal error",
            StatusCode::Busy => "server busy",
        };
        f.write_str(s)
    }
}

/// A decoded request: correlation id plus the typed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation token, echoed in the response.
    pub id: u64,
    /// The operation.
    pub body: ReqBody,
}

/// The typed request bodies (one per [`Opcode`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReqBody {
    /// Liveness probe.
    Ping,
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Membership test.
    Contains {
        /// Key to test.
        key: u64,
    },
    /// Set-semantics insert.
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Insert-or-replace.
    Upsert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Remove.
    Delete {
        /// Key to remove.
        key: u64,
    },
    /// Closed-interval `[lo, hi]` range query over the live map.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
        /// Return only the match count (flag bit
        /// [`flags::COUNT_ONLY`]).
        count_only: bool,
    },
    /// Closed-interval query over a fresh cross-shard snapshot.
    SnapshotScan {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
        /// Return only the match count.
        count_only: bool,
    },
    /// Server counters.
    Stats,
    /// Write a durable checkpoint to the server's checkpoint directory.
    Checkpoint,
    /// A batch of point operations, answered per-sub-op.
    Batch {
        /// The sub-operations, in submission order (duplicate keys
        /// resolve in this order — the map's stable-sort contract).
        ops: Vec<BatchSubOp>,
    },
}

/// One operation inside a [`ReqBody::Batch`]. Only point operations
/// are batchable; the decoder maps anything else — unknown sub-opcode,
/// non-point sub-opcode, wrong sub-payload shape — to
/// [`Malformed`](BatchSubOp::Malformed) so the handler can answer a
/// typed per-sub-op error while the well-formed siblings execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchSubOp {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Membership test.
    Contains {
        /// Key to test.
        key: u64,
    },
    /// Set-semantics insert.
    Insert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Insert-or-replace.
    Upsert {
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Remove.
    Delete {
        /// Key to remove.
        key: u64,
    },
    /// Decode-side marker for a sub-operation that did not parse. Never
    /// executed; the handler answers it with
    /// [`BatchSubResult::Error`]. Encoding one produces a sub-frame the
    /// decoder flags malformed again (sub-opcode `0xFF`), so it is not
    /// bit-roundtrippable — it exists to carry the error, not to travel.
    Malformed {
        /// The per-sub-op status to answer with ([`BadOpcode`]
        /// (StatusCode::BadOpcode) or
        /// [`BadPayload`](StatusCode::BadPayload)).
        code: StatusCode,
        /// Human-readable diagnostic.
        msg: String,
    },
}

/// Per-sub-op result of a [`ReqBody::Batch`], positionally matching
/// the request's `ops`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchSubResult {
    /// Get result: the value, if present.
    Value(
        /// Value under the key.
        Option<u64>,
    ),
    /// Contains / Insert / Delete result.
    Bool(
        /// Present / newly-inserted / removed.
        bool,
    ),
    /// Upsert result: the displaced value.
    Displaced(
        /// Previous value under the key.
        Option<u64>,
    ),
    /// This sub-operation failed (malformed); its siblings are
    /// unaffected and the operation was never executed.
    Error(
        /// Per-sub-op status (never `Ok`).
        StatusCode,
        /// UTF-8 diagnostic.
        String,
    ),
}

impl ReqBody {
    /// The opcode this body travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            ReqBody::Ping => Opcode::Ping,
            ReqBody::Get { .. } => Opcode::Get,
            ReqBody::Contains { .. } => Opcode::Contains,
            ReqBody::Insert { .. } => Opcode::Insert,
            ReqBody::Upsert { .. } => Opcode::Upsert,
            ReqBody::Delete { .. } => Opcode::Delete,
            ReqBody::Range { .. } => Opcode::Range,
            ReqBody::SnapshotScan { .. } => Opcode::SnapshotScan,
            ReqBody::Stats => Opcode::Stats,
            ReqBody::Checkpoint => Opcode::Checkpoint,
            ReqBody::Batch { .. } => Opcode::Batch,
        }
    }

    /// Admission weight: how many map operations this request contains
    /// (1 for everything but `Batch`, which counts its sub-operations).
    /// The worker's admission budget and shed accounting are both
    /// op-granular, so a 64-op batch spends 64 budget slots and, when
    /// shed, counts as 64 shed operations.
    pub fn op_weight(&self) -> u64 {
        match self {
            ReqBody::Batch { ops } => ops.len().max(1) as u64,
            _ => 1,
        }
    }
}

/// A decoded response: echoed id plus the typed result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation token, echoed.
    pub id: u64,
    /// The result.
    pub body: RespBody,
}

/// The typed response bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespBody {
    /// Ping reply.
    Pong,
    /// Get result.
    Value(
        /// The value, if the key was present.
        Option<u64>,
    ),
    /// Contains / Insert / Delete result.
    Bool(
        /// Present / newly-inserted / removed.
        bool,
    ),
    /// Upsert result: the displaced value, if any.
    Displaced(
        /// Previous value under the key.
        Option<u64>,
    ),
    /// Range / SnapshotScan result.
    Entries {
        /// Full match count (even when the entry list is truncated or
        /// COUNT_ONLY suppressed it).
        count: u64,
        /// Matching pairs, ascending; empty under COUNT_ONLY.
        entries: Vec<(u64, u64)>,
        /// The entry list was cut at [`MAX_RANGE_ENTRIES`].
        truncated: bool,
    },
    /// Stats reply.
    Stats(ServerStatsWire),
    /// Checkpoint reply: the committed generation and how many entries
    /// it holds.
    CheckpointDone {
        /// The generation number the checkpoint committed as.
        generation: u64,
        /// Total entries written across all shard segments.
        entries: u64,
    },
    /// Admission-control shed: the worker refused to execute the
    /// request (status [`StatusCode::Busy`]). The operation did NOT
    /// run, so retrying — mutations included — is always safe.
    Busy {
        /// Server's suggestion for how long to back off before
        /// retrying, in milliseconds (derived from the worker's
        /// current backlog; a floor of 1).
        retry_after_ms: u64,
    },
    /// Batch reply: one result per sub-operation, in submission order.
    BatchResults(
        /// Per-sub-op results (errors are per-slot; siblings execute).
        Vec<BatchSubResult>,
    ),
    /// Error frame: status plus human-readable message.
    Error(
        /// Status code (never `Ok` and never `Busy`, which has its own
        /// typed shape).
        StatusCode,
        /// UTF-8 diagnostic message.
        String,
    ),
}

/// The Stats opcode's payload: server totals plus per-shard operation
/// totals (the latter all zero unless the server was built with the
/// `stats` feature).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsWire {
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed (either side) since startup.
    pub closed: u64,
    /// Well-formed requests served.
    pub requests: u64,
    /// Protocol errors answered with an error frame.
    pub protocol_errors: u64,
    /// Requests shed with a typed `Busy` frame by admission control.
    pub shed: u64,
    /// Connections dropped for staying over their pending-write cap
    /// longer than the stall window (the slow-reader policy).
    pub slow_reader_disconnects: u64,
    /// Per-shard operation totals, index order.
    pub shard_ops: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bytes_roundtrip() {
        for b in 0u8..=0x0A {
            let op = Opcode::from_u8(b).expect("0x00..=0x0A are assigned");
            assert_eq!(op as u8, b);
        }
        assert_eq!(Opcode::from_u8(0x0B), None);
        assert_eq!(Opcode::from_u8(0xff), None);
    }

    #[test]
    fn status_bytes_roundtrip() {
        for b in 0u8..=8 {
            let st = StatusCode::from_u8(b).expect("0..=8 are assigned");
            assert_eq!(st as u8, b);
        }
        assert_eq!(StatusCode::from_u8(9), None);
    }

    #[test]
    fn body_opcode_mapping() {
        assert_eq!(ReqBody::Ping.opcode(), Opcode::Ping);
        assert_eq!(ReqBody::Get { key: 1 }.opcode(), Opcode::Get);
        assert_eq!(
            ReqBody::Range {
                lo: 0,
                hi: 1,
                count_only: true
            }
            .opcode(),
            Opcode::Range
        );
        assert_eq!(ReqBody::Stats.opcode(), Opcode::Stats);
        assert_eq!(ReqBody::Checkpoint.opcode(), Opcode::Checkpoint);
        assert_eq!(ReqBody::Batch { ops: vec![] }.opcode(), Opcode::Batch);
    }

    #[test]
    fn op_weight_counts_contained_ops() {
        assert_eq!(ReqBody::Ping.op_weight(), 1);
        assert_eq!(ReqBody::Get { key: 1 }.op_weight(), 1);
        assert_eq!(ReqBody::Batch { ops: vec![] }.op_weight(), 1);
        let ops = vec![
            BatchSubOp::Get { key: 1 },
            BatchSubOp::Insert { key: 2, value: 3 },
            BatchSubOp::Malformed {
                code: StatusCode::BadOpcode,
                msg: "nope".into(),
            },
        ];
        assert_eq!(ReqBody::Batch { ops }.op_weight(), 3);
    }
}
