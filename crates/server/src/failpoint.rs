//! Feature-gated failpoints for chaos-testing the worker loop.
//!
//! Compiled to a no-op unless the `failpoints` cargo feature is on.
//! With the feature enabled, the `PNB_FAILPOINTS` environment variable
//! configures what each named point does, as a `;`-separated list of
//! rules:
//!
//! ```text
//! PNB_FAILPOINTS="worker-frame@0.01:close;worker-frame@0.05:delay=2"
//! ```
//!
//! Each rule is `point@probability:action` where `action` is either
//! `close` (begin closing the connection the frame arrived on — the
//! client sees a clean EOF after pending responses flush) or
//! `delay=<ms>` (sleep the worker, stalling every connection it owns —
//! the head-of-line blocking a slow handler would cause). Rolls are
//! drawn from a deterministic splitmix64 stream seeded by
//! `PNB_FAILPOINT_SEED` (default 0), so a failing chaos run reproduces
//! exactly.

#![allow(dead_code)]

use crate::conn::Conn;

#[cfg(feature = "failpoints")]
mod active {
    use super::Conn;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    #[derive(Clone, Copy, Debug)]
    enum Action {
        Close,
        DelayMs(u64),
    }

    #[derive(Clone, Debug)]
    struct Rule {
        point: String,
        /// Trigger threshold scaled to u64: roll < threshold fires.
        threshold: u64,
        action: Action,
    }

    fn rules() -> &'static [Rule] {
        static RULES: OnceLock<Vec<Rule>> = OnceLock::new();
        RULES.get_or_init(|| {
            let Ok(spec) = std::env::var("PNB_FAILPOINTS") else {
                return Vec::new();
            };
            spec.split(';')
                .filter(|s| !s.trim().is_empty())
                .filter_map(parse_rule)
                .collect()
        })
    }

    fn parse_rule(s: &str) -> Option<Rule> {
        let (point, rest) = s.trim().split_once('@')?;
        let (prob, action) = rest.split_once(':')?;
        let p: f64 = prob.parse().ok()?;
        let action = if action == "close" {
            Action::Close
        } else {
            let ms = action.strip_prefix("delay=")?.parse().ok()?;
            Action::DelayMs(ms)
        };
        Some(Rule {
            point: point.to_string(),
            threshold: (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64,
            action,
        })
    }

    fn roll() -> u64 {
        static STATE: OnceLock<AtomicU64> = OnceLock::new();
        let state = STATE.get_or_init(|| {
            let seed = std::env::var("PNB_FAILPOINT_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0u64);
            AtomicU64::new(seed)
        });
        workload::seed::splitmix64(state.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn hit(point: &str, conn: &mut Conn) {
        for rule in rules() {
            if rule.point == point && roll() < rule.threshold {
                match rule.action {
                    Action::Close => conn.begin_close(),
                    Action::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
                }
            }
        }
    }
}

/// Run the failpoint named `point` against `conn`. No-op without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
pub(crate) fn hit(point: &str, conn: &mut Conn) {
    active::hit(point, conn);
}

/// Run the failpoint named `point` against `conn`. No-op without the
/// `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn hit(_point: &str, _conn: &mut Conn) {}
