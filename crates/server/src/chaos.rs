//! Fault-injection harness: [`ChaosProxy`] is a TCP proxy that sits
//! between a client and a `pnb-server`, forwarding bytes while
//! injecting faults from a seeded plan — delays, partial writes, frame
//! truncation, byte corruption, and connection resets.
//!
//! The point is to *prove* the failure contract end to end: under any
//! seeded fault plan, a client call must end with either the response
//! or a typed error — never a hang, and never a lost **acknowledged**
//! mutation (one whose response the client actually received).
//! `tests/chaos.rs` runs those proofs; the `pnb-chaos` binary exposes
//! the same proxy for `ci/chaos_smoke.sh` and manual runs.
//!
//! Fault rolls come from per-direction `splitmix64` streams derived
//! from [`ChaosConfig::seed`], the connection index, and the direction
//! — so one seed reproduces one exact fault plan, independent of
//! thread interleaving.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use workload::seed::{splitmix64, worker_seed};

use crate::server::ShutdownHandle;

/// Fault probabilities (per forwarded chunk) and shapes. All default to
/// zero: a default proxy is a faithful pass-through.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault streams.
    pub seed: u64,
    /// Probability of holding a chunk for [`delay_ms`](Self::delay_ms).
    pub delay_prob: f64,
    /// How long a delayed chunk is held.
    pub delay_ms: u64,
    /// Probability of splitting a chunk into two writes with a short
    /// pause between them (exercises partial-read/partial-write paths;
    /// byte-preserving).
    pub split_prob: f64,
    /// Probability of flipping one byte in a chunk (the receiver must
    /// answer with a typed protocol error, not hang or crash).
    pub corrupt_prob: f64,
    /// Probability of forwarding only a prefix of a chunk and then
    /// closing both directions — a mid-frame cut.
    pub truncate_prob: f64,
    /// Probability of closing the connection abruptly (both directions,
    /// nothing forwarded) — the proxy's stand-in for a reset.
    pub reset_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            delay_prob: 0.0,
            delay_ms: 10,
            split_prob: 0.0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            reset_prob: 0.0,
        }
    }
}

/// One deterministic fault stream (per connection × direction).
#[derive(Debug)]
struct FaultStream {
    cfg: ChaosConfig,
    state: u64,
}

/// What to do with one forwarded chunk.
#[derive(Debug, PartialEq)]
enum Fault {
    None,
    Delay(Duration),
    Split,
    Corrupt { offset: usize, mask: u8 },
    Truncate { keep: usize },
    Reset,
}

impl FaultStream {
    fn new(cfg: ChaosConfig, conn: u64, dir: u64) -> Self {
        FaultStream {
            cfg,
            state: worker_seed(cfg.seed, conn * 2 + dir),
        }
    }

    fn roll(&mut self) -> f64 {
        self.state = self.state.wrapping_add(1);
        (splitmix64(self.state) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide this chunk's fate. Checks are ordered most-destructive
    /// first; at most one fault per chunk.
    fn next(&mut self, chunk_len: usize) -> Fault {
        if self.roll() < self.cfg.reset_prob {
            return Fault::Reset;
        }
        if self.roll() < self.cfg.truncate_prob {
            // Keep a strict prefix (possibly empty): a genuine mid-frame
            // cut, not a clean boundary.
            let keep = (splitmix64(self.state) as usize) % chunk_len.max(1);
            return Fault::Truncate { keep };
        }
        if self.roll() < self.cfg.corrupt_prob {
            let r = splitmix64(self.state ^ 0x9e37);
            return Fault::Corrupt {
                offset: (r as usize) % chunk_len.max(1),
                // A nonzero mask guarantees the byte actually changes.
                mask: ((r >> 32) as u8) | 1,
            };
        }
        if self.roll() < self.cfg.split_prob {
            return Fault::Split;
        }
        if self.roll() < self.cfg.delay_prob {
            return Fault::Delay(Duration::from_millis(self.cfg.delay_ms));
        }
        Fault::None
    }
}

/// The proxy: bind, then [`run`](Self::run) (blocking) or
/// [`spawn`](Self::spawn). Every accepted connection gets its own
/// upstream connection and a pair of shuttle threads (one per
/// direction) applying the seeded fault plan chunk by chunk.
pub struct ChaosProxy {
    listener: TcpListener,
    upstream: SocketAddr,
    cfg: ChaosConfig,
    shutdown: ShutdownHandle,
}

impl ChaosProxy {
    /// Bind the listening side (port 0 for ephemeral) in front of
    /// `upstream`.
    pub fn bind(
        listen: impl ToSocketAddrs,
        upstream: impl ToSocketAddrs,
        cfg: ChaosConfig,
    ) -> io::Result<Self> {
        let upstream = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "upstream resolved empty")
        })?;
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        Ok(ChaosProxy {
            listener,
            upstream,
            cfg,
            shutdown: ShutdownHandle::fresh(),
        })
    }

    /// The proxy's listening address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A trigger that makes [`run`](Self::run) stop accepting, tear
    /// down the shuttles, and return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Accept and shuttle until shutdown is signalled.
    pub fn run(self) -> io::Result<()> {
        let mut conn_idx = 0u64;
        let mut shuttles = Vec::new();
        while !self.shutdown.is_signalled() {
            match self.listener.accept() {
                Ok((down, _peer)) => {
                    match TcpStream::connect_timeout(&self.upstream, Duration::from_secs(5)) {
                        Ok(up) => {
                            shuttles.extend(spawn_pair(
                                down,
                                up,
                                self.cfg,
                                conn_idx,
                                self.shutdown.clone(),
                            ));
                            conn_idx += 1;
                        }
                        // Upstream down: refuse by dropping `down` —
                        // the client sees EOF and (re)tries.
                        Err(_) => drop(down),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Shuttle threads poll the same flag via read timeouts; give
        // them their exit.
        for j in shuttles {
            let _ = j.join();
        }
        Ok(())
    }

    /// Run on a fresh thread; returns the listening address, the
    /// shutdown trigger, and the join handle.
    pub fn spawn(
        self,
    ) -> io::Result<(
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<io::Result<()>>,
    )> {
        let addr = self.local_addr()?;
        let handle = self.shutdown_handle();
        let join = std::thread::spawn(move || self.run());
        Ok((addr, handle, join))
    }
}

/// Two shuttle threads for one proxied connection: client→server and
/// server→client, each with its own fault stream.
fn spawn_pair(
    down: TcpStream,
    up: TcpStream,
    cfg: ChaosConfig,
    conn_idx: u64,
    shutdown: ShutdownHandle,
) -> Vec<std::thread::JoinHandle<()>> {
    let pairs = [
        (down.try_clone(), up.try_clone(), 0u64), // client → server
        (up.try_clone(), down.try_clone(), 1u64), // server → client
    ];
    let mut joins = Vec::with_capacity(2);
    for (src, dst, dir) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            // A clone failed (peer already gone): kill both sides so
            // the half-built pair can't dangle.
            let _ = down.shutdown(Shutdown::Both);
            let _ = up.shutdown(Shutdown::Both);
            break;
        };
        let faults = FaultStream::new(cfg, conn_idx, dir);
        let flag = shutdown.clone();
        joins.push(std::thread::spawn(move || {
            shuttle(src, dst, faults, &flag);
        }));
    }
    joins
}

/// Forward until EOF, error, an injected cut, or proxy shutdown.
/// Closing both sides of *this* connection on exit keeps the sibling
/// shuttle from waiting on a half-dead pair.
fn shuttle(mut src: TcpStream, mut dst: TcpStream, mut faults: FaultStream, flag: &ShutdownHandle) {
    // Short read timeout so the shutdown flag is polled even on an
    // idle connection.
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if flag.is_signalled() {
            break;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        match faults.next(n) {
            Fault::None => {
                if dst.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                if dst.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
            Fault::Split => {
                let mid = n / 2;
                if dst.write_all(&chunk[..mid]).is_err() {
                    break;
                }
                let _ = dst.flush();
                std::thread::sleep(Duration::from_millis(1));
                if dst.write_all(&chunk[mid..n]).is_err() {
                    break;
                }
            }
            Fault::Corrupt { offset, mask } => {
                chunk[offset.min(n - 1)] ^= mask;
                if dst.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
            Fault::Truncate { keep } => {
                let _ = dst.write_all(&chunk[..keep.min(n)]);
                break;
            }
            Fault::Reset => break,
        }
    }
    // Tear down both directions: the peer must observe the cut, not a
    // silent stall.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_streams_are_deterministic_per_seed_and_direction() {
        let cfg = ChaosConfig {
            seed: 7,
            delay_prob: 0.2,
            split_prob: 0.2,
            corrupt_prob: 0.2,
            truncate_prob: 0.1,
            reset_prob: 0.1,
            ..ChaosConfig::default()
        };
        let plan = |conn, dir| {
            let mut fs = FaultStream::new(cfg, conn, dir);
            (0..64).map(|_| fs.next(1024)).collect::<Vec<_>>()
        };
        assert_eq!(plan(0, 0), plan(0, 0), "same stream, same plan");
        assert_ne!(plan(0, 0), plan(0, 1), "directions draw distinct plans");
        assert_ne!(plan(0, 0), plan(1, 0), "connections draw distinct plans");
        let all = plan(0, 0);
        assert!(
            all.iter().any(|f| !matches!(f, Fault::None)),
            "with these probabilities, 64 rolls must hit at least one fault"
        );
    }

    #[test]
    fn zero_probability_config_never_faults() {
        let mut fs = FaultStream::new(ChaosConfig::default(), 0, 0);
        for _ in 0..256 {
            assert_eq!(fs.next(512), Fault::None);
        }
    }
}
