//! Client side: a blocking [`Client`] for one connection, and
//! [`NetMap`] — a [`ConcurrentMap`] adapter over a connection pool so
//! the `workload` drivers (and `pnb-load`) can drive a remote server
//! exactly like an in-process map.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use workload::{Caps, ConcurrentMap, MapSession};

use crate::codec::{decode_response, encode_request, DecodeError, FrameBuf};
use crate::proto::{BatchSubOp, BatchSubResult, ReqBody, Request, RespBody, StatusCode};

/// Default per-call read timeout: distinguishes a hung server from a
/// slow one without wedging a load generator forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default per-call write timeout: a wedged peer (full socket buffers,
/// never reading) would otherwise block `send` forever — the read
/// timeout alone cannot catch that, because `send` never reaches the
/// read.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes did not decode as a protocol response.
    Protocol(DecodeError),
    /// The server answered with a typed error frame.
    Remote(StatusCode, String),
    /// The server shed this request with a typed `Busy` frame: the
    /// operation was **not executed** (retrying is always safe,
    /// mutations included), and the payload suggests how long to back
    /// off. [`ReconnectingClient`](crate::retry::ReconnectingClient)
    /// honours the hint automatically.
    Busy {
        /// Server's suggested backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// A [`ReconnectingClient`](crate::retry::ReconnectingClient) call
    /// exhausted its per-call deadline budget across retries. The last
    /// underlying failure is included for diagnosis.
    DeadlineExceeded {
        /// The configured per-call budget that was exhausted.
        budget: Duration,
        /// Display form of the last error seen before giving up.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote(code, msg) => write!(f, "server error ({code}): {msg}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
            ClientError::DeadlineExceeded { budget, last } => {
                write!(f, "deadline exceeded after {budget:?}; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The result of an entry-transferring range query: the entries that
/// crossed the wire, the *full* match count, and the server's explicit
/// truncation flag.
///
/// `truncated` comes straight from the response frame's TRUNCATED bit —
/// callers no longer have to infer truncation from
/// `count > entries.len()` (and cannot forget to).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeReply {
    /// Matching `(key, value)` pairs, ascending; at most the server's
    /// per-response cap.
    pub entries: Vec<(u64, u64)>,
    /// Full match count, even when the entry list was cut.
    pub count: u64,
    /// The entry list was cut at the server's cap
    /// ([`MAX_RANGE_ENTRIES`](crate::proto::MAX_RANGE_ENTRIES)).
    pub truncated: bool,
}

/// One blocking connection to a `pnb-server`: send a request, read its
/// response. Requests may be pipelined with
/// [`send`](Client::send)/[`recv`](Client::recv); [`call`] is the
/// send-then-wait convenience every simple caller wants.
///
/// [`call`]: Client::call
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    frames: FrameBuf,
    next_id: u64,
}

impl Client {
    /// Connect (blocking) with `TCP_NODELAY` and 30 s read *and* write
    /// timeouts — a wedged peer can hang either direction, and a load
    /// generator must wedge on neither.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Like [`connect`](Self::connect) but bound by `timeout` for the
    /// TCP handshake itself (plain `connect` uses the OS default, which
    /// can be minutes against a black-holed address).
    pub fn connect_with_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect_timeout(addr, timeout)?)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(Client {
            stream,
            frames: FrameBuf::new(),
            next_id: 1,
        })
    }

    /// Replace both stream timeouts (defaults: 30 s each). A fault
    /// plan that mangles a length field leaves the client waiting for
    /// bytes that never come — the read timeout is what turns that
    /// into a typed [`ClientError::Io`] instead of a hang, so tests
    /// and impatient callers can tighten it.
    pub fn set_timeouts(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Send `body` without waiting; returns the request id. Responses
    /// come back in request order — pair with [`recv`](Client::recv).
    pub fn send(&mut self, body: ReqBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let bytes = encode_request(&Request { id, body });
        self.stream.write_all(&bytes)?;
        Ok(id)
    }

    /// Read the next response frame (blocking, honours the read
    /// timeout). Typed error frames become [`ClientError::Remote`].
    pub fn recv(&mut self) -> Result<(u64, RespBody), ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.frames.next_frame().map_err(ClientError::Protocol)? {
                let resp = decode_response(&frame).map_err(ClientError::Protocol)?;
                return match resp.body {
                    RespBody::Error(code, msg) => Err(ClientError::Remote(code, msg)),
                    RespBody::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
                    body => Ok((resp.id, body)),
                };
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.frames.feed(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Send `body` and wait for its response.
    pub fn call(&mut self, body: ReqBody) -> Result<RespBody, ClientError> {
        let id = self.send(body)?;
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(ClientError::Protocol(DecodeError {
                id: Some(got),
                code: StatusCode::Internal,
                msg: format!("response id {got} does not match request id {id}"),
            }));
        }
        Ok(resp)
    }

    fn expect_bool(&mut self, body: ReqBody) -> Result<bool, ClientError> {
        match self.call(body)? {
            RespBody::Bool(b) => Ok(b),
            other => Err(unexpected(&other)),
        }
    }

    fn expect_value(&mut self, body: ReqBody) -> Result<Option<u64>, ClientError> {
        match self.call(body)? {
            RespBody::Value(v) | RespBody::Displaced(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(ReqBody::Ping)? {
            RespBody::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        self.expect_value(ReqBody::Get { key })
    }

    /// Membership test.
    pub fn contains(&mut self, key: u64) -> Result<bool, ClientError> {
        self.expect_bool(ReqBody::Contains { key })
    }

    /// Set-semantics insert; `true` iff the key was absent.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<bool, ClientError> {
        self.expect_bool(ReqBody::Insert { key, value })
    }

    /// Insert-or-replace; returns the displaced value.
    pub fn upsert(&mut self, key: u64, value: u64) -> Result<Option<u64>, ClientError> {
        self.expect_value(ReqBody::Upsert { key, value })
    }

    /// Remove; `true` iff the key was present.
    pub fn delete(&mut self, key: u64) -> Result<bool, ClientError> {
        self.expect_bool(ReqBody::Delete { key })
    }

    /// Execute a batch of point operations in one round trip; results
    /// positionally match `ops`, served through the map's fused
    /// `apply_batch` path server-side. Malformed sub-ops come back as
    /// per-slot [`BatchSubResult::Error`]s without poisoning their
    /// siblings — only whole-frame failures surface as [`ClientError`].
    pub fn batch(&mut self, ops: &[BatchSubOp]) -> Result<Vec<BatchSubResult>, ClientError> {
        match self.call(ReqBody::Batch { ops: ops.to_vec() })? {
            RespBody::BatchResults(results) => Ok(results),
            other => Err(unexpected(&other)),
        }
    }

    /// Count keys in `[lo, hi]` on the live map (COUNT_ONLY wire shape:
    /// the server traverses, only the count crosses the network).
    pub fn range_count(&mut self, lo: u64, hi: u64) -> Result<u64, ClientError> {
        match self.call(ReqBody::Range {
            lo,
            hi,
            count_only: true,
        })? {
            RespBody::Entries { count, .. } => Ok(count),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the entries in `[lo, hi]` from the live map. The reply
    /// carries the full match count and the server's explicit
    /// truncation flag (see [`RangeReply`]).
    pub fn range_entries(&mut self, lo: u64, hi: u64) -> Result<RangeReply, ClientError> {
        match self.call(ReqBody::Range {
            lo,
            hi,
            count_only: false,
        })? {
            RespBody::Entries {
                count,
                entries,
                truncated,
            } => Ok(RangeReply {
                entries,
                count,
                truncated,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the entries in `[lo, hi]` from a fresh cross-shard
    /// snapshot (one consistent cut taken server-side). See
    /// [`RangeReply`] for the truncation contract.
    pub fn snapshot_entries(&mut self, lo: u64, hi: u64) -> Result<RangeReply, ClientError> {
        match self.call(ReqBody::SnapshotScan {
            lo,
            hi,
            count_only: false,
        })? {
            RespBody::Entries {
                count,
                entries,
                truncated,
            } => Ok(RangeReply {
                entries,
                count,
                truncated,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to write a durable checkpoint to its configured
    /// `--checkpoint-dir`; returns `(generation, entries)`. Servers
    /// without a checkpoint directory answer a typed error
    /// ([`ClientError::Remote`]).
    pub fn checkpoint(&mut self) -> Result<(u64, u64), ClientError> {
        match self.call(ReqBody::Checkpoint)? {
            RespBody::CheckpointDone {
                generation,
                entries,
            } => Ok((generation, entries)),
            other => Err(unexpected(&other)),
        }
    }

    /// Server counters plus per-shard operation totals.
    pub fn stats(&mut self) -> Result<crate::proto::ServerStatsWire, ClientError> {
        match self.call(ReqBody::Stats)? {
            RespBody::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(body: &RespBody) -> ClientError {
    ClientError::Protocol(DecodeError {
        id: None,
        code: StatusCode::Internal,
        msg: format!("unexpected response body {body:?}"),
    })
}

/// A [`ConcurrentMap`] whose operations travel over the wire: each
/// session owns one pooled
/// [`ReconnectingClient`](crate::retry::ReconnectingClient) connection,
/// so the open-loop driver measures request→response round trips
/// through the real server stack (framing, worker loop, sharded
/// session, and back) — and survives server restarts and `Busy`
/// shedding mid-run, with every retry's cost landing in the measured
/// latency (see `retry.rs` for the latency-honesty contract).
///
/// Sessions check connections back into the pool on drop, so repeated
/// pin/drop cycles (as the drivers do between batches) reuse sockets
/// instead of re-dialing.
///
/// # Panics
///
/// [`pin`](ConcurrentMap::pin) and the session operations panic on
/// *final* errors (typed server errors, protocol breakage, exhausted
/// retry deadlines): the `MapSession` interface has no error channel,
/// and a load generator that silently drops failed operations would
/// fabricate latency data — failing loudly is the honest option.
/// Transient failures are the retry layer's job, not a panic.
#[derive(Debug)]
pub struct NetMap {
    addr: SocketAddr,
    policy: crate::retry::RetryPolicy,
    pool: Mutex<Vec<crate::retry::ReconnectingClient>>,
    count_only_scans: bool,
}

impl NetMap {
    /// Resolve `addr` and validate it with one ping; the validated
    /// connection seeds the pool. Uses the default
    /// [`RetryPolicy`](crate::retry::RetryPolicy).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_policy(addr, crate::retry::RetryPolicy::default())
    }

    /// Like [`connect`](Self::connect) with an explicit retry policy
    /// for every pooled connection (`pnb-load` surfaces the knobs as
    /// `--retry-deadline-ms` / `--retry-mutations`).
    pub fn connect_with_policy(
        addr: impl ToSocketAddrs,
        policy: crate::retry::RetryPolicy,
    ) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut probe = crate::retry::ReconnectingClient::with_policy(addr, policy);
        probe.ping()?;
        Ok(NetMap {
            addr,
            policy,
            pool: Mutex::new(vec![probe]),
            count_only_scans: false,
        })
    }

    /// Make sessions issue COUNT_ONLY range scans (only the count
    /// crosses the wire) instead of the default entry transfer.
    ///
    /// The default measures what the in-process adapters measure —
    /// materialized entries, serialization and transfer included — so
    /// E11↔E14 range latencies compare like for like. Flip this on only
    /// to isolate traversal cost from result marshalling.
    pub fn count_only_scans(mut self, enabled: bool) -> Self {
        self.count_only_scans = enabled;
        self
    }

    /// The resolved server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self) -> crate::retry::ReconnectingClient {
        if let Some(c) = self.pool.lock().expect("pool lock").pop() {
            return c;
        }
        // Lazy: the new client dials (with retry) on its first call.
        crate::retry::ReconnectingClient::with_policy(self.addr, self.policy)
    }
}

impl ConcurrentMap for NetMap {
    type Session<'a> = NetSession<'a>;

    fn pin(&self) -> NetSession<'_> {
        NetSession {
            map: self,
            client: Some(self.checkout()),
        }
    }

    fn capabilities(&self) -> Caps {
        Caps::all()
    }

    fn name(&self) -> &'static str {
        "pnb-sharded-net"
    }
}

/// One worker's connection to the server (see [`NetMap`]).
#[derive(Debug)]
pub struct NetSession<'a> {
    map: &'a NetMap,
    /// `Some` for the session's whole life; taken only by `Drop`.
    client: Option<crate::retry::ReconnectingClient>,
}

impl NetSession<'_> {
    fn client(&mut self) -> &mut crate::retry::ReconnectingClient {
        self.client.as_mut().expect("client present until drop")
    }
}

impl MapSession for NetSession<'_> {
    fn insert(&mut self, k: u64, v: u64) -> bool {
        self.client().insert(k, v).expect("insert over the wire")
    }

    fn upsert(&mut self, k: u64, v: u64) -> Option<u64> {
        self.client().upsert(k, v).expect("upsert over the wire")
    }

    fn delete(&mut self, k: &u64) -> bool {
        self.client().delete(*k).expect("delete over the wire")
    }

    fn get(&mut self, k: &u64) -> Option<u64> {
        self.client().get(*k).expect("get over the wire")
    }

    fn range_scan(&mut self, lo: &u64, hi: &u64) -> usize {
        if self.map.count_only_scans {
            return self
                .client()
                .range_count(*lo, *hi)
                .expect("range over the wire") as usize;
        }
        // Entry transfer is the measured default: the in-process
        // adapters materialize entries, so the over-the-wire latency
        // must pay serialization and transfer too or E11↔E14 range
        // comparisons are apples-to-oranges. A truncated reply would
        // under-count that cost — fail loudly per this adapter's
        // contract instead of fabricating comparable-looking numbers.
        let (lo, hi) = (*lo, *hi);
        let reply = self
            .client()
            .range_entries(lo, hi)
            .expect("range over the wire");
        assert!(
            !reply.truncated,
            "range [{lo}, {hi}] truncated at {} of {} entries: narrow the range \
             or opt into NetMap::count_only_scans",
            reply.entries.len(),
            reply.count,
        );
        reply.count as usize
    }

    /// No-op: the *server's* workers refresh their epoch-pinned
    /// sessions on their own cadence; the client holds no epochs, so
    /// there is nothing to re-pin on this side of the wire.
    fn refresh(&mut self) {}

    /// Ship the whole batch as one `Batch` frame: one round trip and
    /// one server-side fused `apply_batch` instead of `ops.len()`
    /// round trips. Descent telemetry does not cross the wire, so the
    /// report conservatively claims no sharing (`root_descents ==
    /// ops`): over the network the batching win is round-trip
    /// amortization, which lands in measured throughput and latency,
    /// not in `ops_per_descent`.
    fn apply_batch(&mut self, ops: &[workload::BatchOp]) -> workload::BatchReport {
        let subs: Vec<BatchSubOp> = ops
            .iter()
            .map(|op| match *op {
                workload::BatchOp::Get(k) => BatchSubOp::Get { key: k },
                workload::BatchOp::Insert(k, v) => BatchSubOp::Insert { key: k, value: v },
                workload::BatchOp::Upsert(k, v) => BatchSubOp::Upsert { key: k, value: v },
                workload::BatchOp::Delete(k) => BatchSubOp::Delete { key: k },
            })
            .collect();
        let results = self.client().batch(&subs).expect("batch over the wire");
        assert_eq!(
            results.len(),
            subs.len(),
            "batch results match ops positionally"
        );
        workload::BatchReport {
            ops: ops.len() as u64,
            root_descents: ops.len() as u64,
        }
    }
}

impl Drop for NetSession<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.client.take() {
            self.map.pool.lock().expect("pool lock").push(c);
        }
    }
}
