//! The TCP server: a nonblocking accept loop feeding a fixed pool of
//! worker threads, each owning a long-lived [`ShardedSession`](pnb_shard::ShardedSession).
//!
//! ## Threading model
//!
//! Thread-per-core, not thread-per-connection: `workers` threads are
//! spawned once (default: available parallelism, capped at 8) and every
//! accepted connection is handed to one of them round-robin. A worker
//! multiplexes its connections with nonblocking reads — no per-request
//! thread, no locks on the request path, and exactly one epoch-pinned
//! session per worker, amortized over every request it will ever serve.
//!
//! ## Session refresh
//!
//! A long-lived session pins the epoch; if it never re-pins, no memory
//! retired after the pin is ever reclaimed. Each worker therefore calls
//! [`ShardedSession::refresh`](pnb_shard::ShardedSession::refresh) every [`ServerConfig::refresh_every`]
//! operations — and on every idle pass, so an *idle* worker cannot
//! wedge reclamation for the busy ones. `refresh` drops all shard
//! handles before re-pinning (the pin count must reach zero —
//! `Guard::repin` is a no-op while sibling guards exist; DESIGN.md §6).
//!
//! ## Graceful shutdown
//!
//! [`ShutdownHandle::signal`] (wired to SIGTERM/SIGINT by the
//! `pnb-server` binary) stops the accept loop; workers keep serving for
//! a [`ServerConfig::drain_grace`] window — so every request already
//! sent (including pipelined ones still in socket buffers) is read,
//! executed, and answered — then flush, close their connections, drop
//! their sessions (releasing the epoch pins), and exit.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnb_shard::ShardedPnbBst;

use crate::codec::{decode_request, encode_decode_error, encode_response};
use crate::conn::{Conn, ReadOutcome};
use crate::handler::handle;
use crate::proto::MAX_PAYLOAD;
use crate::stats::ServerStats;

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Shards in the served [`ShardedPnbBst`].
    pub shards: usize,
    /// Worker threads (0 = available parallelism, capped at 8).
    pub workers: usize,
    /// Refresh each worker's session after this many operations.
    pub refresh_every: u64,
    /// Per-frame payload ceiling (defaults to the protocol-wide
    /// [`MAX_PAYLOAD`]).
    pub max_payload: usize,
    /// How long workers keep serving after shutdown is signalled.
    pub drain_grace: Duration,
    /// Where the `Checkpoint` opcode writes its generations; `None`
    /// refuses the opcode with a typed error.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load the map from the newest committed checkpoint in
    /// `checkpoint_dir` at bind time instead of starting empty. The
    /// restored checkpoint's shard count and partitioner configuration
    /// win over [`shards`](Self::shards). Fails loudly (bind error) when
    /// no loadable checkpoint exists — a silently empty restore would
    /// masquerade as data loss.
    pub restore: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 8,
            workers: 0,
            refresh_every: 256,
            max_payload: MAX_PAYLOAD,
            drain_grace: Duration::from_millis(200),
            checkpoint_dir: None,
            restore: false,
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8)
    }
}

/// Cloneable shutdown trigger for a running [`Server`].
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to drain and exit (idempotent).
    pub fn signal(&self) {
        // Relaxed: the flag is polled; no data is published through it.
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_signalled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bound-but-not-yet-running server. [`run`](Server::run) blocks the
/// calling thread; [`spawn`](Server::spawn) runs it on its own thread
/// (tests, benchmarks, the e14 experiment).
pub struct Server {
    listener: TcpListener,
    map: ShardedPnbBst<u64, u64>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and build the
    /// map; no thread runs until [`run`](Self::run).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Self> {
        assert!(cfg.shards > 0, "a server needs at least one shard");
        let map = if cfg.restore {
            let dir = cfg.checkpoint_dir.as_deref().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--restore requires --checkpoint-dir",
                )
            })?;
            ShardedPnbBst::restore(dir)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        } else {
            ShardedPnbBst::new(cfg.shards)
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            map,
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server counters (live; also served by the Stats opcode).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A trigger that makes [`run`](Self::run) drain and return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve until shutdown is signalled, then drain and return.
    pub fn run(self) -> io::Result<()> {
        let workers = self.cfg.resolved_workers();
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut receivers: Vec<Receiver<TcpStream>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let map = &self.map;
        let stats = &*self.stats;
        let cfg = &self.cfg;
        let shutdown = &*self.shutdown;
        let mut accept_err: Option<io::Error> = None;
        std::thread::scope(|s| {
            for rx in receivers.drain(..) {
                s.spawn(move || worker_loop(rx, map, stats, shutdown, cfg));
            }
            let mut next = 0usize;
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if configure(&stream).is_err() {
                            continue; // peer already gone
                        }
                        stats.accepted();
                        // Senders live until the loop ends, so a worker
                        // can only observe disconnect after shutdown.
                        let _ = senders[next % workers].send(stream);
                        next = next.wrapping_add(1);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                    Err(e) => {
                        // Fatal listener error: drain and report.
                        accept_err = Some(e);
                        shutdown.store(true, Ordering::Relaxed);
                    }
                }
            }
            // Final sweep: connections already established (sitting in
            // the OS accept backlog) when shutdown arrived are still
            // adopted, so anything a client sent on an established
            // connection is served during the drain.
            // (Errors — WouldBlock included — mean the backlog is empty.)
            while let Ok((stream, _peer)) = self.listener.accept() {
                if configure(&stream).is_err() {
                    continue;
                }
                stats.accepted();
                let _ = senders[next % workers].send(stream);
                next = next.wrapping_add(1);
            }
            drop(senders); // workers see Disconnected and start draining
        });
        match accept_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Run on a fresh thread; returns the bound address, the shutdown
    /// trigger, and the join handle yielding [`run`](Self::run)'s
    /// result.
    pub fn spawn(
        self,
    ) -> io::Result<(
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<io::Result<()>>,
    )> {
        let addr = self.local_addr()?;
        let handle = self.shutdown_handle();
        let join = std::thread::spawn(move || self.run());
        Ok((addr, handle, join))
    }
}

fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)
}

/// One worker: multiplex the connections routed here over a single
/// long-lived session.
fn worker_loop(
    rx: Receiver<TcpStream>,
    map: &ShardedPnbBst<u64, u64>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    let mut session = map.pin();
    let mut conns: Vec<Conn> = Vec::new();
    let mut ops_since_refresh = 0u64;
    // Set when shutdown is first observed; serving continues until it
    // passes so already-sent (pipelined) requests are still answered.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Intake: adopt newly accepted connections.
        let mut intake_open = true;
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn::new(stream, cfg.max_payload)),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                    break;
                }
            }
        }
        if drain_deadline.is_none() && (shutdown.load(Ordering::Relaxed) || !intake_open) {
            drain_deadline = Some(Instant::now() + cfg.drain_grace);
        }

        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            let mut dead = false;
            let conn = &mut conns[i];
            match conn.read_ready() {
                Ok(ReadOutcome::Open { progressed: p }) => progressed |= p,
                Ok(ReadOutcome::Eof) => {
                    // Peer finished sending; answer what's buffered,
                    // flush, then close.
                    conn.begin_close();
                }
                Err(_) => dead = true,
            }
            if !dead {
                // Serve every complete frame buffered so far.
                loop {
                    match conn.next_frame() {
                        Ok(Some(frame)) => {
                            progressed = true;
                            match decode_request(&frame) {
                                Ok(req) => {
                                    stats.request();
                                    let resp = handle(
                                        &req,
                                        &session,
                                        stats,
                                        cfg.checkpoint_dir.as_deref(),
                                    );
                                    conn.queue(&encode_response(req.body.opcode(), &resp));
                                    ops_since_refresh += 1;
                                }
                                Err(e) => {
                                    // Malformed but framable (bad
                                    // version/opcode/payload): typed
                                    // error, then close this connection
                                    // only.
                                    stats.protocol_error();
                                    conn.queue(&encode_decode_error(&e));
                                    conn.begin_close();
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Unframeable stream (bad magic, oversized
                            // length): error frame, close.
                            stats.protocol_error();
                            conn.queue(&encode_decode_error(&e));
                            conn.begin_close();
                            break;
                        }
                    }
                }
                match conn.flush() {
                    Ok(_) => {}
                    Err(_) => dead = true,
                }
            }
            if dead || conns[i].done() {
                conns.swap_remove(i);
                stats.closed();
            } else {
                i += 1;
            }
        }

        if ops_since_refresh >= cfg.refresh_every {
            session.refresh();
            ops_since_refresh = 0;
        }

        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
        if !progressed {
            // Idle: re-pin so an idle worker never wedges reclamation,
            // then yield the CPU briefly.
            session.refresh();
            ops_since_refresh = 0;
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Drain expired: flush leftovers best-effort and close everything.
    for mut conn in conns {
        conn.begin_close();
        let _ = conn.flush();
        stats.closed();
    }
    // `session` drops here: the worker's epoch pins are released.
    drop(session);
}
