//! The TCP server: a nonblocking accept loop feeding a fixed pool of
//! worker threads, each owning a long-lived [`ShardedSession`](pnb_shard::ShardedSession).
//!
//! ## Threading model
//!
//! Thread-per-core, not thread-per-connection: `workers` threads are
//! spawned once (default: available parallelism, capped at 8) and every
//! accepted connection is handed to one of them round-robin. A worker
//! multiplexes its connections with nonblocking reads — no per-request
//! thread, no locks on the request path, and exactly one epoch-pinned
//! session per worker, amortized over every request it will ever serve.
//!
//! ## Session refresh
//!
//! A long-lived session pins the epoch; if it never re-pins, no memory
//! retired after the pin is ever reclaimed. Each worker therefore calls
//! [`ShardedSession::refresh`](pnb_shard::ShardedSession::refresh) every [`ServerConfig::refresh_every`]
//! operations — and on every idle pass, so an *idle* worker cannot
//! wedge reclamation for the busy ones. `refresh` drops all shard
//! handles before re-pinning (the pin count must reach zero —
//! `Guard::repin` is a no-op while sibling guards exist; DESIGN.md §6).
//!
//! ## Graceful shutdown
//!
//! [`ShutdownHandle::signal`] (wired to SIGTERM/SIGINT by the
//! `pnb-server` binary) stops the accept loop; workers keep serving for
//! a [`ServerConfig::drain_grace`] window — so every request already
//! sent (including pipelined ones still in socket buffers) is read,
//! executed, and answered — then flush, close their connections, drop
//! their sessions (releasing the epoch pins), and exit.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnb_shard::ShardedPnbBst;

use crate::codec::{decode_request, encode_decode_error, encode_response, Frame};
use crate::conn::{Conn, ReadOutcome};
use crate::handler::handle;
use crate::proto::{Opcode, RespBody, Response, MAX_PAYLOAD};
use crate::stats::ServerStats;

/// Admission weight of a raw, not-yet-decoded frame: `Batch` frames
/// count their contained sub-operations (the leading `u32` of the
/// payload), everything else counts 1. The shed path refuses frames
/// *before* decoding, so the weight comes from a cheap peek; the count
/// is clamped to what the payload could plausibly hold (a sub-op costs
/// at least 5 header bytes), so a lying count cannot inflate the shed
/// counter past the frame's actual size. The serve path re-derives the
/// weight from the decoded ops instead.
fn frame_op_weight(frame: &Frame) -> u64 {
    if frame.opcode == Opcode::Batch as u8 && frame.payload.len() >= 4 {
        let count = u32::from_le_bytes(frame.payload[0..4].try_into().expect("4 bytes")) as u64;
        let plausible = (frame.payload.len() as u64 - 4) / 5;
        count.min(plausible).max(1)
    } else {
        1
    }
}

/// Overload-protection limits, applied **per worker** (each worker owns
/// its connections exclusively, so the accounting needs no atomics).
///
/// Two independent bounds, shed with a typed [`Busy`](RespBody::Busy)
/// frame when either is crossed, plus the per-connection slow-reader
/// policy (see `conn.rs` and DESIGN.md §10):
///
/// - **In-flight requests** ([`max_inflight`](Self::max_inflight)):
///   complete frames buffered across the worker's connections at the
///   start of a serve pass. A pipelining client that floods faster than
///   the worker serves gets `Busy` for the excess instead of unbounded
///   queueing delay.
/// - **Queued response bytes** ([`max_queued_bytes`](Self::max_queued_bytes)):
///   the sum of pending-write buffers. Large range responses to slow
///   readers are bounded in aggregate, not just per connection.
///
/// A `Busy` response means the operation was **not executed** — it is
/// always safe to retry, mutations included.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Complete buffered frames a worker will serve ahead of a request
    /// before shedding it. Must exceed the deepest pipeline a
    /// well-behaved client sends in one burst.
    pub max_inflight: usize,
    /// Cap on the sum of a worker's pending-write buffers, bytes.
    pub max_queued_bytes: usize,
    /// Per-connection pending-write cap, bytes. At or above it the
    /// connection is write-paused: not read from, not served.
    pub max_conn_pending_write: usize,
    /// How long a connection may stay continuously write-paused before
    /// the worker disconnects it (the slow-reader policy).
    pub stall_window: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 4096,
            max_queued_bytes: 8 << 20,
            max_conn_pending_write: 256 << 10,
            stall_window: Duration::from_secs(5),
        }
    }
}

impl AdmissionConfig {
    /// The retry-after hint carried in a `Busy` payload: a coarse
    /// estimate of how long the backlog above the limit takes to drain,
    /// clamped to `[1, 1000]` ms. `backlog` is the number of requests
    /// queued ahead of the shed one.
    pub fn retry_after_hint_ms(&self, backlog: usize) -> u64 {
        // Assume a conservative ~100k ops/s/worker drain rate: 10 µs
        // per queued request, rounded up to at least 1 ms.
        let over = backlog.saturating_sub(self.max_inflight);
        ((over as u64 * 10).div_ceil(1000)).clamp(1, 1000)
    }
}

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Shards in the served [`ShardedPnbBst`].
    pub shards: usize,
    /// Worker threads (0 = available parallelism, capped at 8).
    pub workers: usize,
    /// Refresh each worker's session after this many operations.
    pub refresh_every: u64,
    /// Per-frame payload ceiling (defaults to the protocol-wide
    /// [`MAX_PAYLOAD`]).
    pub max_payload: usize,
    /// How long workers keep serving after shutdown is signalled.
    pub drain_grace: Duration,
    /// Where the `Checkpoint` opcode writes its generations; `None`
    /// refuses the opcode with a typed error.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load the map from the newest committed checkpoint in
    /// `checkpoint_dir` at bind time instead of starting empty. The
    /// restored checkpoint's shard count and partitioner configuration
    /// win over [`shards`](Self::shards). Fails loudly (bind error) when
    /// no loadable checkpoint exists — a silently empty restore would
    /// masquerade as data loss.
    pub restore: bool,
    /// Per-worker overload limits (admission control + slow-reader
    /// policy).
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 8,
            workers: 0,
            refresh_every: 256,
            max_payload: MAX_PAYLOAD,
            drain_grace: Duration::from_millis(200),
            checkpoint_dir: None,
            restore: false,
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8)
    }
}

/// Cloneable shutdown trigger for a running [`Server`].
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// A fresh, unsignalled handle (for components that reuse the
    /// polled-flag pattern, e.g. the chaos proxy).
    pub(crate) fn fresh() -> Self {
        ShutdownHandle(Arc::new(AtomicBool::new(false)))
    }

    /// Ask the server to drain and exit (idempotent).
    pub fn signal(&self) {
        // Relaxed: the flag is polled; no data is published through it.
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_signalled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bound-but-not-yet-running server. [`run`](Server::run) blocks the
/// calling thread; [`spawn`](Server::spawn) runs it on its own thread
/// (tests, benchmarks, the e14 experiment).
pub struct Server {
    listener: TcpListener,
    map: ShardedPnbBst<u64, u64>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and build the
    /// map; no thread runs until [`run`](Self::run).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Self> {
        assert!(cfg.shards > 0, "a server needs at least one shard");
        let map = if cfg.restore {
            let dir = cfg.checkpoint_dir.as_deref().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--restore requires --checkpoint-dir",
                )
            })?;
            ShardedPnbBst::restore(dir)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        } else {
            ShardedPnbBst::new(cfg.shards)
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            map,
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server counters (live; also served by the Stats opcode).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A trigger that makes [`run`](Self::run) drain and return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve until shutdown is signalled, then drain and return.
    pub fn run(self) -> io::Result<()> {
        let workers = self.cfg.resolved_workers();
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut receivers: Vec<Receiver<TcpStream>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let map = &self.map;
        let stats = &*self.stats;
        let cfg = &self.cfg;
        let shutdown = &*self.shutdown;
        let mut accept_err: Option<io::Error> = None;
        std::thread::scope(|s| {
            for rx in receivers.drain(..) {
                s.spawn(move || worker_loop(rx, map, stats, shutdown, cfg));
            }
            let mut next = 0usize;
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if configure(&stream).is_err() {
                            continue; // peer already gone
                        }
                        stats.accepted();
                        // Senders live until the loop ends, so a worker
                        // can only observe disconnect after shutdown.
                        let _ = senders[next % workers].send(stream);
                        next = next.wrapping_add(1);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                    Err(e) => {
                        // Fatal listener error: drain and report.
                        accept_err = Some(e);
                        shutdown.store(true, Ordering::Relaxed);
                    }
                }
            }
            // Final sweep: connections already established (sitting in
            // the OS accept backlog) when shutdown arrived are still
            // adopted, so anything a client sent on an established
            // connection is served during the drain.
            // (Errors — WouldBlock included — mean the backlog is empty.)
            while let Ok((stream, _peer)) = self.listener.accept() {
                if configure(&stream).is_err() {
                    continue;
                }
                stats.accepted();
                let _ = senders[next % workers].send(stream);
                next = next.wrapping_add(1);
            }
            drop(senders); // workers see Disconnected and start draining
        });
        match accept_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Run on a fresh thread; returns the bound address, the shutdown
    /// trigger, and the join handle yielding [`run`](Self::run)'s
    /// result.
    pub fn spawn(
        self,
    ) -> io::Result<(
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<io::Result<()>>,
    )> {
        let addr = self.local_addr()?;
        let handle = self.shutdown_handle();
        let join = std::thread::spawn(move || self.run());
        Ok((addr, handle, join))
    }
}

fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)
}

/// One worker: multiplex the connections routed here over a single
/// long-lived session, under the per-worker admission limits.
///
/// Each pass is two-phase. **Phase A** adopts new connections and
/// reads from every connection that is not write-paused, then counts
/// the backlog of complete buffered frames. **Phase B** serves, with
/// overload protection applied per frame:
///
/// - At most [`AdmissionConfig::max_inflight`] requests are *executed*
///   per pass; the rest of the backlog is answered with typed
///   [`Busy`](RespBody::Busy) frames carrying a retry-after hint —
///   answered in request order, never silently dropped, never executed.
/// - Once the worker's total queued response bytes reach
///   [`AdmissionConfig::max_queued_bytes`], further frames are shed the
///   same way (a `Busy` frame is ~28 bytes; shedding still bounds
///   growth because reading pauses per connection at the write cap).
/// - A connection whose pending-write buffer sits at its cap stops
///   being read or served (so its memory is bounded by
///   `cap + one response`), and is disconnected once it has been
///   continuously paused longer than [`AdmissionConfig::stall_window`].
fn worker_loop(
    rx: Receiver<TcpStream>,
    map: &ShardedPnbBst<u64, u64>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    let admission = cfg.admission;
    let mut session = map.pin();
    let mut conns: Vec<Conn> = Vec::new();
    let mut ops_since_refresh = 0u64;
    // Set when shutdown is first observed; serving continues until it
    // passes so already-sent (pipelined) requests are still answered.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Phase A: adopt newly accepted connections, then read.
        let mut intake_open = true;
        loop {
            match rx.try_recv() {
                Ok(stream) => conns.push(Conn::new(
                    stream,
                    cfg.max_payload,
                    admission.max_conn_pending_write,
                )),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                    break;
                }
            }
        }
        if drain_deadline.is_none() && (shutdown.load(Ordering::Relaxed) || !intake_open) {
            drain_deadline = Some(Instant::now() + cfg.drain_grace);
        }

        let mut progressed = false;
        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let mut dead = false;
            if conn.stalled_beyond(now, admission.stall_window) {
                // Slow-reader policy: continuously over the write cap
                // for longer than the stall window — disconnect.
                stats.slow_reader_disconnect();
                dead = true;
            } else if !conn.write_paused() {
                match conn.read_ready() {
                    Ok(ReadOutcome::Open { progressed: p }) => progressed |= p,
                    Ok(ReadOutcome::Eof) => {
                        // Peer finished sending; answer what's
                        // buffered, flush, then close.
                        conn.begin_close();
                    }
                    Err(_) => dead = true,
                }
            }
            if dead {
                conns.swap_remove(i);
                stats.closed();
            } else {
                i += 1;
            }
        }
        let mut backlog: usize = conns.iter().map(Conn::buffered_frames).sum();
        let mut queued_bytes: usize = conns.iter().map(Conn::pending_write_bytes).sum();
        let busy_hint = admission.retry_after_hint_ms(backlog);

        // Phase B: serve the backlog under the admission budget.
        let mut serve_budget = admission.max_inflight;
        let mut i = 0;
        while i < conns.len() {
            let mut dead = false;
            let conn = &mut conns[i];
            // Serve complete frames buffered on this connection, until
            // its write side pauses.
            while !conn.write_paused() {
                match conn.next_frame() {
                    Ok(Some(frame)) => {
                        progressed = true;
                        backlog = backlog.saturating_sub(1);
                        crate::failpoint::hit("worker-frame", conn);
                        if conn.is_closing() {
                            break; // failpoint closed the connection
                        }
                        let shed = serve_budget == 0 || queued_bytes >= admission.max_queued_bytes;
                        if shed {
                            // Over the admission limit: answer (in
                            // order) with a typed Busy frame instead of
                            // executing. The op did NOT run — always
                            // safe to retry.
                            if let Some(op) = crate::proto::Opcode::from_u8(frame.opcode) {
                                stats.shed_n(frame_op_weight(&frame));
                                let resp = Response {
                                    id: frame.id,
                                    body: RespBody::Busy {
                                        retry_after_ms: busy_hint,
                                    },
                                };
                                let bytes = encode_response(op, &resp);
                                queued_bytes += bytes.len();
                                conn.queue(&bytes);
                                continue;
                            }
                            // Unknown opcode: fall through so the
                            // decode path answers with the typed
                            // BadOpcode error and closes.
                        }
                        match decode_request(&frame) {
                            Ok(req) => {
                                // Budget is op-granular: a 64-op batch
                                // spends 64 slots, so batching cannot
                                // smuggle load past admission control.
                                serve_budget =
                                    serve_budget.saturating_sub(req.body.op_weight() as usize);
                                stats.request();
                                let resp =
                                    handle(&req, &session, stats, cfg.checkpoint_dir.as_deref());
                                let bytes = encode_response(req.body.opcode(), &resp);
                                queued_bytes += bytes.len();
                                conn.queue(&bytes);
                                ops_since_refresh += 1;
                            }
                            Err(e) => {
                                // Malformed but framable (bad
                                // version/opcode/payload): typed
                                // error, then close this connection
                                // only.
                                stats.protocol_error();
                                let bytes = encode_decode_error(&e);
                                queued_bytes += bytes.len();
                                conn.queue(&bytes);
                                conn.begin_close();
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Unframeable stream (bad magic, oversized
                        // length): error frame, close.
                        stats.protocol_error();
                        let bytes = encode_decode_error(&e);
                        queued_bytes += bytes.len();
                        conn.queue(&bytes);
                        conn.begin_close();
                        break;
                    }
                }
            }
            let before = conn.pending_write_bytes();
            stats.note_conn_pending(before as u64);
            match conn.flush() {
                // Saturating: belt-and-braces against any queue path
                // that didn't add to `queued_bytes` — an accounting
                // slip must never panic the worker.
                Ok(_) => {
                    queued_bytes = queued_bytes.saturating_sub(before - conn.pending_write_bytes());
                }
                Err(_) => dead = true,
            }
            if dead || conns[i].done() {
                conns.swap_remove(i);
                stats.closed();
            } else {
                i += 1;
            }
        }
        let _ = backlog; // fully accounted; kept for the hint above

        if ops_since_refresh >= cfg.refresh_every {
            session.refresh();
            ops_since_refresh = 0;
        }

        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
        if !progressed {
            // Idle: re-pin so an idle worker never wedges reclamation,
            // then yield the CPU briefly.
            session.refresh();
            ops_since_refresh = 0;
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Drain expired: flush leftovers best-effort and close everything.
    for mut conn in conns {
        conn.begin_close();
        let _ = conn.flush();
        stats.closed();
    }
    // `session` drops here: the worker's epoch pins are released.
    drop(session);
}
