//! # pnb-server — a network front-end for the sharded PNB-BST
//!
//! Everything below `crates/server` serves one question: what do the
//! paper's wait-free range queries cost when the map sits behind a
//! socket instead of a function call? The answer needs a server whose
//! own design doesn't drown the structure being measured, so:
//!
//! * **Length-prefixed binary protocol** ([`proto`], [`codec`]): a
//!   fixed 20-byte header (magic, version, opcode, status, flags,
//!   request id, payload length) and all-`u64` payloads — no parsing
//!   ambiguity, no allocation on the point-op path, pipelining for
//!   free via the echoed request id.
//! * **Thread-per-core workers** ([`server`]): a nonblocking accept
//!   loop hands connections round-robin to a fixed worker pool; each
//!   worker multiplexes its connections and owns **one long-lived
//!   [`pnb_shard::ShardedSession`]**, refreshed every N ops and on
//!   idle passes so a long-lived server never wedges epoch reclamation
//!   (DESIGN.md §6: the session must drop *all* shard handles before
//!   re-pinning).
//! * **Typed error frames** ([`codec::DecodeError`]): malformed input
//!   gets a status-coded error response and closes *that* connection
//!   only — a fuzzer on one socket cannot disturb its neighbours.
//! * **Graceful drain** ([`server::ShutdownHandle`]): SIGTERM stops
//!   accepting, workers answer everything already sent (pipelined
//!   requests included), flush, release their epoch pins, and exit.
//!
//! Two binaries ship with the crate: `pnb-server` (the daemon) and
//! `pnb-load` (an open-loop, coordinated-omission-free load driver
//! built on `workload::run_open_loop` over [`client::NetMap`]).
//! Experiment e14 in the bench crate sweeps offered rates through this
//! stack on loopback. DESIGN.md §8 documents the wire format.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod client;
pub mod codec;
pub mod conn;
mod failpoint;
pub mod handler;
pub mod proto;
pub mod retry;
pub mod server;
pub mod stats;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{Client, ClientError, NetMap, NetSession, RangeReply};
pub use codec::{
    decode_request, decode_response, encode_request, encode_response, DecodeError, Frame, FrameBuf,
};
pub use proto::{
    BatchSubOp, BatchSubResult, Opcode, ReqBody, Request, RespBody, Response, ServerStatsWire,
    StatusCode,
};
pub use retry::{ReconnectingClient, RetryPolicy};
pub use server::{AdmissionConfig, Server, ServerConfig, ShutdownHandle};
pub use stats::{ServerStats, ServerStatsSnapshot};
