//! `pnb-chaos` — a fault-injecting TCP proxy for `pnb-server`.
//!
//! ```text
//! pnb-chaos --upstream HOST:PORT [--addr 127.0.0.1:0] [--addr-file PATH]
//!           [--seed 0] [--delay-prob F] [--delay-ms N] [--split-prob F]
//!           [--corrupt-prob F] [--truncate-prob F] [--reset-prob F]
//! ```
//!
//! Sits between a client and a server, forwarding bytes while
//! injecting delays, partial writes, frame truncation, byte corruption,
//! and connection resets from a seeded deterministic plan (see
//! `pnb_server::chaos`). With all probabilities at their zero defaults
//! it is a faithful pass-through. `ci/chaos_smoke.sh` drives `pnb-load`
//! through this proxy to prove the failure contract end to end.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pnb_server::{ChaosConfig, ChaosProxy};

/// Set from the signal handler; polled by main. Relaxed is enough: the
/// flag is the only thing communicated.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from the platform libc — declared directly so the
    /// offline workspace needs no `libc` crate. `sighandler_t` is a
    /// plain function pointer, passed as `usize`.
    fn signal(signum: i32, handler: usize) -> usize;
}

fn install_signal_handlers() {
    // SAFETY: `on_signal` is async-signal-safe (one relaxed atomic
    // store) and has the C signature `signal` expects.
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pnb-chaos --upstream HOST:PORT [--addr HOST:PORT] [--addr-file PATH] \
         [--seed N] [--delay-prob F] [--delay-ms N] [--split-prob F] \
         [--corrupt-prob F] [--truncate-prob F] [--reset-prob F]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:0");
    let mut upstream = String::new();
    let mut addr_file: Option<String> = None;
    let mut cfg = ChaosConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => listen = take("--addr"),
            "--upstream" => upstream = take("--upstream"),
            "--addr-file" => addr_file = Some(take("--addr-file")),
            "--seed" => cfg.seed = parse(&take("--seed"), "--seed"),
            "--delay-prob" => cfg.delay_prob = parse(&take("--delay-prob"), "--delay-prob"),
            "--delay-ms" => cfg.delay_ms = parse(&take("--delay-ms"), "--delay-ms"),
            "--split-prob" => cfg.split_prob = parse(&take("--split-prob"), "--split-prob"),
            "--corrupt-prob" => cfg.corrupt_prob = parse(&take("--corrupt-prob"), "--corrupt-prob"),
            "--truncate-prob" => {
                cfg.truncate_prob = parse(&take("--truncate-prob"), "--truncate-prob")
            }
            "--reset-prob" => cfg.reset_prob = parse(&take("--reset-prob"), "--reset-prob"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if upstream.is_empty() {
        eprintln!("--upstream is required");
        usage();
    }

    let proxy = match ChaosProxy::bind(listen.as_str(), upstream.as_str(), cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pnb-chaos: cannot bind {listen} in front of {upstream}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = proxy.local_addr().expect("bound listener has an address");
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, bound.to_string()) {
            eprintln!("pnb-chaos: cannot write --addr-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "pnb-chaos proxying {bound} -> {upstream} (seed {})",
        cfg.seed
    );

    install_signal_handlers();
    let (_, shutdown, join) = match proxy.spawn() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pnb-chaos: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    while !SHUTDOWN.load(Ordering::Relaxed) && !join.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    shutdown.signal();
    match join.join() {
        Ok(Ok(())) => {
            println!("pnb-chaos: bye");
            ExitCode::SUCCESS
        }
        Ok(Err(e)) => {
            eprintln!("pnb-chaos: listener error: {e}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("pnb-chaos: proxy thread panicked");
            ExitCode::FAILURE
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {name} value: {s}");
        usage();
    })
}
