//! `pnb-load` — open-loop load driver for a running `pnb-server`.
//!
//! ```text
//! pnb-load --addr HOST:PORT [--threads 2] [--rate 10000]
//!          [--duration-ms 2000] [--keys 65536]
//!          [--dist scrambled-zipf|zipf|uniform] [--theta 0.99]
//!          [--mix point|range|update|find] [--prefill 0.5] [--seed 42]
//!          [--json PATH] [--interval-log PATH]
//! pnb-load --addr HOST:PORT --checkpoint-now
//! pnb-load --addr HOST:PORT --count
//! pnb-load --addr HOST:PORT --fill N
//! ```
//!
//! `--retry-deadline-ms` and `--retry-mutations` configure the
//! self-healing connection layer (see `pnb_server::retry`): transient
//! resets and `Busy` shedding are retried inside each call's deadline
//! budget, with the retry time landing in the measured latency. Every
//! failure path exits nonzero with a one-line typed message — a panic
//! hook turns even a worker-thread failure into one line, not a
//! backtrace.
//!
//! Reuses `workload::run_open_loop` over the [`pnb_server::NetMap`]
//! adapter: arrivals on a fixed schedule, latency measured from each
//! operation's *intended* start (coordinated-omission-free), per-class
//! HDR histograms. Emits a human summary on stdout; `--json` writes
//! rows in the same schema as experiments e11/e14 (`offered_rate`,
//! `achieved_rate`, `p50_ns`, `p99_ns`, `p999_ns`, …); `--interval-log`
//! appends per-interval `{"t_secs", "achieved_rate", "p50_ns",
//! "p99_ns"}` JSONL rows so saturation collapses are visible in time,
//! not averaged away.
//!
//! Two one-shot modes support the checkpoint smoke test (CI): with
//! `--checkpoint-now` the driver connects, triggers one durable
//! checkpoint on a server started with `--checkpoint-dir`, prints
//! `pnb-load: checkpoint generation=N entries=M`, and exits; with
//! `--count` it prints `pnb-load: count=N` (a full-range count) and
//! exits. Both skip the open-loop engine entirely.

use std::process::ExitCode;
use std::time::Duration;

use pnb_server::{NetMap, ReconnectingClient, RetryPolicy};
use workload::json::{JsonLog, Val};
use workload::{run_open_loop, IntervalLogConfig, KeyDist, Mix, OpenLoopConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pnb-load --addr HOST:PORT [--threads N] [--rate OPS_PER_SEC] \
         [--duration-ms MS] [--keys N] [--dist scrambled-zipf|zipf|uniform] \
         [--theta F] [--mix point|range|update|find] [--prefill F] [--seed N] \
         [--json PATH] [--interval-log PATH] \
         [--retry-deadline-ms MS] [--retry-mutations]\n\
         \x20      pnb-load --addr HOST:PORT --checkpoint-now | --count | --fill N"
    );
    std::process::exit(2);
}

/// Turn any panic — the `NetMap` sessions fail loudly on final
/// transport errors, including from worker threads — into a one-line
/// typed message and a nonzero exit, never a backtrace.
fn install_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown failure".to_string());
        // One line, no location, no backtrace: scripts grep this.
        eprintln!("pnb-load: fatal: {msg}");
        std::process::exit(1);
    }));
}

struct Opts {
    addr: String,
    threads: usize,
    rate: f64,
    duration: Duration,
    keys: u64,
    dist: String,
    theta: f64,
    mix: String,
    prefill: f64,
    seed: u64,
    json: Option<String>,
    interval_log: Option<String>,
    checkpoint_now: bool,
    count: bool,
    fill: Option<u64>,
    retry_deadline: Duration,
    retry_mutations: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: String::new(),
            threads: 2,
            rate: 10_000.0,
            duration: Duration::from_millis(2_000),
            keys: 65_536,
            dist: "scrambled-zipf".into(),
            theta: 0.99,
            mix: "point".into(),
            prefill: 0.5,
            seed: 42,
            json: None,
            interval_log: None,
            checkpoint_now: false,
            count: false,
            fill: None,
            retry_deadline: Duration::from_secs(10),
            retry_mutations: false,
        }
    }
}

fn parse_args() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => o.addr = take("--addr"),
            "--threads" => o.threads = parse(&take("--threads"), "--threads"),
            "--rate" => o.rate = parse(&take("--rate"), "--rate"),
            "--duration-ms" => {
                o.duration = Duration::from_millis(parse(&take("--duration-ms"), "--duration-ms"))
            }
            "--keys" => o.keys = parse(&take("--keys"), "--keys"),
            "--dist" => o.dist = take("--dist"),
            "--theta" => o.theta = parse(&take("--theta"), "--theta"),
            "--mix" => o.mix = take("--mix"),
            "--prefill" => o.prefill = parse(&take("--prefill"), "--prefill"),
            "--seed" => o.seed = parse(&take("--seed"), "--seed"),
            "--json" => o.json = Some(take("--json")),
            "--interval-log" => o.interval_log = Some(take("--interval-log")),
            "--checkpoint-now" => o.checkpoint_now = true,
            "--count" => o.count = true,
            "--fill" => o.fill = Some(parse(&take("--fill"), "--fill")),
            "--retry-deadline-ms" => {
                o.retry_deadline = Duration::from_millis(parse(
                    &take("--retry-deadline-ms"),
                    "--retry-deadline-ms",
                ))
            }
            "--retry-mutations" => o.retry_mutations = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if o.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    o
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {name} value: {s}");
        usage();
    })
}

impl Opts {
    fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            call_deadline: self.retry_deadline,
            retry_mutations: self.retry_mutations,
            seed: self.seed,
            ..RetryPolicy::default()
        }
    }
}

/// `--fill N`: insert keys `0..N` through the self-healing client
/// (set-semantics inserts are safe to retry, so mutation retries are
/// forced on) and report how many were acknowledged. The chaos smoke
/// drives this through faults and then checks the server's count
/// against the acknowledged number — zero lost acknowledged ops.
fn run_fill(o: &Opts, n: u64) -> ExitCode {
    let addr = match o.addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pnb-load: bad --addr {}: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut c = ReconnectingClient::with_policy(
        addr,
        RetryPolicy {
            retry_mutations: true,
            ..o.policy()
        },
    );
    let mut acked = 0u64;
    for k in 0..n {
        match c.insert(k, k) {
            Ok(_) => acked += 1,
            Err(e) => {
                eprintln!("pnb-load: fill stopped at key {k}: {e}");
                println!("pnb-load: fill acked={acked} of {n}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("pnb-load: fill acked={acked} of {n}");
    ExitCode::SUCCESS
}

/// One-shot administrative modes (`--checkpoint-now`, `--count`): a
/// bare [`pnb_server::Client`], one request, one greppable stdout line.
fn run_one_shot(o: &Opts) -> ExitCode {
    let mut c = match pnb_server::Client::connect(o.addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pnb-load: cannot reach {}: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };
    if o.checkpoint_now {
        match c.checkpoint() {
            Ok((generation, entries)) => {
                println!("pnb-load: checkpoint generation={generation} entries={entries}");
            }
            Err(e) => {
                eprintln!("pnb-load: checkpoint failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if o.count {
        match c.range_count(0, u64::MAX) {
            Ok(n) => println!("pnb-load: count={n}"),
            Err(e) => {
                eprintln!("pnb-load: count failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    install_panic_hook();
    let o = parse_args();
    if let Some(n) = o.fill {
        return run_fill(&o, n);
    }
    if o.checkpoint_now || o.count {
        return run_one_shot(&o);
    }
    let key_dist = match o.dist.as_str() {
        "uniform" => KeyDist::uniform(o.keys),
        "zipf" => KeyDist::zipfian(o.keys, o.theta),
        "scrambled-zipf" => KeyDist::scrambled_zipfian(o.keys, o.theta),
        other => {
            eprintln!("unknown --dist {other} (uniform|zipf|scrambled-zipf)");
            usage();
        }
    };
    // The same shapes e14 sweeps: point = 25i/25u(del)/50f, range adds
    // 10% width-100 scans, update is insert/delete only; find is a
    // read-only mix (keeps map content fixed — checkpoint smoke uses it
    // to apply load across a kill -9 without changing the key set).
    let mix = match o.mix.as_str() {
        "point" => Mix::new(25, 25, 50, 0, 0),
        "range" => Mix::new(20, 20, 50, 10, 100),
        "update" => Mix::new(50, 50, 0, 0, 0),
        "find" => Mix::new(0, 0, 100, 0, 0),
        other => {
            eprintln!("unknown --mix {other} (point|range|update|find)");
            usage();
        }
    };

    let map = match NetMap::connect_with_policy(o.addr.as_str(), o.policy()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("pnb-load: cannot reach {}: {e}", o.addr);
            return ExitCode::FAILURE;
        }
    };

    let cfg = OpenLoopConfig {
        threads: o.threads,
        target_rate: o.rate,
        duration: o.duration,
        key_dist,
        mix,
        prefill_fraction: o.prefill,
        seed: o.seed,
        interval_log: o.interval_log.as_ref().map(IntervalLogConfig::new),
    };
    eprintln!(
        "pnb-load: {} threads offering {:.0} ops/s of `{}` at {} for {:?}",
        o.threads, o.rate, o.mix, o.addr, o.duration
    );
    let m = match run_open_loop(&map, &cfg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("pnb-load: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{}: offered {:.0} ops/s, achieved {:.0} ops/s over {:.2}s ({} ops)",
        m.name, m.offered_rate, m.achieved_rate, m.elapsed_secs, m.total_ops
    );
    println!("| op | samples | p50_ns | p99_ns | p999_ns | max_ns |");
    println!("|---|---|---|---|---|---|");
    let mut log = JsonLog::new();
    for c in &m.classes {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            c.class, c.count, c.p50_ns, c.p99_ns, c.p999_ns, c.max_ns
        );
        log.push(
            "pnb-load",
            &[
                ("structure", Val::s(&m.name)),
                ("threads", Val::U(m.threads as u64)),
                ("key_range", Val::U(o.keys)),
                ("mix", Val::s(&o.mix)),
                ("offered_rate", Val::F(m.offered_rate)),
                ("achieved_rate", Val::F(m.achieved_rate)),
                ("elapsed_secs", Val::F(m.elapsed_secs)),
                ("op", Val::s(&c.class)),
                ("samples", Val::U(c.count)),
                ("p50_ns", Val::U(c.p50_ns)),
                ("p99_ns", Val::U(c.p99_ns)),
                ("p999_ns", Val::U(c.p999_ns)),
                ("max_ns", Val::U(c.max_ns)),
            ],
        );
    }
    if let Some(path) = &o.json {
        let threads = std::thread::available_parallelism().map_or(0, |n| n.get());
        if let Err(e) = std::fs::write(path, log.render("pnb-load", threads)) {
            eprintln!("pnb-load: cannot write --json {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("pnb-load: wrote {} rows to {path}", log.len());
    }
    if let Some(path) = &o.interval_log {
        eprintln!("pnb-load: interval rows appended to {path}");
    }
    ExitCode::SUCCESS
}
