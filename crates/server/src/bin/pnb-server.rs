//! `pnb-server` — serve a sharded PNB-BST over TCP.
//!
//! ```text
//! pnb-server [--addr 127.0.0.1:7878] [--shards 8] [--workers 0]
//!            [--refresh-every 256] [--addr-file PATH]
//!            [--checkpoint-dir PATH] [--restore]
//!            [--max-inflight N] [--max-queued-kb N]
//!            [--conn-write-cap-kb N] [--stall-ms N]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--addr-file` writes
//! the actual bound address to a file so scripts (CI's server-smoke
//! step) can discover it. SIGINT/SIGTERM trigger a graceful drain:
//! in-flight and already-pipelined requests are answered, connections
//! flushed and closed, sessions dropped, and the process exits 0.
//!
//! `--checkpoint-dir` enables the `Checkpoint` opcode (clients trigger
//! durable checkpoints of the live map into that directory);
//! `--restore` additionally loads the newest committed checkpoint at
//! startup — the restored shard count and partitioner configuration
//! override `--shards`. Restoring from a directory with no loadable
//! checkpoint is a startup failure, not an empty map.
//!
//! The `--max-inflight` / `--max-queued-kb` / `--conn-write-cap-kb` /
//! `--stall-ms` flags tune the per-worker admission limits and the
//! slow-reader policy (DESIGN.md §10); requests past the limits are
//! answered with typed `Busy` frames, and connections that stay over
//! their write cap longer than the stall window are disconnected.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pnb_server::{Server, ServerConfig};

/// Set from the signal handler; polled by main. Relaxed is enough: the
/// flag is the only thing communicated.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from the platform libc — declared directly so the
    /// offline workspace needs no `libc` crate. `sighandler_t` is a
    /// plain function pointer, passed as `usize`.
    fn signal(signum: i32, handler: usize) -> usize;
}

fn install_signal_handlers() {
    // SAFETY: `on_signal` is async-signal-safe (one relaxed atomic
    // store) and has the C signature `signal` expects.
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pnb-server [--addr HOST:PORT] [--shards N] [--workers N] \
         [--refresh-every N] [--addr-file PATH] [--checkpoint-dir PATH] [--restore] \
         [--max-inflight N] [--max-queued-kb N] [--conn-write-cap-kb N] [--stall-ms N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7878");
    let mut cfg = ServerConfig::default();
    let mut addr_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--shards" => cfg.shards = parse(&take("--shards"), "--shards"),
            "--workers" => cfg.workers = parse(&take("--workers"), "--workers"),
            "--refresh-every" => {
                cfg.refresh_every = parse(&take("--refresh-every"), "--refresh-every")
            }
            "--addr-file" => addr_file = Some(take("--addr-file")),
            "--checkpoint-dir" => {
                cfg.checkpoint_dir = Some(std::path::PathBuf::from(take("--checkpoint-dir")))
            }
            "--restore" => cfg.restore = true,
            "--max-inflight" => {
                cfg.admission.max_inflight = parse(&take("--max-inflight"), "--max-inflight")
            }
            "--max-queued-kb" => {
                cfg.admission.max_queued_bytes =
                    parse::<usize>(&take("--max-queued-kb"), "--max-queued-kb") * 1024
            }
            "--conn-write-cap-kb" => {
                cfg.admission.max_conn_pending_write =
                    parse::<usize>(&take("--conn-write-cap-kb"), "--conn-write-cap-kb") * 1024
            }
            "--stall-ms" => {
                cfg.admission.stall_window =
                    Duration::from_millis(parse(&take("--stall-ms"), "--stall-ms"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let server = match Server::bind(&addr, cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pnb-server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, bound.to_string()) {
            eprintln!("pnb-server: cannot write --addr-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "pnb-server listening on {bound} ({} shards, {} workers)",
        cfg.shards,
        if cfg.workers == 0 {
            "auto".to_string()
        } else {
            cfg.workers.to_string()
        }
    );

    install_signal_handlers();
    let (_, shutdown, join) = match server.spawn() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pnb-server: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    while !SHUTDOWN.load(Ordering::Relaxed) && !join.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    shutdown.signal();
    match join.join() {
        Ok(Ok(())) => {
            println!("pnb-server: drained, bye");
            ExitCode::SUCCESS
        }
        Ok(Err(e)) => {
            eprintln!("pnb-server: listener error: {e}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("pnb-server: server thread panicked");
            ExitCode::FAILURE
        }
    }
}

fn usage_missing(name: &str) -> ! {
    eprintln!("{name} needs a value");
    usage();
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {name} value: {s}");
        usage();
    })
}
