//! Self-healing client: [`ReconnectingClient`] wraps a [`Client`] with
//! transparent reconnection (bounded exponential backoff + jitter),
//! automatic retries, and a per-call deadline budget.
//!
//! ## Retry / idempotency matrix
//!
//! | Failure                  | Idempotent op¹ | Mutation² |
//! |--------------------------|----------------|-----------|
//! | `Busy` frame             | retry (honours the server's hint) | retry — the op was **not executed** |
//! | Transport error (reset, timeout, EOF) | retry after reconnect | fail, unless [`RetryPolicy::retry_mutations`] |
//! | Typed error frame / protocol error | fail — the server *answered*; retrying repeats the outcome | fail |
//!
//! ¹ ping, get, contains, range, snapshot scan, stats.
//! ² insert, upsert, delete, checkpoint — a transport error after
//! `send` leaves it unknown whether the mutation executed, so retrying
//! risks double application; callers that only issue set-semantics or
//! otherwise idempotent mutations can opt in.
//!
//! ## Latency honesty
//!
//! Every retry, backoff sleep, and reconnect happens *inside* the call,
//! bounded by [`RetryPolicy::call_deadline`] — so when the open-loop
//! engine measures a call, retry time lands in the histogram instead of
//! being coordinated-omission'd away. A call that cannot complete
//! within the budget returns [`ClientError::DeadlineExceeded`] carrying
//! the last underlying failure.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use workload::seed::splitmix64;

use crate::client::{Client, ClientError, RangeReply};
use crate::proto::{BatchSubOp, BatchSubResult, ServerStatsWire};

/// Tuning for [`ReconnectingClient`]: backoff shape, deadline budget,
/// and whether mutations retry across transport errors.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First reconnect/retry backoff; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Backoff ceiling (growth is capped here).
    pub max_backoff: Duration,
    /// Per-call budget covering every attempt, sleep, and reconnect.
    pub call_deadline: Duration,
    /// TCP connect timeout per dial attempt.
    pub connect_timeout: Duration,
    /// Retry mutations (insert/upsert/delete/checkpoint) across
    /// *transport* errors. Off by default: a reset after `send` leaves
    /// it unknown whether the mutation executed. (`Busy` retries are
    /// always on — a shed op was never executed.)
    pub retry_mutations: bool,
    /// Seed for the jitter stream (deterministic backoff in tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            call_deadline: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            retry_mutations: false,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): exponential
    /// from [`base_backoff`](Self::base_backoff), capped at
    /// [`max_backoff`](Self::max_backoff), with ±25% deterministic
    /// jitter drawn from `jitter_state` so a fleet of clients does not
    /// reconnect in lockstep.
    pub fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let base = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        *jitter_state = jitter_state.wrapping_add(1);
        let roll = splitmix64(self.seed ^ *jitter_state);
        // Map the roll to [0.75, 1.25).
        let factor = 0.75 + (roll >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        base.mul_f64(factor)
    }
}

/// Whether an op may be blindly re-sent after a *transport* error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    /// Safe to repeat: re-execution cannot change the outcome.
    Idempotent,
    /// Re-execution may double-apply; retried only by policy opt-in.
    Mutation,
}

/// A [`Client`] that survives resets: reconnects with bounded
/// exponential backoff + jitter, honours `Busy` retry hints, retries
/// idempotent operations across transport errors (mutations by
/// opt-in), and bounds the whole affair with a per-call deadline.
///
/// Construction is lazy — no dialing happens until the first call — so
/// a client built while the server is still starting (or mid-restart)
/// simply connects when it first needs to.
#[derive(Debug)]
pub struct ReconnectingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    client: Option<Client>,
    jitter_state: u64,
}

impl ReconnectingClient {
    /// Build against `addr` with the default [`RetryPolicy`].
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// Build against `addr` with an explicit policy.
    pub fn with_policy(addr: SocketAddr, policy: RetryPolicy) -> Self {
        ReconnectingClient {
            addr,
            policy,
            client: None,
            jitter_state: 0,
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Whether a connection is currently established (diagnostics; the
    /// next call reconnects on demand either way).
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Sleep for `wanted`, but never past `deadline`; `Err` when the
    /// budget is already exhausted.
    fn bounded_sleep(wanted: Duration, deadline: Instant) -> Result<(), ()> {
        let now = Instant::now();
        if now >= deadline {
            return Err(());
        }
        std::thread::sleep(wanted.min(deadline - now));
        Ok(())
    }

    /// Ensure a live connection, dialing with backoff until `deadline`.
    fn ensure_connected(&mut self, deadline: Instant) -> Result<(), ClientError> {
        let mut attempt = 0u32;
        let mut last: Option<io::Error> = None;
        while self.client.is_none() {
            if Instant::now() >= deadline {
                return Err(self.deadline_error(last.map(|e| e.to_string())));
            }
            match Client::connect_with_timeout(&self.addr, self.policy.connect_timeout) {
                Ok(c) => self.client = Some(c),
                Err(e) => {
                    last = Some(e);
                    let wait = self.policy.backoff(attempt, &mut self.jitter_state);
                    attempt = attempt.saturating_add(1);
                    if Self::bounded_sleep(wait, deadline).is_err() {
                        return Err(self.deadline_error(last.map(|e| e.to_string())));
                    }
                }
            }
        }
        Ok(())
    }

    fn deadline_error(&self, last: Option<String>) -> ClientError {
        ClientError::DeadlineExceeded {
            budget: self.policy.call_deadline,
            last: last.unwrap_or_else(|| "no attempt completed".to_string()),
        }
    }

    /// Run `op` with the full retry discipline (see the module docs).
    fn with_retry<T>(
        &mut self,
        class: OpClass,
        op: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.policy.call_deadline;
        let mut attempt = 0u32;
        loop {
            self.ensure_connected(deadline)?;
            let client = self.client.as_mut().expect("ensure_connected filled it");
            match op(client) {
                Ok(v) => return Ok(v),
                Err(ClientError::Busy { retry_after_ms }) => {
                    // The op was NOT executed — always retryable. Honour
                    // the server's hint (plus jitter) so a shedding
                    // server isn't hammered in lockstep.
                    let hint = Duration::from_millis(retry_after_ms.max(1));
                    let jitter = self.policy.backoff(0, &mut self.jitter_state);
                    if Self::bounded_sleep(hint + jitter / 4, deadline).is_err() {
                        return Err(
                            self.deadline_error(Some(format!("busy (hint {retry_after_ms} ms)")))
                        );
                    }
                }
                Err(ClientError::Io(e)) => {
                    // The connection is in an unknown state (a response
                    // may be half-read): drop it; any retry re-dials.
                    self.client = None;
                    let retryable = class == OpClass::Idempotent || self.policy.retry_mutations;
                    if !retryable {
                        return Err(ClientError::Io(e));
                    }
                    let wait = self.policy.backoff(attempt, &mut self.jitter_state);
                    attempt = attempt.saturating_add(1);
                    if Self::bounded_sleep(wait, deadline).is_err() {
                        return Err(self.deadline_error(Some(e.to_string())));
                    }
                }
                // The server *answered* (typed error) or spoke garbage:
                // retrying would repeat the outcome or talk to a broken
                // peer — surface it.
                Err(other) => return Err(other),
            }
        }
    }

    /// Liveness probe (idempotent: auto-retried).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retry(OpClass::Idempotent, Client::ping)
    }

    /// Point lookup (idempotent: auto-retried).
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ClientError> {
        self.with_retry(OpClass::Idempotent, |c| c.get(key))
    }

    /// Membership test (idempotent: auto-retried).
    pub fn contains(&mut self, key: u64) -> Result<bool, ClientError> {
        self.with_retry(OpClass::Idempotent, |c| c.contains(key))
    }

    /// Set-semantics insert (mutation: transport-error retry only by
    /// [`RetryPolicy::retry_mutations`]; `Busy` retries always on).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<bool, ClientError> {
        self.with_retry(OpClass::Mutation, |c| c.insert(key, value))
    }

    /// Insert-or-replace (mutation; see [`insert`](Self::insert)).
    pub fn upsert(&mut self, key: u64, value: u64) -> Result<Option<u64>, ClientError> {
        self.with_retry(OpClass::Mutation, |c| c.upsert(key, value))
    }

    /// Remove (mutation; see [`insert`](Self::insert)).
    pub fn delete(&mut self, key: u64) -> Result<bool, ClientError> {
        self.with_retry(OpClass::Mutation, |c| c.delete(key))
    }

    /// Batched point operations in one round trip. Classed as a
    /// mutation when any sub-op mutates — a transport error leaves the
    /// whole batch's effect unknown, exactly like a lone insert — so
    /// an all-read batch auto-retries and a mixed one only retries
    /// under [`RetryPolicy::retry_mutations`]. (`Busy` sheds never
    /// executed anything and always retry.)
    pub fn batch(&mut self, ops: &[BatchSubOp]) -> Result<Vec<BatchSubResult>, ClientError> {
        let mutates = ops.iter().any(|op| {
            matches!(
                op,
                BatchSubOp::Insert { .. } | BatchSubOp::Upsert { .. } | BatchSubOp::Delete { .. }
            )
        });
        let class = if mutates {
            OpClass::Mutation
        } else {
            OpClass::Idempotent
        };
        self.with_retry(class, |c| c.batch(ops))
    }

    /// Count keys in `[lo, hi]` (idempotent: auto-retried).
    pub fn range_count(&mut self, lo: u64, hi: u64) -> Result<u64, ClientError> {
        self.with_retry(OpClass::Idempotent, |c| c.range_count(lo, hi))
    }

    /// Fetch entries in `[lo, hi]` (idempotent: auto-retried).
    pub fn range_entries(&mut self, lo: u64, hi: u64) -> Result<RangeReply, ClientError> {
        self.with_retry(OpClass::Idempotent, |c| c.range_entries(lo, hi))
    }

    /// Snapshot-consistent entries in `[lo, hi]` (idempotent:
    /// auto-retried — each retry takes a *fresh* snapshot).
    pub fn snapshot_entries(&mut self, lo: u64, hi: u64) -> Result<RangeReply, ClientError> {
        self.with_retry(OpClass::Idempotent, |c| c.snapshot_entries(lo, hi))
    }

    /// Durable checkpoint (mutation-classed: a repeated checkpoint
    /// writes an extra generation; opt in via
    /// [`RetryPolicy::retry_mutations`] if that is acceptable).
    pub fn checkpoint(&mut self) -> Result<(u64, u64), ClientError> {
        self.with_retry(OpClass::Mutation, Client::checkpoint)
    }

    /// Server counters (idempotent: auto-retried).
    pub fn stats(&mut self) -> Result<ServerStatsWire, ClientError> {
        self.with_retry(OpClass::Idempotent, Client::stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let a: Vec<Duration> = (0..8).map(|i| p.backoff(i, &mut s1)).collect();
        let b: Vec<Duration> = (0..8).map(|i| p.backoff(i, &mut s2)).collect();
        assert_eq!(a, b, "same seed, same jitter stream");
        for (i, d) in a.iter().enumerate() {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(200));
            assert!(
                *d >= nominal.mul_f64(0.75) && *d < nominal.mul_f64(1.25),
                "attempt {i}: {d:?} outside ±25% of {nominal:?}"
            );
        }
        // Capped region actually engages.
        assert!(a[7] <= Duration::from_millis(250));
    }

    #[test]
    fn deadline_bounds_connect_to_a_dead_address() {
        // A port nothing listens on: bind-then-drop guarantees it was
        // recently free and nothing is listening now.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut c = ReconnectingClient::with_policy(
            dead,
            RetryPolicy {
                call_deadline: Duration::from_millis(300),
                base_backoff: Duration::from_millis(20),
                connect_timeout: Duration::from_millis(100),
                ..RetryPolicy::default()
            },
        );
        let t0 = Instant::now();
        match c.ping() {
            Err(ClientError::DeadlineExceeded { budget, .. }) => {
                assert_eq!(budget, Duration::from_millis(300));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "deadline must bound the call, took {elapsed:?}"
        );
    }
}
