//! Per-connection state for the nonblocking worker loop: a read-side
//! [`FrameBuf`], a write-side pending buffer with partial-write
//! handling, and an explicit closing state ("flush what's queued, then
//! close") used both for protocol-error closes and graceful drain.
//!
//! ## Slow-reader policy
//!
//! The pending-write buffer is *bounded*: each connection carries a
//! `write_cap` and is considered **write-paused** while its buffer
//! holds at least that many bytes. The worker loop stops reading from
//! (and serving) a paused connection — so a peer that never drains its
//! socket cannot grow the buffer past `cap + one response` — and
//! [`stalled_beyond`](Conn::stalled_beyond) tracks how long the
//! connection has continuously been paused so the worker can disconnect
//! it after the configured stall window. A reader that drains below the
//! cap resets the clock. DESIGN.md §10 states the policy.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::codec::{DecodeError, Frame, FrameBuf};

/// How much to ask the socket for per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// One client connection, owned by exactly one worker.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    frames: FrameBuf,
    /// Bytes queued for the peer; `wpos..` is still unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Flush the write buffer, then close (no further reads served).
    closing: bool,
    /// Pending-write bound: at or above this, the connection is
    /// write-paused (not read from, not served).
    write_cap: usize,
    /// When the connection *entered* the current write-paused stretch;
    /// `None` while under the cap.
    stalled_since: Option<Instant>,
}

/// What a read pass observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Connection open; zero or more bytes buffered.
    Open {
        /// Whether any new bytes arrived (progress indicator for the
        /// worker's idle heuristic).
        progressed: bool,
    },
    /// Peer closed its write side (EOF).
    Eof,
}

impl Conn {
    /// Wrap an accepted stream. The caller has already configured
    /// nonblocking mode and `TCP_NODELAY`. `write_cap` bounds the
    /// pending-write buffer (see the module docs for the policy).
    pub fn new(stream: TcpStream, max_payload: usize, write_cap: usize) -> Self {
        Conn {
            stream,
            frames: FrameBuf::with_max_payload(max_payload),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            write_cap,
            stalled_since: None,
        }
    }

    /// Drain everything the socket currently has into the frame buffer.
    pub fn read_ready(&mut self) -> io::Result<ReadOutcome> {
        if self.closing {
            return Ok(ReadOutcome::Open { progressed: false });
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    self.frames.feed(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Open { progressed });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pull the next complete request frame (`Ok(None)`: need bytes).
    /// Once the connection is closing, buffered frames are no longer
    /// served.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if self.closing {
            return Ok(None);
        }
        self.frames.next_frame()
    }

    /// Complete frames buffered and awaiting service (the admission
    /// layer's per-connection in-flight count).
    pub fn buffered_frames(&self) -> usize {
        if self.closing {
            return 0;
        }
        self.frames.complete_frames()
    }

    /// Queue response bytes for the peer.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Push queued bytes to the socket, tolerating partial writes;
    /// returns whether everything queued has been sent.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Whether bytes are still queued for the peer.
    pub fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Bytes queued for the peer and not yet accepted by the socket.
    pub fn pending_write_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether the pending-write buffer is at or over its cap: the
    /// worker must neither read from nor serve this connection until
    /// the peer drains it.
    pub fn write_paused(&self) -> bool {
        self.pending_write_bytes() >= self.write_cap
    }

    /// Update the stall clock and report whether this connection has
    /// now been continuously write-paused for longer than `window`
    /// (the slow-reader disconnect criterion). Dropping under the cap
    /// resets the clock.
    pub fn stalled_beyond(&mut self, now: Instant, window: Duration) -> bool {
        if !self.write_paused() {
            self.stalled_since = None;
            return false;
        }
        let since = *self.stalled_since.get_or_insert(now);
        now.duration_since(since) > window
    }

    /// Enter the closing state: what is queued still flushes, nothing
    /// further is read or served.
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// Whether this connection is in the closing state.
    pub fn is_closing(&self) -> bool {
        self.closing
    }

    /// Closing and fully flushed: safe to drop.
    pub fn done(&self) -> bool {
        self.closing && !self.has_pending_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A nonblocking server-side stream paired with a blocking peer.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        server.set_nodelay(true).expect("nodelay");
        (server, peer)
    }

    #[test]
    fn partial_writes_flush_incrementally_under_a_slow_reader() {
        let (server, mut peer) = pair();
        let mut conn = Conn::new(server, 1 << 20, usize::MAX);
        // Queue well past any kernel buffer so flush() must see
        // WouldBlock and make partial progress across passes.
        let total = 8 << 20;
        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        conn.queue(&payload);
        assert_eq!(conn.pending_write_bytes(), total);

        let mut received = Vec::with_capacity(total);
        let mut chunk = vec![0u8; 64 * 1024];
        let mut saw_partial = false;
        while received.len() < total {
            // One nonblocking flush pass, then the throttled peer
            // drains a single chunk.
            let done = conn.flush().expect("flush");
            if !done {
                saw_partial = true;
            }
            if conn.pending_write_bytes() == 0 && received.len() + chunk.len() < total {
                // Everything queued is in the kernel; keep reading.
            }
            let n = peer.read(&mut chunk).expect("peer read");
            assert!(n > 0, "peer saw EOF early");
            received.extend_from_slice(&chunk[..n]);
        }
        assert!(saw_partial, "8 MiB must not fit the socket in one pass");
        assert_eq!(received, payload, "bytes survive partial-write flushing");
        assert!(!conn.has_pending_write());
    }

    #[test]
    fn closing_with_pending_drains_then_done() {
        let (server, mut peer) = pair();
        let mut conn = Conn::new(server, 1 << 20, usize::MAX);
        let payload = vec![7u8; 4 << 20];
        conn.queue(&payload);
        conn.begin_close();
        assert!(conn.is_closing());
        assert!(
            !conn.done(),
            "closing && pending: must keep draining, not drop"
        );
        // No frames are served once closing, even if bytes arrive.
        assert!(conn.next_frame().expect("no decode error").is_none());

        let mut received = 0usize;
        let mut chunk = vec![0u8; 64 * 1024];
        while received < payload.len() {
            let _ = conn.flush().expect("flush while closing");
            let n = peer.read(&mut chunk).expect("peer read");
            received += n;
        }
        // Everything the peer will ever get is out; the final flush
        // observes the empty buffer and `done()` flips.
        while !conn.flush().expect("final flush") {
            std::thread::yield_now();
        }
        assert!(conn.done(), "closing && !pending: safe to drop");
    }

    #[test]
    fn write_pause_engages_at_the_cap_and_clears_on_drain() {
        let (server, mut peer) = pair();
        let cap = 32 * 1024;
        let mut conn = Conn::new(server, 1 << 20, cap);
        assert!(!conn.write_paused());
        conn.queue(&vec![1u8; cap - 1]);
        assert!(!conn.write_paused(), "below cap: still serving");
        conn.queue(&[1u8]);
        assert!(conn.write_paused(), "at cap: paused");

        let t0 = Instant::now();
        let window = Duration::from_millis(200);
        assert!(
            !conn.stalled_beyond(t0, window),
            "pause just began: not stalled yet"
        );
        assert!(
            conn.stalled_beyond(t0 + Duration::from_millis(201), window),
            "continuously paused past the window: stalled"
        );

        // Drain: flush into the kernel, peer reads everything.
        while conn.pending_write_bytes() > 0 {
            let _ = conn.flush().expect("flush");
            let mut chunk = vec![0u8; 64 * 1024];
            let _ = peer.read(&mut chunk).expect("peer read");
        }
        assert!(!conn.write_paused());
        assert!(
            !conn.stalled_beyond(t0 + Duration::from_secs(5), window),
            "draining below the cap resets the stall clock"
        );
    }

    #[test]
    fn stall_clock_resets_when_reader_recovers_mid_window() {
        let (server, _peer) = pair();
        let cap = 1024;
        let mut conn = Conn::new(server, 1 << 20, cap);
        let t0 = Instant::now();
        let window = Duration::from_millis(100);
        conn.queue(&vec![0u8; cap]);
        assert!(!conn.stalled_beyond(t0, window));
        // Simulate the peer draining it (steal the buffer directly so
        // the kernel isn't involved): under cap, clock resets …
        conn.wbuf.clear();
        conn.wpos = 0;
        assert!(!conn.stalled_beyond(t0 + Duration::from_millis(90), window));
        // … so pausing again starts a fresh window from *now*.
        conn.queue(&vec![0u8; cap]);
        assert!(!conn.stalled_beyond(t0 + Duration::from_millis(150), window));
        assert!(conn.stalled_beyond(t0 + Duration::from_millis(260), window));
    }
}
