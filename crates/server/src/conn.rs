//! Per-connection state for the nonblocking worker loop: a read-side
//! [`FrameBuf`], a write-side pending buffer with partial-write
//! handling, and an explicit closing state ("flush what's queued, then
//! close") used both for protocol-error closes and graceful drain.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::codec::{DecodeError, Frame, FrameBuf};

/// How much to ask the socket for per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// One client connection, owned by exactly one worker.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    frames: FrameBuf,
    /// Bytes queued for the peer; `wpos..` is still unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Flush the write buffer, then close (no further reads served).
    closing: bool,
}

/// What a read pass observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Connection open; zero or more bytes buffered.
    Open {
        /// Whether any new bytes arrived (progress indicator for the
        /// worker's idle heuristic).
        progressed: bool,
    },
    /// Peer closed its write side (EOF).
    Eof,
}

impl Conn {
    /// Wrap an accepted stream. The caller has already configured
    /// nonblocking mode and `TCP_NODELAY`.
    pub fn new(stream: TcpStream, max_payload: usize) -> Self {
        Conn {
            stream,
            frames: FrameBuf::with_max_payload(max_payload),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
        }
    }

    /// Drain everything the socket currently has into the frame buffer.
    pub fn read_ready(&mut self) -> io::Result<ReadOutcome> {
        if self.closing {
            return Ok(ReadOutcome::Open { progressed: false });
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    self.frames.feed(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Open { progressed });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pull the next complete request frame (`Ok(None)`: need bytes).
    /// Once the connection is closing, buffered frames are no longer
    /// served.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if self.closing {
            return Ok(None);
        }
        self.frames.next_frame()
    }

    /// Queue response bytes for the peer.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Push queued bytes to the socket, tolerating partial writes;
    /// returns whether everything queued has been sent.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Whether bytes are still queued for the peer.
    pub fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Enter the closing state: what is queued still flushes, nothing
    /// further is read or served.
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// Whether this connection is in the closing state.
    pub fn is_closing(&self) -> bool {
        self.closing
    }

    /// Closing and fully flushed: safe to drop.
    pub fn done(&self) -> bool {
        self.closing && !self.has_pending_write()
    }
}
