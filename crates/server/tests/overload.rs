//! Overload-protection contract, end to end over real sockets:
//!
//! 1. Past the admission limit every excess request is answered with a
//!    typed `Busy` frame — none executed, none silently dropped.
//! 2. The `Busy` payload carries a nonzero retry-after hint.
//! 3. A deliberately stalled reader is write-paused (its memory bounded
//!    by the per-connection cap plus one response) and disconnected
//!    after the stall window, without disturbing sibling connections.

use std::time::{Duration, Instant};

use pnb_server::{
    AdmissionConfig, Client, ClientError, ReqBody, RespBody, Server, ServerConfig, ShutdownHandle,
};

fn start(cfg: ServerConfig) -> (std::net::SocketAddr, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let (addr, handle, _join) = server.spawn().expect("spawn");
    (addr, handle)
}

#[test]
fn excess_pipelined_requests_get_typed_busy_not_silence() {
    let (addr, shutdown) = start(ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            // Serve two per pass; a 500-deep burst must shed.
            max_inflight: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    let total = 500u64;
    for k in 0..total {
        c.send(ReqBody::Insert { key: k, value: k }).expect("send");
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    let mut min_hint = u64::MAX;
    for _ in 0..total {
        match c.recv() {
            Ok((_id, RespBody::Bool(_))) => ok += 1,
            Ok((id, other)) => panic!("request {id}: unexpected body {other:?}"),
            Err(ClientError::Busy { retry_after_ms }) => {
                busy += 1;
                min_hint = min_hint.min(retry_after_ms);
            }
            Err(e) => panic!("unexpected error mid-burst: {e}"),
        }
    }
    assert_eq!(ok + busy, total, "every request answered, none dropped");
    assert!(
        busy > 0,
        "a 500-deep burst against max_inflight=2 must shed"
    );
    assert!(ok >= 2, "the admission budget itself must still be served");
    assert!(
        min_hint >= 1,
        "Busy hints are at least 1 ms, got {min_hint}"
    );

    // The server's own ledger agrees with what crossed the wire.
    let mut probe = Client::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.shed, busy, "wire-visible Busy count == stats.shed");
    shutdown.signal();
}

#[test]
fn shed_operations_were_never_executed() {
    let (addr, shutdown) = start(ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            max_inflight: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    let total = 300u64;
    for k in 0..total {
        c.send(ReqBody::Insert { key: k, value: k }).expect("send");
    }
    let mut inserted = 0u64;
    for _ in 0..total {
        match c.recv() {
            Ok((_, RespBody::Bool(true))) => inserted += 1,
            Ok((_, RespBody::Bool(false))) => panic!("distinct keys cannot collide"),
            Ok((id, other)) => panic!("request {id}: unexpected body {other:?}"),
            Err(ClientError::Busy { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // Busy == not executed: the map holds exactly the acknowledged
    // inserts, so retrying the shed ones can never double-apply.
    let count = c.range_count(0, u64::MAX).expect("count");
    assert_eq!(count, inserted, "map contents == acknowledged inserts");
    shutdown.signal();
}

#[test]
fn stalled_reader_is_bounded_then_disconnected_and_siblings_survive() {
    let write_cap = 64 * 1024;
    let prefill = 50_000u64;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            admission: AdmissionConfig {
                // Stall policy under test; shedding out of the way.
                max_inflight: 1 << 20,
                max_queued_bytes: 1 << 30,
                max_conn_pending_write: write_cap,
                stall_window: Duration::from_millis(300),
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let live_stats = server.stats();
    let (addr, shutdown, _join) = server.spawn().expect("spawn");

    // Prefill so range responses are large (16 B per entry).
    let mut loader = Client::connect(addr).expect("connect loader");
    for batch in 0..(prefill / 1000) {
        for k in (batch * 1000)..((batch + 1) * 1000) {
            loader
                .send(ReqBody::Insert { key: k, value: k })
                .expect("send");
        }
        for _ in 0..1000 {
            loader.recv().expect("prefill ack");
        }
    }

    // The hostile reader: pipeline full-range scans (~800 KB responses)
    // and never read a byte back.
    let mut stalled = Client::connect(addr).expect("connect stalled");
    for _ in 0..30 {
        stalled
            .send(ReqBody::Range {
                lo: 0,
                hi: u64::MAX,
                count_only: false,
            })
            .expect("send range");
    }

    // Wait for the slow-reader policy to fire.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let s = loader.stats().expect("stats");
        if s.slow_reader_disconnects >= 1 {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "slow-reader disconnect did not fire within 10 s: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(stats.slow_reader_disconnects, 1);

    // Siblings were never starved: the loader connection kept working
    // the whole time (the stats polls above) and still does.
    let count = loader.range_count(0, u64::MAX).expect("sibling range");
    assert_eq!(count, prefill);

    // Bounded memory: the high-water pending-write mark must stay
    // under the cap plus one maximal response (serving stops the
    // moment the buffer crosses the cap, so at most one response can
    // overshoot it). One full-range response is 16 B per entry plus
    // frame overhead.
    let one_response = 16 * prefill + 64;
    let peak = live_stats.snapshot().peak_conn_pending_bytes;
    assert!(peak > 0, "the stalled connection must have registered");
    assert!(
        peak <= write_cap as u64 + one_response,
        "peak pending {peak} exceeds cap {write_cap} + one response {one_response}"
    );
    shutdown.signal();
}
