//! End-to-end tests over real loopback sockets: the full stack
//! (client → framing → worker loop → sharded session → response).

use std::time::Duration;

use pnb_server::{Client, NetMap, ReqBody, RespBody, Server, ServerConfig};
use workload::{
    run_open_loop, ConcurrentMap, IntervalLogConfig, KeyDist, MapSession, Mix, OpenLoopConfig,
};

fn spawn(
    shards: usize,
    workers: usize,
) -> (
    std::net::SocketAddr,
    pnb_server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = ServerConfig {
        shards,
        workers,
        refresh_every: 64,
        drain_grace: Duration::from_millis(100),
        ..Default::default()
    };
    Server::bind("127.0.0.1:0", cfg)
        .expect("bind ephemeral")
        .spawn()
        .expect("spawn server")
}

#[test]
fn point_ops_roundtrip_over_loopback() {
    let (addr, shutdown, join) = spawn(4, 2);
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("ping");
    assert!(c.insert(5, 50).unwrap());
    assert!(!c.insert(5, 51).unwrap(), "set semantics over the wire");
    assert_eq!(c.upsert(5, 55).unwrap(), Some(50));
    assert_eq!(c.get(5).unwrap(), Some(55));
    assert_eq!(c.get(6).unwrap(), None);
    assert!(c.contains(5).unwrap());
    assert!(c.delete(5).unwrap());
    assert!(!c.delete(5).unwrap());
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn ranges_and_snapshots_over_the_wire() {
    let (addr, shutdown, join) = spawn(8, 2);
    let mut c = Client::connect(addr).expect("connect");
    for k in 0..500u64 {
        assert!(c.insert(k * 10, k).unwrap());
    }
    assert_eq!(c.range_count(0, u64::MAX).unwrap(), 500);
    let reply = c.range_entries(100, 200).unwrap();
    assert_eq!(reply.count, 11); // 100..=200 step 10
    assert_eq!(reply.entries.len(), 11);
    assert!(!reply.truncated, "11 entries is far below the cap");
    assert!(
        reply.entries.windows(2).all(|w| w[0].0 < w[1].0),
        "ascending"
    );
    assert_eq!(reply.entries[0], (100, 10));
    let snap = c.snapshot_entries(100, 200).unwrap();
    assert_eq!(snap.count, 11);
    assert!(!snap.truncated);
    assert_eq!(
        snap.entries, reply.entries,
        "quiescent: snapshot equals live range"
    );
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (addr, shutdown, join) = spawn(4, 1);
    let mut c = Client::connect(addr).expect("connect");
    let n = 200u64;
    let mut ids = Vec::new();
    for k in 0..n {
        ids.push(c.send(ReqBody::Insert { key: k, value: k }).unwrap());
    }
    for (i, want) in ids.into_iter().enumerate() {
        let (got, body) = c.recv().expect("pipelined response");
        assert_eq!(got, want, "response {i} out of order");
        assert_eq!(body, RespBody::Bool(true));
    }
    assert_eq!(c.range_count(0, u64::MAX).unwrap(), n);
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_map() {
    let (addr, shutdown, join) = spawn(8, 4);
    let writers = 4u64;
    let per = 250u64;
    std::thread::scope(|s| {
        for w in 0..writers {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..per {
                    // Disjoint key blocks per writer.
                    assert!(c.insert(w * 1_000_000 + i * 7, i).unwrap());
                }
            });
        }
    });
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.range_count(0, u64::MAX).unwrap(), writers * per);
    let stats = c.stats().unwrap();
    assert!(stats.accepted >= writers, "accepted {}", stats.accepted);
    assert!(
        stats.requests >= writers * per,
        "requests {}",
        stats.requests
    );
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.shard_ops.len(), 8);
    #[cfg(feature = "stats")]
    {
        let total: u64 = stats.shard_ops.iter().sum();
        assert!(total >= writers * per, "shard op totals {total}");
    }
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn long_lived_connection_survives_session_refreshes() {
    // refresh_every=64 and 1 worker: one connection's operation stream
    // crosses many server-side session refreshes; results must be
    // seamless (the DESIGN §6 drop-all-handles discipline at work).
    let (addr, shutdown, join) = spawn(4, 1);
    let mut c = Client::connect(addr).expect("connect");
    for k in 0..1_000u64 {
        assert!(c.insert(k, k).unwrap());
        if k >= 500 {
            assert!(c.delete(k - 500).unwrap());
        }
    }
    assert_eq!(c.range_count(0, u64::MAX).unwrap(), 500);
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn netmap_drives_the_open_loop_engine() {
    let (addr, shutdown, join) = spawn(8, 2);
    let map = NetMap::connect(addr).expect("netmap connect");
    assert_eq!(map.name(), "pnb-sharded-net");

    let log_path =
        std::env::temp_dir().join(format!("pnb_netmap_interval_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let cfg = OpenLoopConfig {
        threads: 2,
        target_rate: 2_000.0,
        duration: Duration::from_millis(400),
        key_dist: KeyDist::scrambled_zipfian(1_024, 0.99),
        mix: Mix::new(20, 20, 50, 10, 100),
        prefill_fraction: 0.5,
        seed: 42,
        interval_log: Some(IntervalLogConfig::with_interval(
            &log_path,
            Duration::from_millis(100),
        )),
    };
    let m = run_open_loop(&map, &cfg).expect("open loop over the wire");
    assert_eq!(m.name, "pnb-sharded-net");
    assert!(m.total_ops > 0);
    // Loopback at 2k ops/s should keep up to within a wide margin.
    assert!(
        m.achieved_rate > 0.5 * m.offered_rate,
        "achieved {:.0} of offered {:.0}",
        m.achieved_rate,
        m.offered_rate
    );
    assert!(!m.classes.is_empty());
    let rows = std::fs::read_to_string(&log_path).expect("interval log");
    let _ = std::fs::remove_file(&log_path);
    assert!(rows.lines().count() >= 2, "interval rows: {rows:?}");
    assert!(rows.lines().all(|l| l.contains("\"achieved_rate\"")));

    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn checkpoint_then_restore_restarts_with_state() {
    let dir = std::env::temp_dir().join(format!("pnb_e2e_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: load, checkpoint over the wire, drain.
    let cfg = ServerConfig {
        shards: 4,
        workers: 2,
        drain_grace: Duration::from_millis(100),
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    };
    let (addr, shutdown, join) = Server::bind("127.0.0.1:0", cfg.clone())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut c = Client::connect(addr).expect("connect");
    for k in 0..300u64 {
        assert!(c.insert(k * 7, k).unwrap());
    }
    let (generation, entries) = c.checkpoint().expect("checkpoint over the wire");
    assert_eq!(generation, 1);
    assert_eq!(entries, 300);
    // Mutations after the checkpoint must NOT survive the restart.
    for k in 0..100u64 {
        assert!(c.delete(k * 7).unwrap());
    }
    shutdown.signal();
    join.join().unwrap().unwrap();

    // Second life: restore and verify the checkpointed cut, exactly.
    let cfg2 = ServerConfig {
        restore: true,
        ..cfg
    };
    let (addr2, shutdown2, join2) = Server::bind("127.0.0.1:0", cfg2)
        .expect("bind restored")
        .spawn()
        .expect("spawn restored");
    let mut c2 = Client::connect(addr2).expect("connect restored");
    assert_eq!(c2.range_count(0, u64::MAX).unwrap(), 300);
    assert_eq!(c2.get(0).unwrap(), Some(0), "pre-checkpoint key is back");
    let reply = c2.range_entries(0, 70).unwrap();
    assert_eq!(
        reply.entries,
        (0..=10u64).map(|k| (k * 7, k)).collect::<Vec<_>>()
    );
    shutdown2.signal();
    join2.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_without_a_checkpoint_fails_loudly() {
    let dir = std::env::temp_dir().join(format!("pnb_e2e_nockpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        restore: true,
        ..Default::default()
    };
    let err = match Server::bind("127.0.0.1:0", cfg) {
        Ok(_) => panic!("empty dir must not restore"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("no loadable committed checkpoint"),
        "got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn netmap_sessions_pool_connections() {
    let (addr, shutdown, join) = spawn(2, 1);
    let map = NetMap::connect(addr).expect("netmap connect");
    {
        let mut s = map.pin();
        assert!(s.insert(1, 10));
        assert_eq!(s.get(&1), Some(10));
    } // session drops: connection returns to the pool
    {
        let mut s = map.pin();
        assert_eq!(s.upsert(1, 11), Some(10));
        assert_eq!(s.range_scan(&0, &100), 1);
        s.refresh(); // no-op by contract, must not disturb the stream
        assert!(s.delete(&1));
    }
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    // NetMap dialed once for the probe ping; both sessions reused it.
    assert!(
        stats.accepted <= 3,
        "sessions should pool, accepted {}",
        stats.accepted
    );
    shutdown.signal();
    join.join().unwrap().unwrap();
}
