//! The malformed-frame battery (robustness requirement): every class
//! of bad input gets a *typed* error frame, closes only the offending
//! connection, never panics a worker, and never disturbs a well-behaved
//! sibling connection on the same server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pnb_server::codec::{decode_response, encode_request, FrameBuf};
use pnb_server::{Client, ReqBody, Request, RespBody, Server, ServerConfig, StatusCode};

fn spawn() -> (
    std::net::SocketAddr,
    pnb_server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = ServerConfig {
        shards: 4,
        workers: 2,
        drain_grace: Duration::from_millis(100),
        ..Default::default()
    };
    Server::bind("127.0.0.1:0", cfg)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Send raw bytes, then read frames until the connection closes;
/// returns every decoded response.
fn poke(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<(u64, RespBody)> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(bytes).expect("write attack bytes");
    let mut fb = FrameBuf::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break, // server closed us: expected
            Ok(n) => {
                fb.feed(&chunk[..n]);
                while let Some(frame) = fb.next_frame().expect("server sends valid frames") {
                    let resp = decode_response(&frame).expect("decodable response");
                    out.push((resp.id, resp.body));
                }
            }
            Err(e) => panic!("expected error frame then close, got read error {e}"),
        }
    }
    out
}

fn error_code(responses: &[(u64, RespBody)]) -> StatusCode {
    match responses {
        [(_, RespBody::Error(code, msg))] => {
            assert!(!msg.is_empty(), "error frames carry a diagnostic");
            *code
        }
        other => panic!("expected exactly one error frame, got {other:?}"),
    }
}

#[test]
fn bad_magic_gets_typed_error_and_close() {
    let (addr, shutdown, join) = spawn();
    let got = poke(addr, b"GET / HTTP/1.1\r\nHost: pnb\r\n\r\n");
    assert_eq!(error_code(&got), StatusCode::BadMagic);
    assert_eq!(got[0].0, 0, "unreadable header: id defaults to 0");
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_length_gets_typed_error_and_close() {
    let (addr, shutdown, join) = spawn();
    let mut frame = encode_request(&Request {
        id: 99,
        body: ReqBody::Ping,
    });
    frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    let got = poke(addr, &frame);
    assert_eq!(error_code(&got), StatusCode::Oversized);
    assert_eq!(got[0].0, 99, "header was intact: id echoed");
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn bad_opcode_gets_typed_error_and_close() {
    let (addr, shutdown, join) = spawn();
    let mut frame = encode_request(&Request {
        id: 7,
        body: ReqBody::Ping,
    });
    frame[5] = 0xEE;
    let got = poke(addr, &frame);
    assert_eq!(error_code(&got), StatusCode::BadOpcode);
    assert_eq!(got[0].0, 7);
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn bad_version_gets_typed_error_and_close() {
    let (addr, shutdown, join) = spawn();
    let mut frame = encode_request(&Request {
        id: 3,
        body: ReqBody::Get { key: 1 },
    });
    frame[4] = 42;
    let got = poke(addr, &frame);
    assert_eq!(error_code(&got), StatusCode::BadVersion);
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn truncated_payload_gets_typed_error_and_close() {
    let (addr, shutdown, join) = spawn();
    // A Get whose header claims a 4-byte payload: frames fine, fails
    // shape validation.
    let mut frame = encode_request(&Request {
        id: 5,
        body: ReqBody::Get { key: 1 },
    });
    frame[16..20].copy_from_slice(&4u32.to_le_bytes());
    frame.truncate(20 + 4);
    let got = poke(addr, &frame);
    assert_eq!(error_code(&got), StatusCode::BadPayload);
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn valid_requests_before_the_bad_one_are_still_answered() {
    let (addr, shutdown, join) = spawn();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&encode_request(&Request {
        id: 1,
        body: ReqBody::Insert { key: 10, value: 20 },
    }));
    bytes.extend_from_slice(&encode_request(&Request {
        id: 2,
        body: ReqBody::Get { key: 10 },
    }));
    let mut bad = encode_request(&Request {
        id: 3,
        body: ReqBody::Ping,
    });
    bad[5] = 0xEE;
    bytes.extend_from_slice(&bad);
    let got = poke(addr, &bytes);
    assert_eq!(got.len(), 3, "two answers then one error: {got:?}");
    assert_eq!(got[0], (1, RespBody::Bool(true)));
    assert_eq!(got[1], (2, RespBody::Value(Some(20))));
    match &got[2] {
        (3, RespBody::Error(StatusCode::BadOpcode, _)) => {}
        other => panic!("expected BadOpcode error, got {other:?}"),
    }
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn sibling_connections_are_unaffected_by_an_attacker() {
    let (addr, shutdown, join) = spawn();
    let mut healthy = Client::connect(addr).expect("healthy connect");
    assert!(healthy.insert(1, 100).unwrap());

    // A battery of attacks on separate connections, while the healthy
    // one keeps working between each.
    let attacks: Vec<Vec<u8>> = vec![
        b"\x00\x01\x02\x03garbage".to_vec(),
        {
            let mut f = encode_request(&Request {
                id: 1,
                body: ReqBody::Ping,
            });
            f[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
            f
        },
        {
            let mut f = encode_request(&Request {
                id: 2,
                body: ReqBody::Delete { key: 1 },
            });
            f[5] = 0x77;
            f
        },
    ];
    for attack in attacks {
        let got = poke(addr, &attack);
        assert_eq!(got.len(), 1, "one error frame per attack");
        assert!(matches!(got[0].1, RespBody::Error(..)));
        // The healthy connection keeps its state and its liveness.
        assert_eq!(healthy.get(1).unwrap(), Some(100));
        healthy.ping().unwrap();
    }

    let stats = healthy.stats().unwrap();
    assert_eq!(stats.protocol_errors, 3);
    assert!(
        stats.closed >= 3,
        "attackers closed, closed={}",
        stats.closed
    );
    assert_eq!(healthy.get(1).unwrap(), Some(100));
    shutdown.signal();
    join.join().unwrap().unwrap();
}

#[test]
fn half_frame_then_silence_does_not_wedge_the_worker() {
    let (addr, shutdown, join) = spawn();
    // Send half a valid frame and go quiet: the worker must neither
    // block on us nor answer; siblings proceed.
    let frame = encode_request(&Request {
        id: 11,
        body: ReqBody::Insert { key: 1, value: 2 },
    });
    let mut half = TcpStream::connect(addr).expect("connect");
    half.write_all(&frame[..frame.len() / 2]).unwrap();

    let mut sibling = Client::connect(addr).expect("sibling connect");
    for k in 0..100u64 {
        assert!(sibling.insert(k + 1_000, k).unwrap());
    }
    assert_eq!(sibling.range_count(1_000, 2_000).unwrap(), 100);
    drop(half);
    shutdown.signal();
    join.join().unwrap().unwrap();
}
