//! Graceful-shutdown tests: a drain answers everything already sent
//! (the no-lost-ops guarantee), releases resources, and `run` returns.

use std::time::{Duration, Instant};

use pnb_server::{Client, ClientError, ReqBody, RespBody, Server, ServerConfig, StatusCode};

fn cfg() -> ServerConfig {
    ServerConfig {
        shards: 4,
        workers: 2,
        drain_grace: Duration::from_millis(150),
        ..Default::default()
    }
}

#[test]
fn no_ops_are_lost_across_shutdown() {
    let (addr, shutdown, join) = Server::bind("127.0.0.1:0", cfg()).unwrap().spawn().unwrap();
    let mut c = Client::connect(addr).expect("connect");
    // Pipeline a burst, then signal shutdown *before* reading anything:
    // every already-sent request must still be answered during drain.
    let n = 500u64;
    let mut ids = Vec::new();
    for k in 0..n {
        ids.push(c.send(ReqBody::Insert { key: k, value: k }).unwrap());
    }
    shutdown.signal();
    for want in ids {
        let (got, body) = c.recv().expect("response survives shutdown");
        assert_eq!(got, want);
        assert_eq!(body, RespBody::Bool(true));
    }
    join.join().unwrap().unwrap();
}

#[test]
fn run_returns_promptly_after_signal() {
    let (addr, shutdown, join) = Server::bind("127.0.0.1:0", cfg()).unwrap().spawn().unwrap();
    // A couple of idle connections must not stall the drain.
    let _idle1 = Client::connect(addr).unwrap();
    let _idle2 = Client::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    shutdown.signal();
    join.join().unwrap().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "drain took {:?}",
        t0.elapsed()
    );
}

#[test]
fn connections_opened_after_drain_are_refused_eventually() {
    let (addr, shutdown, join) = Server::bind("127.0.0.1:0", cfg()).unwrap().spawn().unwrap();
    shutdown.signal();
    join.join().unwrap().unwrap();
    // The listener is gone: a fresh connect must fail, or at best be
    // accepted by the OS backlog and then see EOF on first read.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => match c.ping() {
            Err(ClientError::Io(_)) => {}
            Err(ClientError::Remote(StatusCode::Shutdown, _)) => {}
            other => panic!("expected refusal after shutdown, got {other:?}"),
        },
    }
}

#[test]
fn double_signal_is_idempotent() {
    let (_addr, shutdown, join) = Server::bind("127.0.0.1:0", cfg()).unwrap().spawn().unwrap();
    shutdown.signal();
    shutdown.signal();
    assert!(shutdown.is_signalled());
    join.join().unwrap().unwrap();
}
