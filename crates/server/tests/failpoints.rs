//! The feature-gated worker-loop failpoints (`--features failpoints`):
//! `PNB_FAILPOINTS` rules must actually fire inside the serve path.
//!
//! One test only: the rule table is parsed once per process (it is a
//! `OnceLock`), so a single test owns the environment.

#![cfg(feature = "failpoints")]

use pnb_server::{Client, ClientError, Server, ServerConfig};

#[test]
fn close_rule_severs_the_connection_before_serving() {
    // Must be set before the first frame ever hits the failpoint.
    std::env::set_var("PNB_FAILPOINTS", "worker-frame@1:close");
    std::env::set_var("PNB_FAILPOINT_SEED", "1");
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let (addr, shutdown, _join) = server.spawn().expect("spawn");
    let mut c = Client::connect(addr).expect("connect");
    // With probability 1 the failpoint closes the connection instead
    // of serving: the client must observe a clean EOF, not a hang.
    match c.ping() {
        Err(ClientError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "kind: {e}");
        }
        other => panic!("expected EOF from the close failpoint, got {other:?}"),
    }
    shutdown.signal();
}
