//! The failure contract under seeded fault plans: every client call
//! ends with either the response or a typed error — no hangs — and no
//! acknowledged mutation is ever lost, even across connection resets.
//!
//! All faults are injected by [`ChaosProxy`] sitting between the
//! client and a healthy server; plans are deterministic per seed, so a
//! failure here reproduces exactly.

use std::time::{Duration, Instant};

use pnb_server::{
    ChaosConfig, ChaosProxy, Client, ClientError, ReconnectingClient, RetryPolicy, Server,
    ServerConfig,
};

struct Rig {
    server_addr: std::net::SocketAddr,
    proxy_addr: std::net::SocketAddr,
    server_shutdown: pnb_server::ShutdownHandle,
    proxy_shutdown: pnb_server::ShutdownHandle,
}

impl Rig {
    fn start(chaos: ChaosConfig) -> Rig {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind server");
        let (server_addr, server_shutdown, _sj) = server.spawn().expect("spawn server");
        let proxy = ChaosProxy::bind("127.0.0.1:0", server_addr, chaos).expect("bind proxy");
        let (proxy_addr, proxy_shutdown, _pj) = proxy.spawn().expect("spawn proxy");
        Rig {
            server_addr,
            proxy_addr,
            server_shutdown,
            proxy_shutdown,
        }
    }

    fn fast_policy(retry_mutations: bool) -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            call_deadline: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            retry_mutations,
            seed: 0xC0FFEE,
        }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.proxy_shutdown.signal();
        self.server_shutdown.signal();
    }
}

#[test]
fn passthrough_proxy_is_transparent() {
    let rig = Rig::start(ChaosConfig::default());
    let mut c = Client::connect(rig.proxy_addr).expect("connect via proxy");
    c.ping().expect("ping");
    assert!(c.insert(1, 10).expect("insert"));
    assert_eq!(c.get(1).expect("get"), Some(10));
    assert_eq!(c.range_count(0, u64::MAX).expect("range"), 1);
}

#[test]
fn delay_plan_completes_every_call() {
    let rig = Rig::start(ChaosConfig {
        seed: 11,
        delay_prob: 0.5,
        delay_ms: 5,
        ..ChaosConfig::default()
    });
    let mut c = Client::connect(rig.proxy_addr).expect("connect via proxy");
    let t0 = Instant::now();
    for k in 0..100u64 {
        assert!(c.insert(k, k).expect("insert under delays"));
    }
    assert_eq!(c.range_count(0, u64::MAX).expect("range"), 100);
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "delays must stretch latency, not hang the run"
    );
}

#[test]
fn corrupt_and_truncate_plans_end_in_typed_errors_never_hangs() {
    let rig = Rig::start(ChaosConfig {
        seed: 5,
        corrupt_prob: 0.25,
        truncate_prob: 0.1,
        ..ChaosConfig::default()
    });
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut client: Option<Client> = None;
    let mut typed_errors = 0u32;
    let mut completed = 0u32;
    for k in 0..200u64 {
        assert!(
            Instant::now() < deadline,
            "run wedged: a call must not hang"
        );
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(rig.proxy_addr) {
                Ok(c) => {
                    // A corrupted length field would otherwise park
                    // recv for the default 30 s before the typed
                    // timeout error lands — correct, but slow.
                    let c = client.insert(c);
                    c.set_timeouts(Duration::from_millis(500))
                        .expect("timeouts");
                    c
                }
                // The proxy may cut a connection during the handshake
                // exchange; dialing again is the client's job here.
                Err(_) => continue,
            },
        };
        match c.get(k) {
            // A corrupted *request* can still decode into some valid
            // op, so Ok is a legitimate outcome too.
            Ok(_) => completed += 1,
            Err(ClientError::Protocol(_) | ClientError::Remote(..) | ClientError::Io(_)) => {
                // Typed outcome: drop the poisoned connection, redial.
                typed_errors += 1;
                client = None;
            }
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(completed > 0, "some calls must get through between faults");
    assert!(
        typed_errors > 0,
        "with corrupt_prob=0.25 over 200 calls, faults must have fired"
    );
}

#[test]
fn reconnecting_client_reads_through_resets() {
    let rig = Rig::start(ChaosConfig {
        seed: 21,
        reset_prob: 0.10,
        ..ChaosConfig::default()
    });
    // Seed data directly (bypassing the proxy) so reads have answers.
    let mut direct = Client::connect(rig.server_addr).expect("connect direct");
    for k in 0..50u64 {
        direct.insert(k, k * 7).expect("seed");
    }
    let mut c = ReconnectingClient::with_policy(rig.proxy_addr, Rig::fast_policy(false));
    for k in 0..50u64 {
        // Idempotent reads auto-retry across resets: every call must
        // come back with the right answer despite the fault plan.
        assert_eq!(c.get(k).expect("get through resets"), Some(k * 7));
    }
}

#[test]
fn no_acknowledged_mutation_is_lost_across_resets() {
    let rig = Rig::start(ChaosConfig {
        seed: 33,
        reset_prob: 0.08,
        ..ChaosConfig::default()
    });
    let mut c = ReconnectingClient::with_policy(rig.proxy_addr, Rig::fast_policy(true));
    let mut acked = Vec::new();
    for k in 0..200u64 {
        // With retry_mutations on, a reset mid-call is retried until
        // the deadline; an Ok return is an acknowledgement. (The bool
        // may be false when the first attempt executed before the
        // reset and the retry found the key present — that is still
        // an acknowledged insert.)
        if c.insert(k, k).is_ok() {
            acked.push(k);
        }
    }
    assert!(
        acked.len() >= 190,
        "with a 10 s deadline resets should almost never exhaust a call, acked {}",
        acked.len()
    );
    // The ground truth, read off the server directly: every
    // acknowledged key must be present. (This is the "zero lost
    // acknowledged ops" clause of the failure contract.)
    let mut direct = Client::connect(rig.server_addr).expect("connect direct");
    for k in &acked {
        assert_eq!(
            direct.get(*k).expect("verify"),
            Some(*k),
            "acknowledged insert of key {k} is missing from the map"
        );
    }
}
