//! Property tests for the wire codec: every request/response body
//! survives encode → arbitrary re-chunking → decode, and arbitrary
//! garbage never panics the frame layer.

use proptest::prelude::*;

use pnb_server::codec::{
    decode_request, decode_response, encode_request, encode_response, FrameBuf,
};
use pnb_server::proto::{
    BatchSubOp, BatchSubResult, Opcode, ReqBody, Request, RespBody, Response, ServerStatsWire,
    StatusCode,
};

/// Well-formed batch sub-operations only: `Malformed` is a decode-side
/// marker (it deliberately does not roundtrip), so it has its own
/// directed tests instead of a strategy arm.
fn batch_sub_op() -> impl Strategy<Value = BatchSubOp> {
    prop_oneof![
        1 => any::<u64>().prop_map(|key| BatchSubOp::Get { key }),
        1 => any::<u64>().prop_map(|key| BatchSubOp::Contains { key }),
        1 => (any::<u64>(), any::<u64>()).prop_map(|(key, value)| BatchSubOp::Insert { key, value }),
        1 => (any::<u64>(), any::<u64>()).prop_map(|(key, value)| BatchSubOp::Upsert { key, value }),
        1 => any::<u64>().prop_map(|key| BatchSubOp::Delete { key }),
    ]
}

fn batch_sub_result() -> impl Strategy<Value = BatchSubResult> {
    prop_oneof![
        2 => (any::<bool>(), any::<u64>())
            .prop_map(|(some, v)| BatchSubResult::Value(some.then_some(v))),
        2 => any::<bool>().prop_map(BatchSubResult::Bool),
        2 => (any::<bool>(), any::<u64>())
            .prop_map(|(some, v)| BatchSubResult::Displaced(some.then_some(v))),
        1 => prop::collection::vec(any::<u8>(), 0..24).prop_map(|msg| {
            BatchSubResult::Error(
                StatusCode::BadOpcode,
                String::from_utf8_lossy(&msg).into_owned(),
            )
        }),
        1 => prop::collection::vec(any::<u8>(), 0..24).prop_map(|msg| {
            BatchSubResult::Error(
                StatusCode::BadPayload,
                String::from_utf8_lossy(&msg).into_owned(),
            )
        }),
    ]
}

fn req_body() -> impl Strategy<Value = ReqBody> {
    prop_oneof![
        1 => Just(ReqBody::Ping),
        1 => Just(ReqBody::Stats),
        2 => any::<u64>().prop_map(|key| ReqBody::Get { key }),
        2 => any::<u64>().prop_map(|key| ReqBody::Contains { key }),
        2 => any::<u64>().prop_map(|key| ReqBody::Delete { key }),
        2 => (any::<u64>(), any::<u64>()).prop_map(|(key, value)| ReqBody::Insert { key, value }),
        2 => (any::<u64>(), any::<u64>()).prop_map(|(key, value)| ReqBody::Upsert { key, value }),
        2 => (any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(lo, hi, count_only)| ReqBody::Range { lo, hi, count_only }),
        2 => (any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(lo, hi, count_only)| ReqBody::SnapshotScan { lo, hi, count_only }),
        // Nested frames: a batch of sub-ops inside the outer frame.
        2 => prop::collection::vec(batch_sub_op(), 0..12)
            .prop_map(|ops| ReqBody::Batch { ops }),
    ]
}

fn resp_case() -> impl Strategy<Value = (Opcode, RespBody)> {
    prop_oneof![
        1 => Just((Opcode::Ping, RespBody::Pong)),
        2 => any::<u64>().prop_map(|v| (Opcode::Get, RespBody::Value(Some(v)))),
        1 => Just((Opcode::Get, RespBody::Value(None))),
        2 => any::<u64>().prop_map(|v| (Opcode::Upsert, RespBody::Displaced(Some(v)))),
        1 => Just((Opcode::Upsert, RespBody::Displaced(None))),
        2 => any::<bool>().prop_map(|b| (Opcode::Insert, RespBody::Bool(b))),
        2 => any::<bool>().prop_map(|b| (Opcode::Delete, RespBody::Bool(b))),
        2 => (prop::collection::vec((any::<u64>(), any::<u64>()), 0..50), any::<bool>())
            .prop_map(|(entries, truncated)| {
                let count = entries.len() as u64 + u64::from(truncated) * 17;
                (Opcode::Range, RespBody::Entries { count, entries, truncated })
            }),
        1 => prop::collection::vec(any::<u64>(), 0..16).prop_map(|shard_ops| {
            (
                Opcode::Stats,
                RespBody::Stats(ServerStatsWire {
                    accepted: 1,
                    closed: 2,
                    requests: 3,
                    protocol_errors: 4,
                    shed: 5,
                    slow_reader_disconnects: 6,
                    shard_ops,
                }),
            )
        }),
        1 => any::<u64>().prop_map(|retry_after_ms| {
            (Opcode::Insert, RespBody::Busy { retry_after_ms })
        }),
        1 => prop::collection::vec(any::<u8>(), 0..64).prop_map(|msg| {
            (
                Opcode::Ping,
                RespBody::Error(StatusCode::BadPayload, String::from_utf8_lossy(&msg).into_owned()),
            )
        }),
        // Nested result frames, error slots included.
        2 => prop::collection::vec(batch_sub_result(), 0..12)
            .prop_map(|rs| (Opcode::Batch, RespBody::BatchResults(rs))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip_through_rechunked_streams(
        bodies in prop::collection::vec((any::<u64>(), req_body()), 1..20),
        chunk in 1usize..64
    ) {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for (id, body) in bodies {
            let req = Request { id, body };
            stream.extend_from_slice(&encode_request(&req));
            expected.push(req);
        }
        let mut fb = FrameBuf::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            fb.feed(piece);
            while let Some(frame) = fb.next_frame().unwrap() {
                decoded.push(decode_request(&frame).unwrap());
            }
        }
        prop_assert_eq!(decoded, expected);
        prop_assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn responses_roundtrip(
        id in any::<u64>(),
        case in resp_case(),
        chunk in 1usize..48
    ) {
        let (opcode, body) = case;
        let resp = Response { id, body };
        let bytes = encode_response(opcode, &resp);
        let mut fb = FrameBuf::new();
        let mut got = None;
        for piece in bytes.chunks(chunk) {
            fb.feed(piece);
            if let Some(frame) = fb.next_frame().unwrap() {
                got = Some(decode_response(&frame).unwrap());
            }
        }
        prop_assert_eq!(got.expect("one frame"), resp);
    }

    // The frame layer must never panic, whatever bytes arrive: it
    // either produces frames, asks for more, or reports a typed error.
    #[test]
    fn garbage_never_panics_the_framer(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..97
    ) {
        let mut fb = FrameBuf::new();
        'outer: for piece in bytes.chunks(chunk) {
            fb.feed(piece);
            loop {
                match fb.next_frame() {
                    Ok(Some(frame)) => {
                        // Frames parsed out of noise must still decode
                        // without panicking (result may be Ok or Err).
                        let _ = decode_request(&frame);
                        let _ = decode_response(&frame);
                    }
                    Ok(None) => break,
                    Err(_) => break 'outer, // poisoned stream: caller drops conn
                }
            }
        }
    }

    // Flipping any single byte of a valid frame decodes to an error or
    // to some request — never a panic, and never a *different* length
    // interpretation that breaks framing of the next message.
    #[test]
    fn single_byte_corruption_is_contained(
        body in req_body(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255
    ) {
        let good = encode_request(&Request { id: 7, body });
        let pos = (pos_seed % good.len() as u64) as usize;
        let mut bad = good.clone();
        bad[pos] ^= flip;
        // Cap the length field so the framer cannot be asked for more
        // bytes than the test will feed.
        if (16..20).contains(&pos) {
            bad[16..20].copy_from_slice(&0u32.to_le_bytes());
        }
        let mut fb = FrameBuf::new();
        fb.feed(&bad);
        match fb.next_frame() {
            Ok(Some(frame)) => { let _ = decode_request(&frame); }
            Ok(None) => {}   // truncated-looking: framer waits for more
            Err(e) => {
                prop_assert!(
                    e.code == StatusCode::BadMagic || e.code == StatusCode::Oversized,
                    "unexpected framing error {:?}", e
                );
            }
        }
    }
}
