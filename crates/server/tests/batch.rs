//! The `Batch` opcode's contract, end to end over real sockets:
//!
//! 1. A batch travels as one frame, executes through the map's fused
//!    `apply_batch` path, and answers positionally.
//! 2. A malformed sub-operation earns its own typed error and is never
//!    executed — its well-formed siblings run unaffected.
//! 3. Structural inconsistencies of the outer payload (lying counts,
//!    overrunning lengths, trailing bytes) poison the whole frame.
//! 4. Admission control is op-granular: a shed batch counts every
//!    contained operation, so `ok_ops + busy_ops == sent_ops` and the
//!    server's shed ledger agrees.

use pnb_server::codec::{decode_request, Frame};
use pnb_server::{
    AdmissionConfig, BatchSubOp, BatchSubResult, Client, ClientError, ReqBody, RespBody, Server,
    ServerConfig, ShutdownHandle, StatusCode,
};

fn start(cfg: ServerConfig) -> (std::net::SocketAddr, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let (addr, handle, _join) = server.spawn().expect("spawn");
    (addr, handle)
}

#[test]
fn batch_executes_in_one_round_trip_and_answers_positionally() {
    let (addr, shutdown) = start(ServerConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    let results = c
        .batch(&[
            BatchSubOp::Insert { key: 5, value: 50 },
            BatchSubOp::Insert { key: 5, value: 51 },
            BatchSubOp::Contains { key: 5 },
            BatchSubOp::Get { key: 5 },
            BatchSubOp::Upsert { key: 5, value: 55 },
            BatchSubOp::Delete { key: 5 },
            BatchSubOp::Get { key: 5 },
            BatchSubOp::Delete { key: 5 },
        ])
        .expect("batch");
    assert_eq!(
        results,
        vec![
            BatchSubResult::Bool(true),
            // Same key again in the same batch: submission order wins.
            BatchSubResult::Bool(false),
            BatchSubResult::Bool(true),
            BatchSubResult::Value(Some(50)),
            BatchSubResult::Displaced(Some(50)),
            BatchSubResult::Bool(true),
            BatchSubResult::Value(None),
            BatchSubResult::Bool(false),
        ]
    );
    // An empty batch is legal and answers an empty result list.
    assert_eq!(c.batch(&[]).expect("empty batch"), vec![]);
    shutdown.signal();
}

#[test]
fn malformed_sub_op_is_answered_in_place_without_poisoning_siblings() {
    let (addr, shutdown) = start(ServerConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    // `Malformed` encodes under the reserved sub-opcode 0xFF, which the
    // server rejects per-slot — exactly what a buggy client emitting an
    // unknown sub-opcode would see.
    let results = c
        .batch(&[
            BatchSubOp::Insert { key: 1, value: 10 },
            BatchSubOp::Malformed {
                code: StatusCode::BadOpcode,
                msg: "does not matter on the wire".into(),
            },
            BatchSubOp::Get { key: 1 },
        ])
        .expect("batch with a bad slot still answers");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0], BatchSubResult::Bool(true), "sibling executed");
    match &results[1] {
        BatchSubResult::Error(code, msg) => {
            assert_eq!(*code, StatusCode::BadOpcode);
            assert!(msg.contains("0xff"), "diagnostic names the byte: {msg}");
        }
        other => panic!("expected a per-slot error, got {other:?}"),
    }
    assert_eq!(
        results[2],
        BatchSubResult::Value(Some(10)),
        "sibling after the bad slot executed too"
    );
    // The connection survives: per-slot errors are not frame errors.
    assert_eq!(
        c.batch(&[BatchSubOp::Contains { key: 1 }]).expect("reuse"),
        vec![BatchSubResult::Bool(true)]
    );
    shutdown.signal();
}

/// Hand-build a Batch request frame from raw sub-frames.
fn raw_batch_frame(count: u32, subs: &[(u8, &[u8])]) -> Frame {
    let mut payload = count.to_le_bytes().to_vec();
    for (sub, body) in subs {
        payload.push(*sub);
        payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
        payload.extend_from_slice(body);
    }
    Frame {
        version: 1,
        opcode: 0x0A,
        status: 0,
        flags: 0,
        id: 7,
        payload,
    }
}

#[test]
fn wrong_shape_and_non_point_sub_ops_decode_to_per_slot_errors() {
    let key = 9u64.to_le_bytes();
    let pair: Vec<u8> = [1u64.to_le_bytes(), 2u64.to_le_bytes()].concat();
    let frame = raw_batch_frame(
        4,
        &[
            (0x01, &key[..4]), // Get with a truncated key
            (0x03, &key),      // Insert missing its value
            (0x06, &pair),     // Range: framed fine, not batchable
            (0x05, &key),      // well-formed Delete
        ],
    );
    let req = decode_request(&frame).expect("outer structure is consistent");
    match req.body {
        ReqBody::Batch { ops } => {
            assert!(
                matches!(&ops[0], BatchSubOp::Malformed { code, .. } if *code == StatusCode::BadPayload)
            );
            assert!(
                matches!(&ops[1], BatchSubOp::Malformed { code, .. } if *code == StatusCode::BadPayload)
            );
            assert!(
                matches!(&ops[2], BatchSubOp::Malformed { code, .. } if *code == StatusCode::BadOpcode)
            );
            assert_eq!(ops[3], BatchSubOp::Delete { key: 9 });
        }
        other => panic!("expected a batch, got {other:?}"),
    }
}

#[test]
fn structural_inconsistency_poisons_the_whole_frame() {
    let key = 9u64.to_le_bytes();
    // Count claims 3 sub-ops, payload holds 1: no trustworthy slot to
    // pin the error on.
    let lying_count = raw_batch_frame(3, &[(0x01, &key)]);
    assert_eq!(
        decode_request(&lying_count).unwrap_err().code,
        StatusCode::BadPayload
    );
    // Sub-op length overruns the payload.
    let mut overrun = raw_batch_frame(1, &[(0x01, &key)]);
    overrun.payload[5..9].copy_from_slice(&1_000u32.to_le_bytes());
    assert_eq!(
        decode_request(&overrun).unwrap_err().code,
        StatusCode::BadPayload
    );
    // Trailing bytes after the last sub-op.
    let mut trailing = raw_batch_frame(1, &[(0x01, &key)]);
    trailing.payload.push(0xEE);
    assert_eq!(
        decode_request(&trailing).unwrap_err().code,
        StatusCode::BadPayload
    );
    // Payload too short for even the count.
    let headless = Frame {
        payload: vec![1, 0],
        ..raw_batch_frame(0, &[])
    };
    assert_eq!(
        decode_request(&headless).unwrap_err().code,
        StatusCode::BadPayload
    );
}

#[test]
fn shed_batches_count_contained_ops_and_were_never_executed() {
    const BATCH: u64 = 8;
    let (addr, shutdown) = start(ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            // Budget is op-granular: 16 slots serve at most two 8-op
            // batches per worker pass; a deep pipelined burst must shed.
            max_inflight: 16,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    let frames = 200u64;
    for f in 0..frames {
        let ops: Vec<BatchSubOp> = (0..BATCH)
            .map(|i| BatchSubOp::Insert {
                key: f * BATCH + i,
                value: 1,
            })
            .collect();
        c.send(ReqBody::Batch { ops }).expect("send batch");
    }
    let (mut ok_ops, mut busy_ops) = (0u64, 0u64);
    for _ in 0..frames {
        match c.recv() {
            Ok((_, RespBody::BatchResults(results))) => {
                assert_eq!(results.len() as u64, BATCH);
                for r in &results {
                    assert_eq!(*r, BatchSubResult::Bool(true), "distinct keys insert");
                }
                ok_ops += BATCH;
            }
            Ok((id, other)) => panic!("request {id}: unexpected body {other:?}"),
            // The whole frame was shed unexecuted: all of its
            // operations are outstanding from the client's view.
            Err(ClientError::Busy { .. }) => busy_ops += BATCH,
            Err(e) => panic!("unexpected error mid-burst: {e}"),
        }
    }
    assert_eq!(ok_ops + busy_ops, frames * BATCH, "every op accounted");
    assert!(busy_ops > 0, "a 200-frame burst against 16 slots must shed");
    assert!(
        ok_ops >= 2 * BATCH,
        "the budget itself must still be served"
    );

    // The server's ledger counts the same *operations*, not frames —
    // and Busy == not executed, so the map holds exactly the
    // acknowledged inserts.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.shed, busy_ops, "shed accounting is op-granular");
    let count = c.range_count(0, u64::MAX).expect("count");
    assert_eq!(count, ok_ops, "map contents == acknowledged batch ops");
    shutdown.signal();
}
