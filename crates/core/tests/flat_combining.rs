//! Flat-combining fallback battery (ISSUE 10 satellite): a hot key
//! hammered by 8 threads must actually combine, lose zero updates, and
//! never wedge behind a stalled combiner.
//!
//! Requires `--features stats,failpoints` (declared via
//! `required-features`, so plain `cargo test` skips this binary).

use pnb_bst::PnbBst;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint hooks are process-global; serialize the tests so one
/// battery's hook can never leak into another running concurrently.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn fp_serial() -> MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Hammer one key with `threads` × `per_thread` gated upserts and
/// return every displaced value observed.
fn hammer(t: &Arc<PnbBst<u32, u64>>, threads: u64, per_thread: u64, tag: u64) -> Vec<u64> {
    std::thread::scope(|s| {
        let hs: Vec<_> = (0..threads)
            .map(|w| {
                let t = Arc::clone(t);
                s.spawn(move || {
                    let h = t.pin();
                    (0..per_thread)
                        .map(|i| {
                            h.upsert(1, (tag << 48) | (w << 32) | (i + 1))
                                .expect("key stays present")
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
}

/// The no-lost-updates invariant: {initial} ∪ {writes} == {displaced} ∪
/// {final} as multisets — every acknowledged write was displaced
/// exactly once, except the final survivor.
fn assert_chain(initial: u64, writes: Vec<u64>, displaced: Vec<u64>, last: u64) {
    let mut lhs: Vec<u64> = std::iter::once(initial).chain(writes).collect();
    let mut rhs: Vec<u64> = displaced.into_iter().chain(std::iter::once(last)).collect();
    lhs.sort_unstable();
    rhs.sort_unstable();
    assert_eq!(lhs, rhs, "count written == count acked (no lost updates)");
}

#[test]
fn hot_key_records_combined_runs_and_loses_nothing() {
    let _serial = fp_serial();
    // A yield between validation and the freeze CAS widens the race
    // window so contended CAS failures (and hence the combining gate)
    // reproduce even on one-core CI boxes, where genuine overlap of the
    // few-nanosecond window essentially never happens.
    pnb_bst::failpoint::set("upsert::pre_publish", std::thread::yield_now);
    let t = Arc::new(PnbBst::<u32, u64>::new());
    t.insert(1, 0);
    let per_thread = 500u64;
    let mut all_displaced = Vec::new();
    let mut all_writes = Vec::new();
    // The gate is probabilistic (3 consecutive CAS losses); rounds of 8
    // CAS-fighting threads make at least one combined run overwhelmingly
    // likely — retry a bounded number of rounds rather than flake.
    for round in 0..50u64 {
        all_displaced.extend(hammer(&t, 8, per_thread, round));
        all_writes.extend(
            (0..8u64)
                .flat_map(|w| (0..per_thread).map(move |i| (round << 48) | (w << 32) | (i + 1))),
        );
        if t.stats().combined_ops >= 1 {
            break;
        }
    }
    pnb_bst::failpoint::clear("upsert::pre_publish");
    assert!(
        t.stats().combined_ops >= 1,
        "8 threads on one key must trigger at least one combined run: {:?}",
        t.stats()
    );
    let last = t.get(&1).unwrap();
    assert_chain(0, all_writes, all_displaced, last);
    assert_eq!(t.check_invariants(), 1);
}

#[test]
fn stalled_combiner_never_wedges_publishers() {
    // Stall every drain pass long enough that waiting publishers
    // exhaust their patience and must cancel; the battery passes iff
    // every thread still completes and no update is lost.
    let _serial = fp_serial();
    static STALLS: AtomicU64 = AtomicU64::new(0);
    pnb_bst::failpoint::set("upsert::pre_publish", std::thread::yield_now);
    pnb_bst::failpoint::set("combine::drain", || {
        STALLS.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
    });
    let t = Arc::new(PnbBst::<u32, u64>::new());
    t.insert(1, 0);
    let per_thread = 300u64;
    let displaced = hammer(&t, 8, per_thread, 0);
    pnb_bst::failpoint::clear("combine::drain");
    pnb_bst::failpoint::clear("upsert::pre_publish");
    let writes: Vec<u64> = (0..8u64)
        .flat_map(|w| (0..per_thread).map(move |i| (w << 32) | (i + 1)))
        .collect();
    let last = t.get(&1).unwrap();
    assert_chain(0, writes, displaced, last);
    assert_eq!(t.check_invariants(), 1);
    // The run completing at all is the wedge-freedom assertion; the
    // stall counter proves the failpoint actually engaged a combiner.
    // (If contention never tripped the gate, zero stalls is legal; the
    // hot-key test above covers gate engagement.)
    let _ = STALLS.load(Ordering::Relaxed);
}

#[test]
fn batched_upserts_on_hot_key_survive_combining() {
    // apply_batch's contended-upsert fallback routes through the same
    // publication list: the displaced chain must still balance.
    use pnb_bst::BatchOp;
    let _serial = fp_serial();
    pnb_bst::failpoint::set("upsert::pre_publish", std::thread::yield_now);
    let t = Arc::new(PnbBst::<u32, u64>::new());
    t.insert(1, 0);
    let per_thread = 200u64;
    let batch = 16u64;
    let displaced: Vec<u64> = std::thread::scope(|s| {
        let hs: Vec<_> = (0..8u64)
            .map(|w| {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let h = t.pin();
                    let mut got = Vec::new();
                    for b in 0..per_thread / batch {
                        let ops: Vec<BatchOp<u32, u64>> = (0..batch)
                            .map(|i| BatchOp::Upsert(1, (w << 32) | (b * batch + i + 1)))
                            .collect();
                        for out in h.apply_batch(&ops) {
                            match out {
                                pnb_bst::BatchOutcome::Upserted(d) => {
                                    got.push(d.expect("key stays present"))
                                }
                                _ => panic!("upsert outcome expected"),
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    pnb_bst::failpoint::clear("upsert::pre_publish");
    let writes: Vec<u64> = (0..8u64)
        .flat_map(|w| (1..=(per_thread / batch) * batch).map(move |i| (w << 32) | i))
        .collect();
    let last = t.get(&1).unwrap();
    assert_chain(0, writes, displaced, last);
    assert_eq!(t.check_invariants(), 1);
}
