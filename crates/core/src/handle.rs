//! Pinned session handles — the amortized-epoch hot-path API.
//!
//! Every compat method on [`PnbBst`] (`insert`, `get`, …) pins and drops
//! an epoch guard: correct, but pure overhead in a loop, where the
//! pin/unpin pair can rival the cost of the tree operation itself under
//! read-mostly mixes. A [`Handle`] hoists that cost out of the loop: it
//! pins **once** and exposes the whole operation set against the held
//! guard, so the per-operation epoch cost drops to zero.
//!
//! The price of a pin is that reclamation of memory retired *after* it
//! cannot complete while the guard lives. A handle used for a bounded
//! batch is free; a handle held across millions of updates delays
//! reclamation of everything those updates retire. Call
//! [`Handle::refresh`] between batches to let the collector advance —
//! the workload drivers in this repository do so every few dozen
//! operations.

use crossbeam_epoch::{self as epoch, Guard};
use std::ops::RangeBounds;

use crate::batch::{BatchOp, BatchOutcome, BatchReport};
use crate::iter::{cloned_bounds, Range};
use crate::snapshot::Snapshot;
use crate::tree::PnbBst;

/// A pinned session on a [`PnbBst`]: one epoch guard amortized over any
/// number of operations.
///
/// Not `Send` (the guard is tied to the pinning thread): create one
/// handle per thread, typically right after entering a work loop.
/// Operations on different handles to the same tree run fully
/// concurrently — a handle adds no synchronization whatsoever, it only
/// caches the epoch pin.
///
/// # Example
///
/// ```
/// use pnb_bst::PnbBst;
///
/// let tree: PnbBst<u64, &str> = PnbBst::new();
/// let h = tree.pin();
/// assert!(h.insert(2, "two"));
/// assert_eq!(h.upsert(2, "TWO"), Some("two")); // atomic replace
/// assert_eq!(h.get(&2), Some("TWO"));
/// assert_eq!(h.range(..).count(), 1); // lazy, wait-free iteration
/// assert!(h.delete(&2));
/// ```
pub struct Handle<'t, K, V> {
    tree: &'t PnbBst<K, V>,
    guard: Guard,
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Pin the current thread's epoch and return a session [`Handle`]
    /// exposing the whole operation set without per-call pinning.
    pub fn pin(&self) -> Handle<'_, K, V> {
        Handle {
            tree: self,
            guard: epoch::pin(),
        }
    }
}

impl<'t, K, V> Handle<'t, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// The underlying tree.
    pub fn tree(&self) -> &'t PnbBst<K, V> {
        self.tree
    }

    /// Look up `key` (paper `Find`); see [`PnbBst::get`].
    pub fn get(&self, key: &K) -> Option<V> {
        self.tree.get_in(key, &self.guard)
    }

    /// Whether `key` is present; see [`PnbBst::contains`].
    pub fn contains(&self, key: &K) -> bool {
        self.tree.contains_in(key, &self.guard)
    }

    /// Insert without replacement (set semantics); see
    /// [`PnbBst::insert`].
    pub fn insert(&self, key: K, value: V) -> bool {
        self.tree.insert_in(&key, &value, &self.guard)
    }

    /// Atomically insert or replace, returning the displaced value; see
    /// [`PnbBst::upsert`].
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        self.tree.upsert_in(&key, &value, &self.guard)
    }

    /// Remove `key`; `true` iff it was present. See [`PnbBst::delete`].
    pub fn delete(&self, key: &K) -> bool {
        self.remove(key).is_some()
    }

    /// Remove `key`, returning its value. See [`PnbBst::remove`].
    pub fn remove(&self, key: &K) -> Option<V> {
        self.tree.remove_in(key, &self.guard)
    }

    /// Batched lookup: one `Option<V>` per key, in submission order.
    ///
    /// The keys are processed in sorted order against a shared descent
    /// prefix, so a batch over clustered keys performs far fewer
    /// root-to-leaf walks than the equivalent [`get`](Self::get) loop;
    /// each lookup still linearizes individually (see `DESIGN.md` §11).
    pub fn multi_get(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut report = BatchReport::default();
        self.tree.multi_get_in(keys, &self.guard, &mut report)
    }

    /// [`multi_get`](Self::multi_get) plus descent-sharing telemetry.
    pub fn multi_get_reported(&self, keys: &[K]) -> (Vec<Option<V>>, BatchReport) {
        let mut report = BatchReport::default();
        let out = self.tree.multi_get_in(keys, &self.guard, &mut report);
        (out, report)
    }

    /// Apply a mixed batch of operations, returning one
    /// [`BatchOutcome`] per operation in submission order.
    ///
    /// The batch is stable-sorted by key (duplicates resolve in batch
    /// order) and executed against a shared descent prefix; on a CAS or
    /// validation failure an operation re-descends from the deepest
    /// still-valid ancestor, falling back to the root. A batch is a
    /// *sequence* of individually-linearizable operations, not an
    /// atomic transaction (`DESIGN.md` §11).
    pub fn apply_batch(&self, ops: &[BatchOp<K, V>]) -> Vec<BatchOutcome<V>> {
        let mut report = BatchReport::default();
        self.tree.apply_batch_in(ops, &self.guard, &mut report)
    }

    /// [`apply_batch`](Self::apply_batch) plus descent-sharing
    /// telemetry ([`BatchReport::ops_per_descent`] is experiment E13's
    /// figure of merit).
    pub fn apply_batch_reported(
        &self,
        ops: &[BatchOp<K, V>],
    ) -> (Vec<BatchOutcome<V>>, BatchReport) {
        let mut report = BatchReport::default();
        let out = self.tree.apply_batch_in(ops, &self.guard, &mut report);
        (out, report)
    }

    /// Wait-free lazy range query over any [`RangeBounds`] — `..`,
    /// `a..`, `..=b`, `a..b`, `(Bound::Excluded(a), Bound::Included(b))`,
    /// and friends. Closes the current phase (like every scan) and
    /// yields matches in ascending key order without materializing the
    /// result set.
    ///
    /// Inverted or empty bounds yield an empty iterator (no panic, in
    /// contrast to `BTreeMap::range`).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Range<'_, K, V> {
        let (lo, hi) = cloned_bounds(&range);
        self.tree.range_in(lo, hi, &self.guard)
    }

    /// Lazy iteration over the whole map (`range(..)`), ascending.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// Closed-interval range query returning a `Vec` — compat shim over
    /// [`range`](Self::range) mirroring [`PnbBst::range_scan`].
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.range(lo.clone()..=hi.clone()).collect()
    }

    /// Count keys in `[lo, hi]` without cloning values (wait-free).
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        self.range(lo.clone()..=hi.clone()).count()
    }

    /// Linearizable cardinality (one wait-free full scan).
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Linearizable emptiness test.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }

    /// Take a [`Snapshot`] of the tree. The snapshot pins its own guard,
    /// so it is independent of this handle and may outlive it.
    pub fn snapshot(&self) -> Snapshot<'t, K, V> {
        self.tree.snapshot()
    }

    /// The current phase number (diagnostics); see [`PnbBst::phase`].
    pub fn phase(&self) -> u64 {
        self.tree.phase()
    }

    /// Re-pin the session's epoch guard so memory reclamation can
    /// advance past everything retired since the last pin. Cheap (two
    /// atomic stores when this is the thread's only guard); call it
    /// between batches in long-lived loops.
    ///
    /// Taking `&mut self` is what makes this safe: outstanding
    /// [`Range`] iterators borrow the handle immutably, so the borrow
    /// checker proves no traversal is in flight across the re-pin.
    pub fn refresh(&mut self) {
        self.guard.repin();
    }

    /// Seal this thread's deferred garbage into the global queue and
    /// attempt a collection pass (see `crossbeam_epoch::Guard::flush`).
    pub fn flush(&self) {
        self.guard.flush();
    }
}

impl<K, V> std::fmt::Debug for Handle<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_covers_the_operation_set() {
        let t: PnbBst<i64, i64> = PnbBst::new();
        let h = t.pin();
        assert!(h.is_empty());
        assert!(h.insert(5, 50));
        assert!(!h.insert(5, 51)); // set semantics preserved
        assert_eq!(h.upsert(5, 55), Some(50));
        assert_eq!(h.upsert(6, 60), None);
        assert_eq!(h.get(&5), Some(55));
        assert!(h.contains(&6));
        assert_eq!(h.len(), 2);
        assert_eq!(h.range_scan(&0, &10), vec![(5, 55), (6, 60)]);
        assert_eq!(h.scan_count(&0, &10), 2);
        assert_eq!(h.remove(&5), Some(55));
        assert!(!h.delete(&5));
        assert_eq!(h.tree().len(), 1);
    }

    #[test]
    fn handle_range_bounds_flavours() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        let h = t.pin();
        for k in 0..10 {
            h.insert(k, k);
        }
        let keys = |it: Range<'_, i32, i32>| it.map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(keys(h.range(..)), (0..10).collect::<Vec<_>>());
        assert_eq!(keys(h.range(3..7)), vec![3, 4, 5, 6]);
        assert_eq!(keys(h.range(3..=7)), vec![3, 4, 5, 6, 7]);
        assert_eq!(keys(h.range(8..)), vec![8, 9]);
        assert_eq!(keys(h.range(..2)), vec![0, 1]);
        use std::ops::Bound;
        assert_eq!(
            keys(h.range((Bound::Excluded(3), Bound::Excluded(7)))),
            vec![4, 5, 6]
        );
    }

    #[test]
    fn refresh_keeps_the_session_usable() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        let mut h = t.pin();
        for k in 0..100 {
            h.insert(k, k);
            if k.is_multiple_of(10) {
                h.refresh();
            }
        }
        h.flush();
        assert_eq!(h.len(), 100);
        assert_eq!(t.check_invariants(), 100);
    }

    #[test]
    fn updates_interleave_with_live_iteration() {
        // A Range reads a closed phase: updates made through the same
        // handle while it is being consumed must not disturb it.
        let t: PnbBst<u32, u32> = PnbBst::new();
        let h = t.pin();
        for k in 0..20 {
            h.insert(k, k);
        }
        let mut seen = Vec::new();
        for (k, _) in h.range(..) {
            h.delete(&k); // mutate mid-iteration
            h.insert(1000 + k, k); // and grow elsewhere
            seen.push(k);
        }
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert_eq!(h.tree().check_invariants(), 20); // the 1000+ keys
    }

    #[test]
    fn snapshot_outlives_handle() {
        let t: PnbBst<u8, u8> = PnbBst::new();
        let snap = {
            let h = t.pin();
            h.insert(1, 1);
            h.snapshot()
        };
        t.insert(2, 2);
        assert_eq!(snap.keys(), vec![1]);
    }
}
