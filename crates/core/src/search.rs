//! `Search` and `ReadChild` (paper Figure 3, lines 32–48).
//!
//! `ReadChild(p, dir, seq)` is the persistence primitive: it loads the
//! *current* child pointer and then walks `prev` pointers until it finds
//! the first node whose sequence number is `≤ seq` — the *version-seq*
//! child (§4.1). Both routines are wait-free in isolation (the `prev`
//! chains are acyclic and finite; paper Lemma 46).

use crossbeam_epoch::{Guard, Shared};

use crate::node::Node;
use crate::tree::PnbBst;

/// The `(gp, p, l)` triple returned by `Search` (paper line 41).
pub(crate) type SearchTriple<'g, K, V> = (
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
);

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Paper `Search(k, seq)` (lines 32–42): traverse a branch of
    /// `T_seq` from the root to a leaf, returning `(gp, p, l)`.
    ///
    /// `gp` is null iff the traversal took fewer than two steps (i.e.
    /// `p == root`); `p` and `l` are always non-null (Invariant 4.2/4.3).
    pub(crate) fn search<'g>(&self, k: &K, seq: u64, guard: &'g Guard) -> SearchTriple<'g, K, V> {
        let mut gp: Shared<'g, Node<K, V>> = Shared::null();
        let mut p: Shared<'g, Node<K, V>> = Shared::null();
        let mut l: Shared<'g, Node<K, V>> = Shared::from(self.root);
        loop {
            // SAFETY: l starts at the root and every subsequent value
            // comes from `read_child`, which returns nodes reachable
            // under the pinned guard (Invariant 4.2).
            let l_ref = unsafe { l.deref() };
            if l_ref.leaf {
                break;
            }
            gp = p; // line 37
            p = l; // line 38
                   // line 39: descend to the version-seq child.
            l = self.read_child(l_ref, l_ref.key.fin_lt(k), seq, guard);
        }
        (gp, p, l)
    }

    /// Paper `ReadChild(p, left, seq)` (lines 43–48).
    ///
    /// Precondition (4.1): `p.seq <= seq`; consequently the prev chain
    /// from either child reaches a node with `seq ≤ p.seq ≤ seq`
    /// (Invariant 4.10), so the walk terminates at a non-null node.
    ///
    /// Structured as a branch-free-ish fast path plus a `#[cold]` chain
    /// walk: whenever the *current* child already satisfies
    /// `child.seq <= seq` — every read in the scan-free regime, and the
    /// overwhelmingly common case otherwise — no `prev` pointer is ever
    /// touched and the whole call inlines into the search loop.
    #[inline]
    pub(crate) fn read_child<'g>(
        &self,
        p: &Node<K, V>,
        left: bool,
        seq: u64,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        debug_assert!(p.seq <= seq, "ReadChild precondition: p.seq <= seq");
        debug_assert!(!p.leaf, "ReadChild on a leaf");
        let l = p.load_child(left, guard); // line 45
                                           // SAFETY: the current child is reachable under the guard.
        let l_ref = unsafe { l.deref() };
        if l_ref.seq <= seq {
            return l; // fast path: current child is already version-visible
        }
        Self::read_child_slow(l_ref, seq)
    }

    /// The `prev`-chain walk of `ReadChild` (line 46), out of line: only
    /// reached when a concurrent (or past) scan closed a phase below a
    /// newer child — keeping it `#[cold]` keeps the fast path's code
    /// size inside the inlined search loop.
    #[cold]
    fn read_child_slow<'g>(mut l_ref: &'g Node<K, V>, seq: u64) -> Shared<'g, Node<K, V>> {
        loop {
            debug_assert!(!l_ref.prev.is_null(), "prev chain must reach seq <= seq");
            // SAFETY: each prev-target was unlinked no earlier than our
            // pin (see DESIGN.md §3: any unlink with seq' <= seq
            // happened while a node with seq' is already in the chain
            // above us). `prev` is immutable, so a plain field read
            // after the Acquire child load is fully ordered.
            let prev = unsafe { &*l_ref.prev };
            if prev.seq <= seq {
                return Shared::from(l_ref.prev); // line 46 terminates
            }
            l_ref = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SKey;
    use crossbeam_epoch as epoch;

    #[test]
    fn search_on_empty_tree_lands_on_inf1() {
        let t: PnbBst<i32, ()> = PnbBst::new();
        let guard = &epoch::pin();
        let (gp, p, l) = t.search(&5, 0, guard);
        assert!(gp.is_null());
        assert!(std::ptr::eq(p.as_raw(), t.root));
        let leaf = unsafe { l.deref() };
        assert!(leaf.leaf);
        assert_eq!(leaf.key, SKey::Inf1);
    }

    #[test]
    fn search_finds_inserted_leaf_and_parents() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        for k in [50, 25, 75, 10, 60] {
            t.insert(k, k);
        }
        let guard = &epoch::pin();
        let seq = t.phase();
        for k in [50, 25, 75, 10, 60] {
            let (_gp, p, l) = t.search(&k, seq, guard);
            let leaf = unsafe { l.deref() };
            assert!(leaf.leaf);
            assert_eq!(leaf.key, SKey::Fin(k), "search must land on the key's leaf");
            let parent = unsafe { p.deref() };
            assert!(!parent.leaf);
        }
        // A missing key lands on a leaf that would be its neighbour.
        let (_, _, l) = t.search(&55, seq, guard);
        let leaf = unsafe { l.deref() };
        assert!(leaf.leaf);
        assert_ne!(leaf.key, SKey::Fin(55));
    }

    #[test]
    fn read_child_respects_versions() {
        // After an insert in phase 0 and a scan bump to phase 1 plus an
        // insert in phase 1, reading with seq=0 must see the phase-0
        // child while seq=1 sees the new one.
        let t: PnbBst<i32, i32> = PnbBst::new();
        t.insert(10, 10); // phase 0

        // Bump the phase the way a RangeScan would.
        let _ = t.range_scan(&0, &0);
        assert_eq!(t.phase(), 1);
        t.insert(5, 5); // phase 1: replaces the leaf 10's position
        let guard = &epoch::pin();
        // The leaf 10 in phase 0: search with seq 0.
        let (_, _, l0) = t.search(&5, 0, guard);
        let leaf0 = unsafe { l0.deref() };
        // In T_0, key 5 does not exist; the search for 5 must land on
        // whatever leaf covered that range in phase 0 — the leaf 10.
        assert_eq!(leaf0.key, SKey::Fin(10));
        assert_eq!(leaf0.seq, 0);
        // In T_1 it exists.
        let (_, _, l1) = t.search(&5, 1, guard);
        let leaf1 = unsafe { l1.deref() };
        assert_eq!(leaf1.key, SKey::Fin(5));
    }
}
