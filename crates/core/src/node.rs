//! Tree nodes (paper Figure 2, lines 15–27).
//!
//! The paper distinguishes `Internal` and `Leaf` subtypes of `Node`. We
//! use a single struct with a `leaf` discriminant: leaves have null child
//! pointers and (for finite keys) carry the user value; internal nodes
//! have two non-null children and no value.
//!
//! Immutability discipline (paper Observation 1): `key`, `value`, `seq`,
//! `prev` and `leaf` never change after construction. Only `update`,
//! `left` and `right` are mutated, and only by CAS after initialization.
//!
//! The `prev` pointer is what makes the tree *persistent*: whenever a
//! child CAS replaces node `u` by `u'`, `u'.prev == u`, so
//! `ReadChild(p, dir, i)` can walk back to the *version-i* child — the
//! first node in the chain whose `seq ≤ i` (§4.1).

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering::SeqCst;

use crate::info::{FreezeTag, Info, InfoPtr, NodePtr, UpdateWord};
use crate::key::SKey;

/// A tree node. See module docs for the invariants.
pub(crate) struct Node<K, V> {
    /// Routing / stored key (leaf-oriented: only leaf keys are elements).
    pub key: SKey<K>,
    /// User value; `Some` only on leaves with finite keys.
    pub value: Option<V>,
    /// Sequence number of the operation that created this node.
    pub seq: u64,
    /// Previous version of the tree position this node occupies; null for
    /// fresh leaves and the initial nodes. Immutable.
    pub prev: NodePtr<K, V>,
    /// The paper's `Update` CAS word: tagged pointer to an [`Info`].
    pub update: Atomic<Info<K, V>>,
    /// Left child (null iff leaf).
    pub left: Atomic<Node<K, V>>,
    /// Right child (null iff leaf).
    pub right: Atomic<Node<K, V>>,
    /// Leaf / internal discriminant.
    pub leaf: bool,
}

impl<K, V> Node<K, V> {
    /// A fresh leaf, flagged with the tree's dummy `Info` object.
    pub(crate) fn leaf(
        key: SKey<K>,
        value: Option<V>,
        seq: u64,
        prev: NodePtr<K, V>,
        dummy: InfoPtr<K, V>,
    ) -> Self {
        Node {
            key,
            value,
            seq,
            prev,
            update: Atomic::from(dummy_word(dummy)),
            left: Atomic::null(),
            right: Atomic::null(),
            leaf: true,
        }
    }

    /// A fresh internal node with the given children.
    pub(crate) fn internal(
        key: SKey<K>,
        seq: u64,
        prev: NodePtr<K, V>,
        left: NodePtr<K, V>,
        right: NodePtr<K, V>,
        dummy: InfoPtr<K, V>,
    ) -> Self {
        Node {
            key,
            value: None,
            seq,
            prev,
            update: Atomic::from(dummy_word(dummy)),
            left: Atomic::from(Shared::from(left)),
            right: Atomic::from(Shared::from(right)),
            leaf: false,
        }
    }

    /// Load and decode this node's update word.
    #[inline]
    pub(crate) fn load_update(&self, guard: &Guard) -> UpdateWord<K, V> {
        let s = self.update.load(SeqCst, guard);
        UpdateWord::new(FreezeTag::from_bit(s.tag()), s.as_raw())
    }

    /// Load the raw left or right child pointer (`left == true` ↔ left),
    /// matching `ReadChild` line 45.
    #[inline]
    pub(crate) fn load_child<'g>(&self, left: bool, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        if left {
            self.left.load(SeqCst, guard)
        } else {
            self.right.load(SeqCst, guard)
        }
    }
}

/// Encode the initial `⟨Flag, Dummy⟩` update word.
#[inline]
pub(crate) fn dummy_word<'g, K, V>(dummy: InfoPtr<K, V>) -> Shared<'g, Info<K, V>> {
    Shared::from(dummy).with_tag(FreezeTag::Flag.bit())
}

/// Encode an update word back into a tagged `Shared` for use as a CAS
/// expected/new value.
#[inline]
pub(crate) fn word_shared<'g, K, V>(w: UpdateWord<K, V>) -> Shared<'g, Info<K, V>> {
    Shared::from(w.info).with_tag(w.tag.bit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::state;
    use std::sync::atomic::Ordering;

    fn dummy() -> Box<Info<u64, u64>> {
        Box::new(Info::dummy())
    }

    #[test]
    fn fresh_leaf_shape() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        let l = Node::leaf(SKey::Fin(42), Some(7), 3, std::ptr::null(), dp);
        assert!(l.leaf);
        assert_eq!(l.seq, 3);
        assert_eq!(l.key, SKey::Fin(42));
        assert_eq!(l.value, Some(7));
        assert!(l.prev.is_null());
        let g = crossbeam_epoch::pin();
        assert!(l.left.load(SeqCst, &g).is_null());
        assert!(l.right.load(SeqCst, &g).is_null());
        let w = l.load_update(&g);
        assert_eq!(w.tag, FreezeTag::Flag);
        assert!(std::ptr::eq(w.info, dp));
        unsafe {
            assert_eq!((*w.info).state.load(Ordering::SeqCst), state::ABORT);
        }
    }

    #[test]
    fn fresh_internal_points_at_children() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        let a = Node::leaf(SKey::Fin(1), Some(1), 0, std::ptr::null(), dp);
        let b = Node::leaf(SKey::Fin(2), Some(2), 0, std::ptr::null(), dp);
        let (pa, pb): (NodePtr<u64, u64>, NodePtr<u64, u64>) = (&a, &b);
        let i = Node::internal(SKey::Fin(2), 5, pa, pa, pb, dp);
        assert!(!i.leaf);
        assert!(i.value.is_none());
        assert!(std::ptr::eq(i.prev, pa));
        let g = crossbeam_epoch::pin();
        assert_eq!(i.load_child(true, &g).as_raw(), pa);
        assert_eq!(i.load_child(false, &g).as_raw(), pb);
    }

    #[test]
    fn word_shared_roundtrip() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        for tag in [FreezeTag::Flag, FreezeTag::Mark] {
            let w = UpdateWord::new(tag, dp);
            let s = word_shared(w);
            assert_eq!(FreezeTag::from_bit(s.tag()), tag);
            assert!(std::ptr::eq(s.as_raw(), dp));
        }
    }
}
