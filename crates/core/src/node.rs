//! Tree nodes (paper Figure 2, lines 15–27), laid out hot/cold.
//!
//! The paper distinguishes `Internal` and `Leaf` subtypes of `Node`. We
//! use a single struct with a `leaf` discriminant: leaves have null child
//! pointers and (for finite keys) carry the user value; internal nodes
//! have two non-null children and no value.
//!
//! Immutability discipline (paper Observation 1): `key`, `value`, `seq`,
//! `prev` and `leaf` never change after construction. Only the
//! [`NodeHot`] words (`update`, `left`, `right`) are mutated, and only by
//! CAS after initialization.
//!
//! # Hot/cold layout (`hot-cold-layout` feature, default on)
//!
//! The three CAS words are segregated into their own cache line
//! ([`NodeHot`], `align(64)`): freeze and child-swing CAS traffic from
//! updaters invalidates only the hot line, while the immutable routing
//! fields (`key`, `seq`, `prev`, `leaf`, `value`) that searchers and
//! `prev`-chain walkers read stay in a line that is never written after
//! construction — no false sharing between searchers and updaters.
//! `#[repr(C)]` pins the cold fields in front so the split is a layout
//! guarantee, not an optimizer mood.
//!
//! The split is a genuine *trade*: the 64-byte alignment grows a
//! `u64→u64` node from 80 B to 128 B, and on a single core — where no
//! other cache can invalidate anything — that is pure read tax
//! (measured 20–30% on E2 large-tree searches; DESIGN.md §3.5).
//! Building with `--no-default-features` drops the alignment: `NodeHot`
//! stays a distinct `#[repr(C)]` tail section (same field order, same
//! code), it just packs flush against the cold fields again. Every
//! protocol invariant is layout-independent; only the false-sharing
//! isolation is feature-gated.
//!
//! The `prev` pointer is what makes the tree *persistent*: whenever a
//! child CAS replaces node `u` by `u'`, `u'.prev == u`, so
//! `ReadChild(p, dir, i)` can walk back to the *version-i* child — the
//! first node in the chain whose `seq ≤ i` (§4.1).

use crossbeam_epoch::{Atomic, Guard, Shared};
use std::sync::atomic::Ordering::{Acquire, SeqCst};

use crate::info::{FreezeTag, Info, InfoPtr, NodePtr, UpdateWord};
use crate::key::SKey;

/// The CAS-hot words of a node — cache-line-isolated from the immutable
/// routing fields when the `hot-cold-layout` feature (default on) is
/// enabled, densely packed after them when it is not (see module docs
/// for the tradeoff).
#[repr(C)]
#[cfg_attr(feature = "hot-cold-layout", repr(align(64)))]
pub(crate) struct NodeHot<K, V> {
    /// The paper's `Update` CAS word: tagged pointer to an [`Info`].
    pub update: Atomic<Info<K, V>>,
    /// Left child (null iff leaf).
    pub left: Atomic<Node<K, V>>,
    /// Right child (null iff leaf).
    pub right: Atomic<Node<K, V>>,
}

/// A tree node. See module docs for the invariants and the layout.
#[repr(C)]
pub(crate) struct Node<K, V> {
    // ---- cold: immutable after construction, read by every search ----
    /// Routing / stored key (leaf-oriented: only leaf keys are elements).
    pub key: SKey<K>,
    /// User value; `Some` only on leaves with finite keys.
    pub value: Option<V>,
    /// Sequence number of the operation that created this node.
    pub seq: u64,
    /// Previous version of the tree position this node occupies; null for
    /// fresh leaves and the initial nodes. Immutable.
    pub prev: NodePtr<K, V>,
    /// Leaf / internal discriminant.
    pub leaf: bool,
    // ---- hot: the only mutable words, on their own cache line ----
    pub(crate) hot: NodeHot<K, V>,
}

impl<K, V> Node<K, V> {
    /// A fresh leaf, flagged with the tree's dummy `Info` object.
    pub(crate) fn leaf(
        key: SKey<K>,
        value: Option<V>,
        seq: u64,
        prev: NodePtr<K, V>,
        dummy: InfoPtr<K, V>,
    ) -> Self {
        Node {
            key,
            value,
            seq,
            prev,
            leaf: true,
            hot: NodeHot {
                update: Atomic::from(dummy_word(dummy)),
                left: Atomic::null(),
                right: Atomic::null(),
            },
        }
    }

    /// A fresh internal node with the given children.
    pub(crate) fn internal(
        key: SKey<K>,
        seq: u64,
        prev: NodePtr<K, V>,
        left: NodePtr<K, V>,
        right: NodePtr<K, V>,
        dummy: InfoPtr<K, V>,
    ) -> Self {
        Node {
            key,
            value: None,
            seq,
            prev,
            leaf: false,
            hot: NodeHot {
                update: Atomic::from(dummy_word(dummy)),
                left: Atomic::from(Shared::from(left)),
                right: Atomic::from(Shared::from(right)),
            },
        }
    }

    /// The raw `update` CAS word (for the freeze CAS steps).
    #[inline]
    pub(crate) fn update_word(&self) -> &Atomic<Info<K, V>> {
        &self.hot.update
    }

    /// The raw child word for `CAS-Child` / teardown.
    #[inline]
    pub(crate) fn child_word(&self, left: bool) -> &Atomic<Node<K, V>> {
        if left {
            &self.hot.left
        } else {
            &self.hot.right
        }
    }

    /// Load and decode this node's update word (validation/helping
    /// paths).
    ///
    /// Acquire: pairs with the Release/SeqCst freeze CAS that installed
    /// the word, so the published `Info`'s immutable fields are visible
    /// before any dereference. Update-side correctness never needs more:
    /// stale words are caught by CAS expected-value checks, not by
    /// ordering.
    #[inline]
    pub(crate) fn load_update(&self, guard: &Guard) -> UpdateWord<K, V> {
        let s = self.hot.update.load(Acquire, guard);
        UpdateWord::new(FreezeTag::from_bit(s.tag()), s.as_raw())
    }

    /// Load this node's update word on a *scan* path (`ScanHelper` /
    /// `Snapshot` descent, paper lines 139–140).
    #[inline]
    pub(crate) fn load_update_scan(&self, guard: &Guard) -> UpdateWord<K, V> {
        // sc-ok: scan-handshake total order (§4.1). This load is the
        // scanner half of the store-buffering pair — updater: publish
        // freeze CAS, then re-read Counter; scanner: fetch_add Counter,
        // then this load. If the updater's handshake missed the
        // Counter increment, the scan MUST observe the published Info
        // here (and help it); only a single SeqCst order on all four
        // accesses excludes the both-miss outcome.
        let s = self.hot.update.load(SeqCst, guard); // sc-ok: scan-side SB load (see above)
        UpdateWord::new(FreezeTag::from_bit(s.tag()), s.as_raw())
    }

    /// Load the raw left or right child pointer (`left == true` ↔ left),
    /// matching `ReadChild` line 45.
    ///
    /// Acquire: pairs with the Release child CAS (or the Release freeze
    /// CAS that first published the parent), so the child's immutable
    /// fields (`key`, `seq`, `prev`, `value`) are visible before the
    /// caller dereferences.
    #[inline]
    pub(crate) fn load_child<'g>(&self, left: bool, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        self.child_word(left).load(Acquire, guard)
    }
}

/// Encode the initial `⟨Flag, Dummy⟩` update word.
#[inline]
pub(crate) fn dummy_word<'g, K, V>(dummy: InfoPtr<K, V>) -> Shared<'g, Info<K, V>> {
    Shared::from(dummy).with_tag(FreezeTag::Flag.bit())
}

/// Encode an update word back into a tagged `Shared` for use as a CAS
/// expected/new value.
#[inline]
pub(crate) fn word_shared<'g, K, V>(w: UpdateWord<K, V>) -> Shared<'g, Info<K, V>> {
    Shared::from(w.info).with_tag(w.tag.bit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::state;
    use std::sync::atomic::Ordering::Relaxed;

    fn dummy() -> Box<Info<u64, u64>> {
        Box::new(Info::dummy())
    }

    #[test]
    fn fresh_leaf_shape() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        let l = Node::leaf(SKey::Fin(42), Some(7), 3, std::ptr::null(), dp);
        assert!(l.leaf);
        assert_eq!(l.seq, 3);
        assert_eq!(l.key, SKey::Fin(42));
        assert_eq!(l.value, Some(7));
        assert!(l.prev.is_null());
        let g = crossbeam_epoch::pin();
        assert!(l.load_child(true, &g).is_null());
        assert!(l.load_child(false, &g).is_null());
        let w = l.load_update(&g);
        assert_eq!(w.tag, FreezeTag::Flag);
        assert!(std::ptr::eq(w.info, dp));
        unsafe {
            assert_eq!((*w.info).state.load(Relaxed), state::ABORT);
        }
    }

    #[test]
    fn fresh_internal_points_at_children() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        let a = Node::leaf(SKey::Fin(1), Some(1), 0, std::ptr::null(), dp);
        let b = Node::leaf(SKey::Fin(2), Some(2), 0, std::ptr::null(), dp);
        let (pa, pb): (NodePtr<u64, u64>, NodePtr<u64, u64>) = (&a, &b);
        let i = Node::internal(SKey::Fin(2), 5, pa, pa, pb, dp);
        assert!(!i.leaf);
        assert!(i.value.is_none());
        assert!(std::ptr::eq(i.prev, pa));
        let g = crossbeam_epoch::pin();
        assert_eq!(i.load_child(true, &g).as_raw(), pa);
        assert_eq!(i.load_child(false, &g).as_raw(), pb);
    }

    #[test]
    fn word_shared_roundtrip() {
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        for tag in [FreezeTag::Flag, FreezeTag::Mark] {
            let w = UpdateWord::new(tag, dp);
            let s = word_shared(w);
            assert_eq!(FreezeTag::from_bit(s.tag()), tag);
            assert!(std::ptr::eq(s.as_raw(), dp));
        }
    }

    #[cfg(not(feature = "hot-cold-layout"))]
    #[test]
    fn compact_layout_without_the_feature() {
        // Opting out must actually shed the alignment cost: the hot
        // words pack flush against the cold fields (pointer-aligned,
        // not line-aligned) and a u64→u64 node stays under the two
        // cache lines the split costs.
        assert_eq!(std::mem::align_of::<NodeHot<u64, u64>>(), 8);
        assert!(std::mem::size_of::<Node<u64, u64>>() < 128);
    }

    #[cfg(feature = "hot-cold-layout")]
    #[test]
    fn hot_cold_split_is_a_layout_guarantee() {
        // The mutable words must live in a different cache line than
        // every immutable routing field.
        let d = dummy();
        let dp: InfoPtr<u64, u64> = &*d;
        let n = Node::leaf(SKey::Fin(1), Some(2), 0, std::ptr::null(), dp);
        let base = &n as *const _ as usize;
        let hot = &n.hot as *const _ as usize;
        assert_eq!(hot % 64, 0, "hot section must be cache-line aligned");
        let hot_line = (hot - base) / 64;
        for (name, addr) in [
            ("key", &n.key as *const _ as usize),
            ("value", &n.value as *const _ as usize),
            ("seq", &n.seq as *const _ as usize),
            ("prev", &n.prev as *const _ as usize),
            ("leaf", &n.leaf as *const _ as usize),
        ] {
            assert_ne!(
                (addr - base) / 64,
                hot_line,
                "cold field `{name}` shares a cache line with the hot words"
            );
        }
    }
}
