//! Per-thread, epoch-integrated slab pools for the hot-path allocations.
//!
//! The paper assumes a garbage-collected runtime, so its pseudocode
//! freely allocates one `Info` plus one-to-three `Node`s per update
//! attempt. Forwarding each of those to the global allocator makes
//! `malloc`/`free` the dominant per-operation cost of update-heavy
//! workloads — worse, epoch-deferred frees run on whichever thread
//! performs the collection pass, so the global allocator also pays
//! cross-thread arena traffic for nearly every retirement.
//!
//! This module closes the loop instead with a **two-level pool**:
//! every `Node`/`Info` allocation first tries a thread-local free list
//! keyed by layout class; the epoch collector returns ripe memory
//! *back to a pool* through the typed
//! [`crossbeam_epoch::Guard::defer_recycle`] hook rather than freeing
//! it. Because ripe garbage lands in bursts on whichever thread ran
//! the collection pass, each class also has a lock-free **global
//! spillover stack** of block chunks: overflowing locals push surplus
//! there, and a thread whose local list runs dry pulls a chunk back
//! before falling through to the global allocator. After warm-up, a
//! steady-state update loop allocates from and recycles into pools
//! only; the global allocator remains the fallback for genuinely cold
//! pools.
//!
//! # Why this is sound
//!
//! * Pool memory is allocated with `std::alloc::alloc(Layout::new::<T>())`
//!   — exactly a `Box<T>` allocation — so every pointer handed out here
//!   may still be released with `Box::from_raw` (tree teardown does).
//! * Recycling obeys the same two-epoch rule as freeing: a block enters
//!   a free list only when `defer_recycle` proves no pinned thread can
//!   still reference it, so reuse introduces no ABA hazard that freeing
//!   to `malloc` (which also reuses addresses) would not.
//! * Free lists hold *raw memory*, not values: the destructor runs
//!   before pooling ([`recycle_raw`]), and [`alloc`] writes a fresh
//!   value before handing the block out.
//! * Blocks are shared across `T`s of identical size/alignment (e.g.
//!   `Node<K, V>` for different small `K`/`V`), which the allocator
//!   contract explicitly permits.
//!
//! Local lists spill past [`LOCAL_CAP`] blocks; exiting threads hand
//! their pools to the spillover so survivors inherit the warm memory.
//! The pools retain their peak working set by design — [`trim`]
//! releases everything back to the global allocator at workload
//! boundaries. The `stats` feature adds process-global
//! hit/miss/recycle counters ([`ArenaStats`]).

use std::alloc::{alloc as global_alloc, dealloc as global_dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicPtr, AtomicUsize};

/// Split point for a thread's free list: past this, half the list is
/// packaged into a [`Chunk`] and pushed onto the class's global
/// spillover stack. Ripe garbage arrives in collection-pass bursts on
/// whichever thread ran the pass; the spillover is what routes that
/// surplus to the threads that are actually allocating.
const LOCAL_CAP: usize = 4096;

/// Blocks per spillover chunk (= `LOCAL_CAP / 2`).
const CHUNK_BLOCKS: usize = 2048;

/// Upper bound on pooled scan-stack buffers per thread.
const MAX_STACK_BUFS: usize = 8;

/// One layout class: a free list of uniform raw blocks.
struct Class {
    layout: Layout,
    free: Vec<*mut u8>,
}

/// A thread's pools: a handful of layout classes (one per concrete
/// `Node`/`Info` instantiation — linear scan beats hashing at this
/// cardinality) plus recycled scan-stack buffers.
#[derive(Default)]
struct Pools {
    classes: Vec<Class>,
    stacks: Vec<Vec<*const ()>>,
}

impl Pools {
    fn class_mut(&mut self, layout: Layout) -> &mut Class {
        let idx = match self.classes.iter().position(|c| c.layout == layout) {
            Some(i) => i,
            None => {
                self.classes.push(Class {
                    layout,
                    free: Vec::new(),
                });
                self.classes.len() - 1
            }
        };
        &mut self.classes[idx]
    }
}

impl Drop for Pools {
    fn drop(&mut self) {
        // Thread exit: hand every pooled block to the global spillover
        // so surviving threads inherit the warm memory (benchmark
        // drivers respawn worker threads constantly). Classes whose
        // global slot could not be claimed fall back to deallocation.
        for c in &mut self.classes {
            let blocks = std::mem::take(&mut c.free);
            if blocks.is_empty() {
                continue;
            }
            match global_class(c.layout) {
                Some(g) => g.push_chunk(blocks),
                None => {
                    for p in blocks {
                        // SAFETY: pooled blocks were allocated with
                        // exactly this layout (classes are keyed by it).
                        unsafe { global_dealloc(p, c.layout) };
                    }
                }
            }
        }
    }
}

thread_local! {
    // const-init: keeps the TLS access on the fast path (no lazy-init
    // branch) — this is touched several times per tree operation.
    static POOLS: RefCell<Pools> = const {
        RefCell::new(Pools {
            classes: Vec::new(),
            stacks: Vec::new(),
        })
    };
}

// ---------------------------------------------------------------------------
// Global spillover (second pool level)
// ---------------------------------------------------------------------------

/// A batch of free blocks travelling between threads on a class's
/// spillover stack.
struct Chunk {
    next: *mut Chunk,
    blocks: Vec<*mut u8>,
}

/// Global side of one layout class: a Treiber stack of [`Chunk`]s.
///
/// Pops take the *entire* stack with one `swap(null)` — the popper then
/// owns every node outright, so there is no ABA window and no
/// use-after-free on `next` traversal (the classic Treiber pop hazard
/// never arises). Unabsorbed chunks are re-pushed.
struct GlobalClass {
    /// Claim/match state: 0 = free slot, 1 = mid-claim, 2 = ready.
    state: AtomicUsize,
    size: AtomicUsize,
    align: AtomicUsize,
    head: AtomicPtr<Chunk>,
}

impl GlobalClass {
    const fn new() -> Self {
        GlobalClass {
            state: AtomicUsize::new(0),
            size: AtomicUsize::new(0),
            align: AtomicUsize::new(0),
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn push_chunk(&self, blocks: Vec<*mut u8>) {
        let chunk = Box::into_raw(Box::new(Chunk {
            next: std::ptr::null_mut(),
            blocks,
        }));
        loop {
            let head = self.head.load(Relaxed);
            // SAFETY: `chunk` is unpublished — we still own it.
            unsafe { (*chunk).next = head };
            // Release: publishes the chunk's contents to the popper.
            if self
                .head
                .compare_exchange_weak(head, chunk, Release, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Take one chunk's worth of blocks, re-pushing any surplus chunks.
    fn pop_blocks(&self) -> Option<Vec<*mut u8>> {
        // Acquire pairs with the push's Release; after the swap the
        // whole chain is exclusively ours.
        let mut head = self.head.swap(std::ptr::null_mut(), AcqRel);
        if head.is_null() {
            return None;
        }
        // SAFETY: exclusive ownership of every node in the chain.
        let first = unsafe { Box::from_raw(head) };
        head = first.next;
        while !head.is_null() {
            let chunk = unsafe { Box::from_raw(head) };
            head = chunk.next;
            self.push_chunk(chunk.blocks);
        }
        Some(first.blocks)
    }
}

// SAFETY: the raw pointers inside are either atomics or owned blocks
// whose cross-thread hand-off is exactly what this type mediates.
unsafe impl Sync for GlobalClass {}

/// Fixed global registry of spillover classes (a process uses a couple
/// of `Node`/`Info` layouts; 16 slots is generous). Lock-free: slots
/// are claimed with a 0→1→2 state CAS; a full registry just means that
/// layout degrades to thread-local pooling.
static GLOBAL_CLASSES: [GlobalClass; 16] = [const { GlobalClass::new() }; 16];

fn global_class(layout: Layout) -> Option<&'static GlobalClass> {
    'slots: for slot in &GLOBAL_CLASSES {
        loop {
            match slot.state.load(Acquire) {
                0 => {
                    if slot.state.compare_exchange(0, 1, AcqRel, Acquire).is_ok() {
                        slot.size.store(layout.size(), Relaxed);
                        slot.align.store(layout.align(), Relaxed);
                        // Release: readers matching on state == 2 see
                        // the layout fields.
                        slot.state.store(2, Release);
                        return Some(slot);
                    }
                    // Lost the claim: re-read the slot (now 1 or 2).
                }
                // Mid-claim by another thread: its layout may be ours.
                // The window is two plain stores — spin until the slot
                // is ready rather than skipping ahead, which could
                // claim a duplicate slot for the same layout and
                // permanently shadow this one (stranding its chunks).
                1 => std::hint::spin_loop(),
                _ => {
                    if slot.size.load(Relaxed) == layout.size()
                        && slot.align.load(Relaxed) == layout.align()
                    {
                        return Some(slot);
                    }
                    continue 'slots;
                }
            }
        }
    }
    None
}

/// Allocate a `T` from the current thread's pool — refilled from the
/// class's global spillover on a miss, global allocator as the final
/// fallback — and initialize it with `value`. The returned pointer is
/// `Box`-compatible: it may be released with `Box::from_raw`,
/// [`free_now`], or retired through `defer_recycle` + [`recycle_raw`].
pub(crate) fn alloc<T>(value: T) -> *mut T {
    let layout = Layout::new::<T>();
    debug_assert!(layout.size() > 0, "arena does not pool ZSTs");
    // `try_with` so reclamation running during thread teardown (after
    // this TLS slot is gone) degrades to the global allocator.
    let pooled = POOLS
        .try_with(|p| {
            let mut p = p.borrow_mut();
            let class = p.class_mut(layout);
            if let Some(raw) = class.free.pop() {
                return Some(raw);
            }
            // Local miss: pull a spillover chunk before giving up —
            // this is what rebalances bursts of ripe garbage from the
            // collecting thread to the allocating ones.
            let refill = global_class(layout).and_then(GlobalClass::pop_blocks)?;
            let class = p.class_mut(layout);
            class.free = refill;
            class.free.pop()
        })
        .ok()
        .flatten();
    let ptr = match pooled {
        Some(raw) => {
            counters::hit();
            raw as *mut T
        }
        None => {
            counters::miss();
            // SAFETY: non-zero size asserted above.
            let raw = unsafe { global_alloc(layout) };
            if raw.is_null() {
                handle_alloc_error(layout);
            }
            raw as *mut T
        }
    };
    // SAFETY: freshly allocated, properly aligned, uninitialized block.
    unsafe { ptr.write(value) };
    ptr
}

/// Run `T`'s destructor and return the block to the current thread's
/// pool. For allocations that were never published — the caller must be
/// the sole owner (the immediate-free counterpart of [`recycle_raw`]).
pub(crate) fn free_now<T>(ptr: *mut T) {
    // SAFETY: caller owns `ptr` exclusively (see doc contract).
    unsafe {
        std::ptr::drop_in_place(ptr);
        release(ptr as *mut u8, Layout::new::<T>());
    }
}

/// The `defer_recycle` hook: destroy the value and pool the memory on
/// whichever thread runs the collection pass.
///
/// # Safety
///
/// `ptr` must be a live, exclusively-owned allocation of `T` compatible
/// with `Layout::new::<T>()` (the epoch collector guarantees exclusivity
/// when it runs ripe bags).
pub(crate) unsafe fn recycle_raw<T>(ptr: *mut T) {
    // Destructor first: it may itself allocate or defer, so it must run
    // outside the pool borrow.
    unsafe {
        std::ptr::drop_in_place(ptr);
        release(ptr as *mut u8, Layout::new::<T>());
    }
}

/// Pool a raw block. When the thread's free list passes [`LOCAL_CAP`],
/// half of it spills to the class's global stack (other threads pull it
/// back on their misses); the global allocator is touched only when the
/// thread is mid-teardown or the class registry is full.
///
/// # Safety
///
/// `raw` must have been allocated with `layout` and be exclusively owned.
unsafe fn release(raw: *mut u8, layout: Layout) {
    let pooled = POOLS
        .try_with(|p| {
            let mut p = p.borrow_mut();
            let class = p.class_mut(layout);
            class.free.push(raw);
            if class.free.len() >= LOCAL_CAP {
                let spill: Vec<*mut u8> = class.free.split_off(class.free.len() - CHUNK_BLOCKS);
                match global_class(layout) {
                    Some(g) => g.push_chunk(spill),
                    None => {
                        for p in spill {
                            // SAFETY: allocated with `layout` (class key).
                            unsafe { global_dealloc(p, layout) };
                        }
                    }
                }
            }
        })
        .is_ok();
    if pooled {
        counters::recycled(layout.size() as u64);
    } else {
        // SAFETY: allocated with `layout` per this function's contract.
        unsafe { global_dealloc(raw, layout) };
    }
}

// ---------------------------------------------------------------------------
// Pooled scan stacks
// ---------------------------------------------------------------------------

/// A pooled descent stack of raw node pointers, used by the range-scan
/// traversals so a warm read-only scan performs **zero** global
/// allocations: the buffer is borrowed from the thread's pool on
/// construction and returned on drop. Type-erased to `*const ()` so one
/// buffer serves every `Node<K, V>` instantiation.
pub(crate) struct ScanStack<T> {
    buf: Vec<*const ()>,
    _marker: PhantomData<*const T>,
}

impl<T> ScanStack<T> {
    pub(crate) fn new() -> Self {
        let buf = POOLS
            .try_with(|p| p.borrow_mut().stacks.pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        ScanStack {
            buf,
            _marker: PhantomData,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, ptr: *const T) {
        self.buf.push(ptr as *const ());
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<*const T> {
        self.buf.pop().map(|p| p as *const T)
    }

    /// Read the entry `i` positions below the top without popping
    /// (`i == 0` is the top). Used by the batch prefix stack, which
    /// resumes descents from retained frames rather than consuming them.
    #[inline]
    pub(crate) fn peek_from_top(&self, i: usize) -> Option<*const T> {
        let n = self.buf.len();
        if i < n {
            Some(self.buf[n - 1 - i] as *const T)
        } else {
            None
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
}

impl<T> Drop for ScanStack<T> {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 {
            return; // nothing worth pooling
        }
        let buf = std::mem::take(&mut self.buf);
        let _ = POOLS.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.stacks.len() < MAX_STACK_BUFS {
                let mut buf = buf;
                buf.clear();
                p.stacks.push(buf);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Counters (stats feature)
// ---------------------------------------------------------------------------

/// Process-global arena counters, exposed through `arena_stats` (a
/// `pnb_bst` re-export that exists with the `stats` feature).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served from a thread-local free list.
    pub pool_hits: u64,
    /// Allocations that fell back to the global allocator.
    pub pool_misses: u64,
    /// Bytes returned to thread-local free lists by the collector.
    pub recycled_bytes: u64,
}

#[cfg(feature = "stats")]
mod counters {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub(super) static HITS: AtomicU64 = AtomicU64::new(0);
    pub(super) static MISSES: AtomicU64 = AtomicU64::new(0);
    pub(super) static RECYCLED: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn hit() {
        HITS.fetch_add(1, Relaxed);
    }
    #[inline]
    pub(super) fn miss() {
        MISSES.fetch_add(1, Relaxed);
    }
    #[inline]
    pub(super) fn recycled(bytes: u64) {
        RECYCLED.fetch_add(bytes, Relaxed);
    }
}

#[cfg(not(feature = "stats"))]
mod counters {
    #[inline(always)]
    pub(super) fn hit() {}
    #[inline(always)]
    pub(super) fn miss() {}
    #[inline(always)]
    pub(super) fn recycled(_bytes: u64) {}
}

/// Release every block pooled by *this thread* and by the global
/// spillover stacks back to the global allocator.
///
/// The pools deliberately retain their peak working set (that is what
/// makes warm updates allocation-free), which also means that memory is
/// invisible to the rest of the process until trimmed. Call this at
/// workload boundaries — e.g. between structures in a benchmark
/// harness, or after tearing down the last tree — when the retained
/// footprint matters more than the next tree's warm-up.
pub fn trim() {
    let _ = POOLS.try_with(|p| {
        let mut p = p.borrow_mut();
        for c in &mut p.classes {
            for blk in c.free.drain(..) {
                // SAFETY: pooled blocks were allocated with exactly the
                // class layout.
                unsafe { global_dealloc(blk, c.layout) };
            }
        }
        p.stacks.clear();
    });
    for slot in &GLOBAL_CLASSES {
        if slot.state.load(Acquire) != 2 {
            continue;
        }
        let layout = Layout::from_size_align(slot.size.load(Relaxed), slot.align.load(Relaxed))
            .expect("registered class layouts are valid");
        while let Some(blocks) = slot.pop_blocks() {
            for blk in blocks {
                // SAFETY: spillover blocks were allocated with the
                // class layout.
                unsafe { global_dealloc(blk, layout) };
            }
        }
    }
}

/// Read the process-global arena counters (monotone; assert on deltas).
#[cfg(feature = "stats")]
pub fn arena_stats() -> ArenaStats {
    use std::sync::atomic::Ordering::Relaxed;
    ArenaStats {
        pool_hits: counters::HITS.load(Relaxed),
        pool_misses: counters::MISSES.load(Relaxed),
        recycled_bytes: counters::RECYCLED.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_now_reuses_the_block() {
        let p1 = alloc(0xDEAD_BEEFu64);
        assert_eq!(unsafe { *p1 }, 0xDEAD_BEEF);
        free_now(p1);
        // Same thread, same layout class: the very next allocation must
        // come from the pool — i.e. the same block.
        let p2 = alloc(7u64);
        assert_eq!(p2, p1, "pool must serve the recycled block (LIFO)");
        assert_eq!(unsafe { *p2 }, 7);
        free_now(p2);
    }

    #[test]
    fn recycle_raw_runs_the_destructor() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let before = DROPS.load(Ordering::Relaxed);
        let p = alloc(D(1));
        unsafe { recycle_raw(p) };
        assert_eq!(DROPS.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn box_from_raw_is_compatible_with_pool_blocks() {
        // Tree teardown releases current-tree nodes with Box::from_raw,
        // whether they came from the pool or not.
        let p = alloc(vec![1u8, 2, 3]);
        let b = unsafe { Box::from_raw(p) };
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn distinct_layouts_use_distinct_classes() {
        let a = alloc(1u64);
        let b = alloc([1u128; 4]);
        free_now(a);
        free_now(b);
        let b2 = alloc([2u128; 4]);
        assert_eq!(b2, b, "16-align class must not be served the u64 block");
        free_now(b2);
    }

    #[test]
    fn scan_stack_pools_its_buffer() {
        let mut s: ScanStack<u64> = ScanStack::new();
        let x = 9u64;
        s.push(&x);
        assert_eq!(s.len(), 1);
        let cap_ptr = s.buf.as_ptr();
        assert_eq!(s.pop(), Some(&x as *const u64));
        assert_eq!(s.pop(), None);
        drop(s);
        // The buffer (now warm) must be handed to the next stack.
        let s2: ScanStack<u32> = ScanStack::new();
        assert_eq!(s2.buf.as_ptr(), cap_ptr);
    }
}
