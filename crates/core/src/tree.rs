//! The PNB-BST itself: construction, `Insert`, `Delete`, `Find`
//! (paper Figure 5 and Figure 3 lines 69–82), and teardown.
//!
//! The tree is *leaf-oriented*: all elements live in leaves; internal
//! nodes only route. It is *full*: every internal node has exactly two
//! children, maintained by the subtree-replacement shapes of Figure 1.
//! It is *persistent*: replaced nodes stay linked through `prev` pointers
//! so that an operation belonging to phase `i` can reconstruct the
//! version-`i` tree `T_i` (see [`crate::scan`] and [`crate::snapshot`]).

use crossbeam_epoch::{self as epoch, Guard, Shared};
use crossbeam_utils::CachePadded;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::{Acquire, Relaxed};

use crate::arena;
use crate::combine::{PubList, COMBINE_GATE};
use crate::info::{Info, InfoPtr, NodePtr, OpKind, UpdateWord};
use crate::key::SKey;
use crate::node::Node;
use crate::stats::{Stats, StatsSnapshot};

/// A persistent non-blocking binary search tree supporting wait-free
/// range queries, after Fatourou & Ruppert (SPAA 2019).
///
/// * [`insert`](Self::insert), [`delete`](Self::delete) and
///   [`get`](Self::get)/[`contains`](Self::contains) are lock-free
///   (non-blocking): some operation always completes in a bounded number
///   of steps system-wide, and operations on different parts of the tree
///   do not interfere.
/// * [`range_scan`](Self::range_scan) (and friends) are **wait-free**:
///   every scan completes in a bounded number of its own steps, no matter
///   what other threads do, because it traverses the immutable
///   version-`seq` tree of its phase.
///
/// Keys follow the paper's *set* semantics: inserting a key that is
/// already present fails (returns `false`) rather than replacing the
/// value.
///
/// # Example
///
/// ```
/// use pnb_bst::PnbBst;
///
/// let tree: PnbBst<u64, &str> = PnbBst::new();
/// assert!(tree.insert(2, "two"));
/// assert!(tree.insert(5, "five"));
/// assert!(!tree.insert(2, "again")); // no replace
/// assert_eq!(tree.get(&5), Some("five"));
/// assert_eq!(tree.range_scan(&0, &10), vec![(2, "two"), (5, "five")]);
/// assert_eq!(tree.delete(&2), true);
/// assert_eq!(tree.get(&2), None);
/// ```
pub struct PnbBst<K, V> {
    /// The root `Internal` node (key `∞₂`); never changes (Observation 1).
    pub(crate) root: NodePtr<K, V>,
    /// The paper's shared `Counter`: the current phase number. Incremented
    /// only by range scans / snapshots; read at the start of every update
    /// attempt and re-checked by the handshake.
    pub(crate) counter: CachePadded<AtomicU64>,
    /// The per-tree Dummy `Info` object (state permanently `Abort`).
    pub(crate) dummy: InfoPtr<K, V>,
    pub(crate) stats: Stats,
    /// Publication list for the flat-combining upsert fallback
    /// (DESIGN.md §11.3); engaged only past the contention gate.
    pub(crate) combine: PubList<K, V>,
}

// SAFETY: the structure is designed for concurrent use — all shared
// mutable state is behind atomics and the epoch collector; `K`/`V` cross
// threads both in shared reads and in deferred destruction, hence the
// `Send + Sync` bounds on both.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for PnbBst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for PnbBst<K, V> {}

/// Result of a single update *attempt* (one pass of a driver's retry
/// loop). Splitting the drivers at attempt granularity is what lets the
/// `testing-internals` pause harness stop an operation exactly between
/// its publish (first freeze CAS) and its completion without any
/// testing-only plumbing through the production paths.
pub(crate) enum AttemptOutcome<R, K, V> {
    /// The operation finished read-only, without publishing anything
    /// (duplicate insert / delete of an absent key), with result `R`.
    /// Linearized at the validated read of the parent's update field.
    Decided(R),
    /// The attempt published its `Info`: it is now visible to (and
    /// completable by) every thread. The creation reference must be
    /// released by driving it through [`PnbBst::finish_published`]; if
    /// that reports a commit, the operation's result is `commit`.
    Published {
        /// The published `Info` (creation reference still held).
        info: InfoPtr<K, V>,
        /// The operation's result if this attempt commits.
        commit: R,
    },
    /// The attempt failed before publishing (stale validation or a lost
    /// first freeze CAS); the driver retries.
    Retry,
}

impl<K, V> Default for PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Create an empty tree: a root with key `∞₂` whose children are the
    /// sentinel leaves `∞₁` and `∞₂` (paper Figure 2, lines 28–31).
    pub fn new() -> Self {
        let dummy: InfoPtr<K, V> = Box::into_raw(Box::new(Info::dummy()));
        let left: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(
            SKey::Inf1,
            None,
            0,
            std::ptr::null(),
            dummy,
        )));
        let right: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(
            SKey::Inf2,
            None,
            0,
            std::ptr::null(),
            dummy,
        )));
        let root: NodePtr<K, V> = Box::into_raw(Box::new(Node::internal(
            SKey::Inf2,
            0,
            std::ptr::null(),
            left,
            right,
            dummy,
        )));
        PnbBst {
            root,
            counter: CachePadded::new(AtomicU64::new(0)),
            dummy,
            stats: Stats::default(),
            combine: PubList::new(),
        }
    }

    /// The current phase number (the paper's `Counter`). Mostly useful
    /// for diagnostics and tests: it advances once per range scan or
    /// snapshot.
    pub fn phase(&self) -> u64 {
        // Relaxed: a diagnostic snapshot of a monotone counter — no
        // protocol decision hangs off this read.
        self.counter.load(Relaxed)
    }

    /// Read the operation statistics counters (all zero unless the
    /// `stats` feature is enabled).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Read `Counter` at the start of an attempt / read-only pass (paper
    /// lines 74, 155, 177).
    ///
    /// Acquire: the version-`seq` interpretation of the child pointers
    /// loaded by the subsequent search must not float above this read.
    /// Staleness is benign — a commit is only possible after `Help`'s
    /// SeqCst handshake re-confirms the phase — so the scan-handshake
    /// total order is not needed here.
    #[inline]
    pub(crate) fn read_phase(&self) -> u64 {
        self.counter.load(Acquire)
    }

    /// Insert `key → value`. Returns `true` if the key was absent and was
    /// inserted, `false` if it was already present (the paper's set
    /// semantics — no replacement happens; see [`upsert`](Self::upsert)
    /// for replace-on-collision).
    ///
    /// Lock-free; linearizes at the first freeze CAS of the successful
    /// attempt (if it succeeds) or at the validated read of the parent's
    /// update field (if the key was present).
    ///
    /// Compat wrapper: pins and drops an epoch guard per call. Hot loops
    /// should use a pinned session ([`pin`](Self::pin)) instead.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = &epoch::pin();
        self.insert_in(&key, &value, guard)
    }

    /// Insert or replace `key → value` atomically, returning the
    /// previously stored value (`None` if the key was absent).
    ///
    /// The replace case is a new one-leaf subtree-replacement shape run
    /// through the same freeze-validate-CAS protocol as `Insert`/`Delete`
    /// (freeze the parent with *Flag* and the old leaf with *Mark*, then
    /// swing the child pointer to a fresh leaf whose `prev` is the old
    /// one), so the paper's linearization and non-blocking arguments
    /// carry over unchanged: the operation linearizes at the first freeze
    /// CAS of its successful attempt, and version-`seq` readers keep
    /// seeing the old leaf through the `prev` chain.
    ///
    /// Compat note: prefer [`Handle::upsert`](crate::Handle::upsert) in
    /// hot loops — this wrapper pins an epoch guard per call.
    pub fn upsert(&self, key: K, value: V) -> Option<V> {
        let guard = &epoch::pin();
        self.upsert_in(&key, &value, guard)
    }

    /// Remove `key`, returning `true` if it was present.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn delete(&self, key: &K) -> bool {
        self.remove(key).is_some()
    }

    /// Remove `key`, returning its value if it was present.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn remove(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        self.remove_in(key, guard)
    }

    /// Look up `key` (the paper's `Find`, lines 69–82). Returns a clone
    /// of the stored value.
    ///
    /// Helps at most the updates pending on the parent/grandparent of the
    /// leaf it arrives at (the paper's lightweight helping).
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = &epoch::pin();
        self.get_in(key, guard)
    }

    /// Whether `key` is in the set.
    ///
    /// Compat wrapper: pins per call; see [`pin`](Self::pin).
    pub fn contains(&self, key: &K) -> bool {
        let guard = &epoch::pin();
        self.contains_in(key, guard)
    }

    /// [`get`](Self::get) under a caller-provided guard (the session hot
    /// path — no per-op pin).
    pub(crate) fn get_in(&self, key: &K, guard: &Guard) -> Option<V> {
        loop {
            let seq = self.read_phase(); // line 74
            let (gp, p, l) = self.search(key, seq, guard); // line 75

            // SAFETY: `search` returns non-null p and l (Invariant 4.7).
            let p_ref = unsafe { p.deref() };
            if self.validate_leaf(gp, p_ref, l, key, guard).is_some() {
                // Linearized during the successful validation.
                let l_ref = unsafe { l.deref() };
                return if l_ref.key.fin_eq(key) {
                    l_ref.value.clone()
                } else {
                    None
                };
            }
            self.stats.validation_failures();
        }
    }

    /// [`contains`](Self::contains) under a caller-provided guard.
    pub(crate) fn contains_in(&self, key: &K, guard: &Guard) -> bool {
        loop {
            let seq = self.read_phase();
            let (gp, p, l) = self.search(key, seq, guard);
            let p_ref = unsafe { p.deref() };
            if self.validate_leaf(gp, p_ref, l, key, guard).is_some() {
                let l_ref = unsafe { l.deref() };
                return l_ref.key.fin_eq(key);
            }
            self.stats.validation_failures();
        }
    }

    /// Full `Insert` driver under a caller-provided guard: retry
    /// attempts until one decides or commits.
    pub(crate) fn insert_in(&self, key: &K, value: &V, guard: &Guard) -> bool {
        loop {
            match self.insert_attempt(key, value, guard) {
                AttemptOutcome::Decided(r) => return r,
                AttemptOutcome::Published { info, commit } => {
                    if self.finish_published(info, guard) {
                        return commit;
                    }
                }
                AttemptOutcome::Retry => {}
            }
        }
    }

    /// Full `Delete` driver under a caller-provided guard.
    pub(crate) fn remove_in(&self, key: &K, guard: &Guard) -> Option<V> {
        loop {
            match self.delete_attempt(key, guard) {
                AttemptOutcome::Decided(r) => return r,
                AttemptOutcome::Published { info, commit } => {
                    if self.finish_published(info, guard) {
                        return commit;
                    }
                }
                AttemptOutcome::Retry => {}
            }
        }
    }

    /// Full `Upsert` driver under a caller-provided guard, with the
    /// flat-combining fallback: past [`COMBINE_GATE`] consecutive failed
    /// attempts (the observable signature of a hot leaf being CAS-fought
    /// over), the operation publishes itself on the tree's publication
    /// list and lets one combiner drain the hot key's queued updates in
    /// a single Execute cycle (DESIGN.md §11.3).
    pub(crate) fn upsert_in(&self, key: &K, value: &V, guard: &Guard) -> Option<V> {
        let mut consecutive_failures = 0u32;
        loop {
            match self.upsert_attempt(key, value, guard) {
                AttemptOutcome::Decided(r) => return r,
                AttemptOutcome::Published { info, commit } => {
                    if self.finish_published(info, guard) {
                        return commit;
                    }
                }
                AttemptOutcome::Retry => {}
            }
            consecutive_failures += 1;
            if consecutive_failures >= COMBINE_GATE {
                if let Some(displaced) = self.try_combine(key, value, guard) {
                    return displaced;
                }
                consecutive_failures = 0; // combining declined: back off to CAS
            }
        }
    }

    /// The ungated `Upsert` driver: used by the combiner itself (which
    /// must never recurse into combining) and anywhere the publication
    /// path is unwanted.
    pub(crate) fn upsert_plain_in(&self, key: &K, value: &V, guard: &Guard) -> Option<V> {
        loop {
            match self.upsert_attempt(key, value, guard) {
                AttemptOutcome::Decided(r) => return r,
                AttemptOutcome::Published { info, commit } => {
                    if self.finish_published(info, guard) {
                        return commit;
                    }
                }
                AttemptOutcome::Retry => {}
            }
        }
    }

    /// One `Insert` attempt (paper lines 147–168, one pass of the loop).
    pub(crate) fn insert_attempt(
        &self,
        key: &K,
        value: &V,
        guard: &Guard,
    ) -> AttemptOutcome<bool, K, V> {
        let seq = self.read_phase(); // line 155
        let (gp, p, l) = self.search(key, seq, guard); // line 156
        self.insert_attempt_at(key, value, gp, p, l, seq, guard)
    }

    /// The post-search half of an `Insert` attempt, for callers that
    /// located `(gp, p, l)` themselves (the batch prefix-sharing path):
    /// validation onward. The triple may be stale — validation is the
    /// safety net either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_attempt_at(
        &self,
        key: &K,
        value: &V,
        gp: Shared<'_, Node<K, V>>,
        p: Shared<'_, Node<K, V>>,
        l: Shared<'_, Node<K, V>>,
        seq: u64,
        guard: &Guard,
    ) -> AttemptOutcome<bool, K, V> {
        self.stats.update_attempts();
        // SAFETY: non-null per Invariant 4.8.
        let p_ref = unsafe { p.deref() };
        let l_ref = unsafe { l.deref() };
        let Some((_, pupdate)) = self.validate_leaf(gp, p_ref, l, key, guard) else {
            self.stats.validation_failures();
            return AttemptOutcome::Retry;
        };
        if l_ref.key.fin_eq(key) {
            return AttemptOutcome::Decided(false); // line 159: duplicate
        }
        // Build the replacement subtree (lines 161–163): two fresh
        // leaves under a fresh internal node whose prev is `l`.
        let new_internal = self.build_insert_subtree(key, value, l_ref, l.as_raw(), seq, guard);
        let l_update = l_ref.load_update(guard); // read at call site (line 164)
        let nodes = [p.as_raw(), l.as_raw()];
        let old_update = [pupdate, l_update];
        let mark = [false, true];
        match self.execute(
            OpKind::Insert,
            &nodes,
            &old_update,
            &mark,
            p.as_raw(),
            l.as_raw(),
            new_internal,
            seq,
            guard,
        ) {
            crate::help::ExecOutcome::Published(info) => {
                AttemptOutcome::Published { info, commit: true }
            }
            crate::help::ExecOutcome::Failed => AttemptOutcome::Retry,
        }
    }

    /// The two fresh leaves + internal node of an insert's replacement
    /// subtree (paper lines 161–163).
    fn build_insert_subtree(
        &self,
        key: &K,
        value: &V,
        l_ref: &Node<K, V>,
        l_raw: NodePtr<K, V>,
        seq: u64,
        _guard: &Guard,
    ) -> NodePtr<K, V> {
        let new_leaf: NodePtr<K, V> = arena::alloc(Node::leaf(
            SKey::Fin(key.clone()),
            Some(value.clone()),
            seq,
            std::ptr::null(),
            self.dummy,
        ));
        let sibling_leaf: NodePtr<K, V> = arena::alloc(Node::leaf(
            l_ref.key.clone(),
            l_ref.value.clone(),
            seq,
            std::ptr::null(),
            self.dummy,
        ));
        // Smaller key goes left; the internal node takes the larger key.
        let key_lt_leaf = l_ref.key.fin_lt(key); // k < l.key
        let (lc, rc) = if key_lt_leaf {
            (new_leaf, sibling_leaf)
        } else {
            (sibling_leaf, new_leaf)
        };
        let internal_key = std::cmp::max(SKey::Fin(key.clone()), l_ref.key.clone());
        arena::alloc(Node::internal(internal_key, seq, l_raw, lc, rc, self.dummy))
    }

    /// One `Upsert` attempt: the insert shape when the key is absent, or
    /// the one-leaf *replace* shape when it is present. `commit` carries
    /// the displaced value for the replace case.
    pub(crate) fn upsert_attempt(
        &self,
        key: &K,
        value: &V,
        guard: &Guard,
    ) -> AttemptOutcome<Option<V>, K, V> {
        let seq = self.read_phase();
        let (gp, p, l) = self.search(key, seq, guard);
        self.upsert_attempt_at(key, value, gp, p, l, seq, guard)
    }

    /// The post-search half of an `Upsert` attempt (see
    /// [`insert_attempt_at`](Self::insert_attempt_at)).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn upsert_attempt_at(
        &self,
        key: &K,
        value: &V,
        gp: Shared<'_, Node<K, V>>,
        p: Shared<'_, Node<K, V>>,
        l: Shared<'_, Node<K, V>>,
        seq: u64,
        guard: &Guard,
    ) -> AttemptOutcome<Option<V>, K, V> {
        self.stats.update_attempts();
        // SAFETY: non-null per Invariant 4.8.
        let p_ref = unsafe { p.deref() };
        let l_ref = unsafe { l.deref() };
        let Some((_, pupdate)) = self.validate_leaf(gp, p_ref, l, key, guard) else {
            self.stats.validation_failures();
            return AttemptOutcome::Retry;
        };
        // Failpoint between validation and the freeze CAS: lets tests
        // widen the race window (a yield here on a small machine makes
        // contended CAS failures reproducible). No-op in normal builds.
        crate::failpoint::hit("upsert::pre_publish");
        let (kind, new_child, displaced) = if l_ref.key.fin_eq(key) {
            // Replace shape: one fresh leaf, prev = the old leaf, so
            // version-`seq` readers still reach the displaced value.
            let new_leaf: NodePtr<K, V> = arena::alloc(Node::leaf(
                SKey::Fin(key.clone()),
                Some(value.clone()),
                seq,
                l.as_raw(),
                self.dummy,
            ));
            (OpKind::Replace, new_leaf, l_ref.value.clone())
        } else {
            let new_internal = self.build_insert_subtree(key, value, l_ref, l.as_raw(), seq, guard);
            (OpKind::Insert, new_internal, None)
        };
        let l_update = l_ref.load_update(guard);
        let nodes = [p.as_raw(), l.as_raw()];
        let old_update = [pupdate, l_update];
        let mark = [false, true];
        match self.execute(
            kind,
            &nodes,
            &old_update,
            &mark,
            p.as_raw(),
            l.as_raw(),
            new_child,
            seq,
            guard,
        ) {
            crate::help::ExecOutcome::Published(info) => AttemptOutcome::Published {
                info,
                commit: displaced,
            },
            crate::help::ExecOutcome::Failed => AttemptOutcome::Retry,
        }
    }

    /// One `Delete` attempt (paper lines 169–195, one pass of the loop).
    pub(crate) fn delete_attempt(&self, key: &K, guard: &Guard) -> AttemptOutcome<Option<V>, K, V> {
        let seq = self.read_phase(); // line 177
        let (gp, p, l) = self.search(key, seq, guard); // line 178
        self.delete_attempt_at(key, gp, p, l, seq, guard)
    }

    /// The post-search half of a `Delete` attempt (see
    /// [`insert_attempt_at`](Self::insert_attempt_at)).
    pub(crate) fn delete_attempt_at(
        &self,
        key: &K,
        gp: Shared<'_, Node<K, V>>,
        p: Shared<'_, Node<K, V>>,
        l: Shared<'_, Node<K, V>>,
        seq: u64,
        guard: &Guard,
    ) -> AttemptOutcome<Option<V>, K, V> {
        self.stats.update_attempts();
        // SAFETY: non-null per Invariant 4.9.
        let p_ref = unsafe { p.deref() };
        let l_ref = unsafe { l.deref() };
        let Some((gpupdate, pupdate)) = self.validate_leaf(gp, p_ref, l, key, guard) else {
            self.stats.validation_failures();
            return AttemptOutcome::Retry;
        };
        if !l_ref.key.fin_eq(key) {
            return AttemptOutcome::Decided(None); // line 181: absent
        }
        // `l.key == k` is finite, so p != Root and gp is non-null
        // (Invariant 4.9) and gpupdate was produced by validation.
        let gpupdate = gpupdate.expect("gp validated when l.key is finite");
        // Locate the sibling in T_seq (line 182): if l is the right
        // child (l.key >= p.key) the sibling is the left child.
        let sib_is_left = !p_ref.key.fin_lt(key); // l.key >= p.key ⟺ !(k < p.key)
        let sibling = self.read_child(p_ref, sib_is_left, seq, guard);
        // Line 183: sibling must be the *current* child of p.
        let Some(_) = self.validate_link(p_ref, sibling, sib_is_left, guard) else {
            self.stats.validation_failures();
            return AttemptOutcome::Retry;
        };
        // SAFETY: read_child returns non-null (Invariant 4.5).
        let sib_ref = unsafe { sibling.deref() };
        // Build the replacement: a copy of the sibling with seq = seq
        // and prev = p (line 185). Sharing the sibling's children is
        // safe because the sibling is frozen before the child CAS.
        let new_node: NodePtr<K, V> = if sib_ref.leaf {
            arena::alloc(Node::leaf(
                sib_ref.key.clone(),
                sib_ref.value.clone(),
                seq,
                p.as_raw(),
                self.dummy,
            ))
        } else {
            let sl = sib_ref.load_child(true, guard);
            let sr = sib_ref.load_child(false, guard);
            arena::alloc(Node::internal(
                sib_ref.key.clone(),
                seq,
                p.as_raw(),
                sl.as_raw(),
                sr.as_raw(),
                self.dummy,
            ))
        };
        // Lines 186–189: obtain supdate, validating that the copied
        // children are still the sibling's current children.
        let supdate: UpdateWord<K, V> = if !sib_ref.leaf {
            // SAFETY: new_node was just allocated by us.
            let nn = unsafe { &*new_node };
            let nl = nn.load_child(true, guard);
            let nr = nn.load_child(false, guard);
            let first = self.validate_link(sib_ref, nl, true, guard);
            let ok = match first {
                Some(up) => self.validate_link(sib_ref, nr, false, guard).map(|_| up),
                None => None,
            };
            match ok {
                Some(up) => up,
                None => {
                    self.stats.validation_failures();
                    // Never published: no other thread has seen
                    // new_node — recycle it immediately.
                    arena::free_now(new_node as *mut Node<K, V>);
                    return AttemptOutcome::Retry;
                }
            }
        } else {
            sib_ref.load_update(guard) // line 189
        };
        // Capture the value before the leaf may be retired.
        let removed = l_ref.value.clone();
        let nodes = [gp.as_raw(), p.as_raw(), l.as_raw(), sibling.as_raw()];
        let l_update = l_ref.load_update(guard); // read at call site (line 190)
        let old_update = [gpupdate, pupdate, l_update, supdate];
        let mark = [false, true, true, true];
        match self.execute(
            OpKind::Delete,
            &nodes,
            &old_update,
            &mark,
            gp.as_raw(),
            p.as_raw(),
            new_node,
            seq,
            guard,
        ) {
            crate::help::ExecOutcome::Published(info) => AttemptOutcome::Published {
                info,
                commit: removed,
            },
            crate::help::ExecOutcome::Failed => AttemptOutcome::Retry,
        }
    }
}

impl<K, V> Drop for PnbBst<K, V> {
    fn drop(&mut self) {
        // We have `&mut self`: no operation is in flight, so the *current*
        // tree (child pointers only — every prev-target was already
        // retired through the epoch collector when it was unlinked) plus
        // the dummy Info are exactly what we still own.
        // All orderings Relaxed: `&mut self` proves quiescence — no
        // concurrent access exists to order against.
        unsafe {
            let guard = epoch::unprotected();
            let mut stack: Vec<NodePtr<K, V>> = vec![self.root];
            while let Some(ptr) = stack.pop() {
                let node = &*ptr;
                // Release the Info reference held by this node's update
                // field.
                let info = node.update_word().load(Relaxed, guard).as_raw();
                if !std::ptr::eq(info, self.dummy) {
                    let i = &*info;
                    debug_assert!(
                        !i.retired.load(Relaxed),
                        "live node references a retired Info"
                    );
                    if i.refs.fetch_sub(1, Relaxed) == 1 {
                        drop(Box::from_raw(info as *mut Info<K, V>));
                    }
                }
                if !node.leaf {
                    stack.push(node.child_word(true).load(Relaxed, guard).as_raw());
                    stack.push(node.child_word(false).load(Relaxed, guard).as_raw());
                }
                drop(Box::from_raw(ptr as *mut Node<K, V>));
            }
            drop(Box::from_raw(self.dummy as *mut Info<K, V>));
        }
    }
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Walk the current tree and verify structural invariants: full
    /// (internal ⇒ two children), leaf-oriented BST ordering (paper
    /// Invariant 36 for `T_∞`), sentinel placement, and monotone `seq`
    /// bounds. Returns the number of finite keys.
    ///
    /// Intended for tests at quiescent points (a concurrent walk may span
    /// several versions and report spurious violations).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        let guard = &epoch::pin();
        // Acquire: this walk is meant for quiescent points; Acquire
        // keeps the seq bound read ordered before the child loads.
        let counter = self.counter.load(Acquire);
        let mut count = 0usize;
        // (node, lower bound exclusive?, upper bound) — keys in a left
        // subtree are < parent key; right subtree keys are >= parent key.
        type Frame<'g, K, V> = (Shared<'g, Node<K, V>>, Option<SKey<K>>, Option<SKey<K>>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(Shared::from(self.root), None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            assert!(!n.is_null(), "null child in current tree");
            // SAFETY: reachable from root under our guard.
            let node = unsafe { n.deref() };
            assert!(node.seq <= counter, "node seq exceeds Counter");
            if let Some(lo) = &lo {
                assert!(node.key >= *lo, "BST violation: key below lower bound");
            }
            if let Some(hi) = &hi {
                assert!(node.key < *hi, "BST violation: key above upper bound");
            }
            if node.leaf {
                if node.key.is_finite() {
                    assert!(node.value.is_some(), "finite leaf without value");
                    count += 1;
                }
            } else {
                assert!(node.value.is_none(), "internal node with value");
                let l = node.load_child(true, guard);
                let r = node.load_child(false, guard);
                assert!(!l.is_null() && !r.is_null(), "internal node not full");
                stack.push((l, lo.clone(), Some(node.key.clone())));
                stack.push((r, Some(node.key.clone()), hi));
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_shape() {
        let t: PnbBst<i64, ()> = PnbBst::new();
        assert_eq!(t.check_invariants(), 0);
        assert_eq!(t.phase(), 0);
        assert!(!t.contains(&7));
        assert_eq!(t.get(&7), None);
    }

    #[test]
    fn insert_then_find() {
        let t: PnbBst<i64, String> = PnbBst::new();
        assert!(t.insert(10, "ten".into()));
        assert!(t.insert(5, "five".into()));
        assert!(t.insert(20, "twenty".into()));
        assert_eq!(t.get(&10), Some("ten".to_string()));
        assert_eq!(t.get(&5), Some("five".to_string()));
        assert_eq!(t.get(&20), Some("twenty".to_string()));
        assert_eq!(t.get(&15), None);
        assert_eq!(t.check_invariants(), 3);
    }

    #[test]
    fn duplicate_insert_fails() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        assert!(t.insert(1, 100));
        assert!(!t.insert(1, 200));
        // Set semantics: the original value survives.
        assert_eq!(t.get(&1), Some(100));
        assert_eq!(t.check_invariants(), 1);
    }

    #[test]
    fn delete_leaf_and_missing() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        assert!(!t.delete(&3)); // absent from empty tree
        t.insert(3, 30);
        t.insert(1, 10);
        t.insert(4, 40);
        assert_eq!(t.remove(&3), Some(30));
        assert!(!t.contains(&3));
        assert!(!t.delete(&3)); // already gone
        assert!(t.contains(&1) && t.contains(&4));
        assert_eq!(t.check_invariants(), 2);
    }

    #[test]
    fn delete_down_to_empty_and_reinsert() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        for k in 0..20 {
            assert!(t.insert(k, k * 2));
        }
        for k in 0..20 {
            assert_eq!(t.remove(&k), Some(k * 2));
        }
        assert_eq!(t.check_invariants(), 0);
        for k in 0..20 {
            assert!(t.insert(k, k + 1));
        }
        assert_eq!(t.check_invariants(), 20);
        for k in 0..20 {
            assert_eq!(t.get(&k), Some(k + 1));
        }
    }

    #[test]
    fn interleaved_sequence_matches_btreemap() {
        use std::collections::BTreeMap;
        let t: PnbBst<i32, i32> = PnbBst::new();
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random walk.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 64) as i32;
            match step % 3 {
                0 => {
                    let expect = !model.contains_key(&k);
                    assert_eq!(t.insert(k, step), expect, "insert {k} at {step}");
                    model.entry(k).or_insert(step);
                }
                1 => {
                    let expect = model.remove(&k);
                    assert_eq!(t.remove(&k), expect, "remove {k} at {step}");
                }
                _ => {
                    assert_eq!(t.get(&k), model.get(&k).copied(), "get {k} at {step}");
                }
            }
        }
        assert_eq!(t.check_invariants(), model.len());
    }

    #[test]
    fn upsert_inserts_then_replaces() {
        let t: PnbBst<u32, String> = PnbBst::new();
        assert_eq!(t.upsert(1, "a".into()), None);
        assert_eq!(t.upsert(1, "b".into()), Some("a".into()));
        assert_eq!(t.upsert(1, "c".into()), Some("b".into()));
        assert_eq!(t.get(&1), Some("c".into()));
        assert_eq!(t.check_invariants(), 1);
        // Mixed with set-semantics insert: insert still refuses.
        assert!(!t.insert(1, "d".into()));
        assert_eq!(t.get(&1), Some("c".into()));
    }

    #[test]
    fn upsert_replace_preserves_old_versions() {
        // The replace shape links prev to the old leaf, so a snapshot
        // taken before the upsert must keep seeing the old value.
        let t: PnbBst<u32, u32> = PnbBst::new();
        t.insert(7, 70);
        let snap = t.snapshot();
        assert_eq!(t.upsert(7, 71), Some(70));
        assert_eq!(t.upsert(7, 72), Some(71));
        assert_eq!(snap.get(&7), Some(70));
        assert_eq!(t.get(&7), Some(72));
    }

    #[test]
    fn upsert_interleaved_matches_btreemap() {
        use std::collections::BTreeMap;
        let t: PnbBst<i32, i32> = PnbBst::new();
        let mut model = BTreeMap::new();
        let mut x: u64 = 0xC0FFEE;
        for step in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) % 48) as i32;
            match step % 4 {
                0 => {
                    assert_eq!(t.upsert(k, step), model.insert(k, step), "upsert {k}");
                }
                1 => {
                    let expect = !model.contains_key(&k);
                    assert_eq!(t.insert(k, step), expect);
                    model.entry(k).or_insert(step);
                }
                2 => {
                    assert_eq!(t.remove(&k), model.remove(&k));
                }
                _ => {
                    assert_eq!(t.get(&k), model.get(&k).copied());
                }
            }
        }
        assert_eq!(t.check_invariants(), model.len());
    }

    #[test]
    fn concurrent_upserts_on_one_key_are_atomic() {
        // Every committed replace displaces exactly one value: across N
        // upserts of one key, the multiset {initial, returns...} ∪ {final}
        // must chain (each thread's displaced value was someone's write).
        use std::sync::Arc;
        let t = Arc::new(PnbBst::<u32, u64>::new());
        t.insert(9, 0);
        let per_thread = 500u64;
        let writes: Vec<u64> = (0..4u64)
            .flat_map(|w| (0..per_thread).map(move |i| (w << 32) | (i + 1)))
            .collect();
        let displaced: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4u64)
                .map(|w| {
                    let t = Arc::clone(&t);
                    s.spawn(move || {
                        let h = t.pin();
                        (0..per_thread)
                            .map(|i| h.upsert(9, (w << 32) | (i + 1)).expect("key stays present"))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let last = t.get(&9).unwrap();
        // {0} ∪ writes == displaced ∪ {last}: every write is displaced
        // exactly once except the final survivor.
        let mut lhs: Vec<u64> = std::iter::once(0).chain(writes).collect();
        let mut rhs: Vec<u64> = displaced.into_iter().chain(std::iter::once(last)).collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        assert_eq!(lhs, rhs);
        assert_eq!(t.check_invariants(), 1);
    }

    #[test]
    fn drop_reclaims_nontrivial_tree() {
        // Mostly a miri/asan canary: build, mutate, drop.
        let t: PnbBst<u64, Vec<u8>> = PnbBst::new();
        for k in 0..200 {
            t.insert(k, vec![k as u8; 3]);
        }
        for k in (0..200).step_by(2) {
            t.delete(&k);
        }
        drop(t);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let t: PnbBst<i64, i64> = PnbBst::new();
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert!(t.insert(k, k));
        }
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(t.get(&k), Some(k));
        }
        assert_eq!(t.check_invariants(), 5);
        assert_eq!(t.remove(&i64::MAX), Some(i64::MAX));
        assert_eq!(t.remove(&i64::MIN), Some(i64::MIN));
        assert_eq!(t.check_invariants(), 3);
    }
}
