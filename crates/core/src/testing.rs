//! Deterministic fault injection (feature `testing-internals`).
//!
//! The paper's progress and linearizability arguments hinge on what
//! happens when an operation stalls (or its process crashes) *between*
//! its first freeze CAS and the rest of its protocol — that is exactly
//! when other operations must help it (§4.1 walks through the
//! `Insert(1)` / `RangeScan` / `Find(1)` scenario). This module lets
//! tests create that window on demand:
//!
//! * [`PnbBst::insert_paused`] / [`PnbBst::delete_paused`] run a normal
//!   update until an attempt *publishes* its `Info` object (first freeze
//!   CAS succeeds) and then stop, returning a [`PausedUpdate`] handle.
//! * While paused, the operation is visible to every other thread exactly
//!   like a stalled process: `Find`s, updates and scans that encounter
//!   the flag will help (and may commit or handshake-abort the attempt).
//! * [`PausedUpdate::resume`] finishes the protocol (it may discover the
//!   attempt was already committed or aborted by helpers) — it performs
//!   one attempt only and reports the outcome rather than retrying.
//! * [`PausedUpdate::abandon`] (or dropping the handle) simulates a crash:
//!   the operation is never resumed; helpers remain responsible for it.
//!   Memory that only the crashed thread could free is intentionally
//!   leaked, mirroring the paper's crash-failure model.

use crossbeam_epoch::{self as epoch, Guard};
use std::sync::atomic::Ordering::Acquire;

use crate::info::{state, InfoPtr};
use crate::tree::{AttemptOutcome, PnbBst};

/// Outcome of starting a pausable update.
pub enum PauseOutcome<'t, K, V> {
    /// The operation completed without ever publishing (e.g. inserting a
    /// duplicate / deleting a missing key): no pause window exists.
    Completed(bool),
    /// The operation is suspended right after its first freeze CAS.
    Paused(PausedUpdate<'t, K, V>),
}

/// Observable protocol state of a paused attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PausedState {
    /// `⊥` — nobody has performed the handshake yet.
    Undecided,
    /// Handshake done; freezing in progress.
    Try,
    /// A helper already committed the attempt.
    Committed,
    /// The attempt aborted (handshake failure or lost freeze CAS).
    Aborted,
}

/// A suspended update operation (see module docs).
pub struct PausedUpdate<'t, K, V> {
    tree: &'t PnbBst<K, V>,
    info: InfoPtr<K, V>,
    /// Pinned for the whole pause so the nodes recorded in `info` cannot
    /// be reclaimed even if helpers complete and retire them.
    guard: Option<Guard>,
    resumed: bool,
}

// SAFETY: the handle only allows resuming/observing the protocol; all
// shared state it touches is atomics + epoch-protected memory.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for PausedUpdate<'_, K, V> {}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Start an insert and suspend it right after it publishes (first
    /// freeze CAS succeeds). Attempts that fail before publishing retry
    /// internally, exactly like a real insert.
    pub fn insert_paused(&self, key: K, value: V) -> PauseOutcome<'_, K, V> {
        let guard = epoch::pin();
        loop {
            match self.insert_attempt(&key, &value, &guard) {
                AttemptOutcome::Decided(b) => return PauseOutcome::Completed(b),
                AttemptOutcome::Published { info, .. } => {
                    return PauseOutcome::Paused(PausedUpdate {
                        tree: self,
                        info,
                        guard: Some(guard),
                        resumed: false,
                    })
                }
                AttemptOutcome::Retry => {}
            }
        }
    }

    /// Start a delete and suspend it right after it publishes.
    pub fn delete_paused(&self, key: &K) -> PauseOutcome<'_, K, V> {
        let guard = epoch::pin();
        loop {
            match self.delete_attempt(key, &guard) {
                AttemptOutcome::Decided(v) => return PauseOutcome::Completed(v.is_some()),
                AttemptOutcome::Published { info, .. } => {
                    return PauseOutcome::Paused(PausedUpdate {
                        tree: self,
                        info,
                        guard: Some(guard),
                        resumed: false,
                    })
                }
                AttemptOutcome::Retry => {}
            }
        }
    }

    /// Start an upsert and suspend it right after it publishes. Upserts
    /// always publish (both the insert and the replace shape mutate the
    /// tree), so the outcome is always `Paused`; `Completed` is kept in
    /// the signature for uniformity with the other paused starters.
    pub fn upsert_paused(&self, key: K, value: V) -> PauseOutcome<'_, K, V> {
        let guard = epoch::pin();
        loop {
            match self.upsert_attempt(&key, &value, &guard) {
                AttemptOutcome::Decided(v) => return PauseOutcome::Completed(v.is_some()),
                AttemptOutcome::Published { info, .. } => {
                    return PauseOutcome::Paused(PausedUpdate {
                        tree: self,
                        info,
                        guard: Some(guard),
                        resumed: false,
                    })
                }
                AttemptOutcome::Retry => {}
            }
        }
    }
}

impl<K, V> PausedUpdate<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// The attempt's sequence number (phase).
    pub fn seq(&self) -> u64 {
        // SAFETY: we hold the creation reference; `info` is alive.
        unsafe { (*self.info).seq }
    }

    /// Current protocol state (may be changed concurrently by helpers).
    pub fn state(&self) -> PausedState {
        // SAFETY: as above.
        // Acquire: pairs with the AcqRel state transitions.
        match unsafe { (*self.info).state.load(Acquire) } {
            state::UNDECIDED => PausedState::Undecided,
            state::TRY => PausedState::Try,
            state::COMMIT => PausedState::Committed,
            state::ABORT => PausedState::Aborted,
            _ => unreachable!("invalid state byte"),
        }
    }

    /// Finish the suspended attempt (run `Help` and clean up). Returns
    /// `true` iff this attempt committed — note that helpers may already
    /// have committed or aborted it while it was paused. Unlike a real
    /// update, an aborted attempt is *not* retried; the caller decides.
    pub fn resume(mut self) -> bool {
        self.resumed = true;
        let guard = self.guard.take().expect("guard present until resumed");
        self.tree.finish_published(self.info, &guard)
    }

    /// Simulate a crash: never resume. Helpers own the attempt's fate
    /// from here; memory only the crashed thread could have freed (its
    /// creation reference, and the replacement subtree if the attempt
    /// aborts) is leaked, which is the paper's crash model.
    pub fn abandon(mut self) {
        self.resumed = true;
        self.guard.take();
    }
}

impl<K, V> Drop for PausedUpdate<'_, K, V> {
    fn drop(&mut self) {
        // Dropping without resume == crash (abandon).
        self.guard.take();
        let _ = self.resumed;
    }
}

/// A counting wrapper around the system allocator, for asserting the
/// arena's steady-state behaviour (see `tests/alloc_steady_state.rs`):
/// install it with `#[global_allocator]` in a test binary and diff
/// [`allocations`](CountingAllocator::allocations) around the region
/// under test. Read paths must show a delta of zero; warm update loops
/// must drop to the pool-miss fallback.
pub struct CountingAllocator {
    allocs: std::sync::atomic::AtomicU64,
    bytes: std::sync::atomic::AtomicU64,
}

impl CountingAllocator {
    /// A fresh counting allocator (all counters zero).
    #[allow(clippy::new_without_default)] // const-init for statics
    pub const fn new() -> Self {
        CountingAllocator {
            allocs: std::sync::atomic::AtomicU64::new(0),
            bytes: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of allocation calls (alloc + realloc) served so far.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total bytes requested from the global allocator so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(std::sync::atomic::Ordering::Relaxed)
    }
}

// SAFETY: delegates verbatim to `std::alloc::System`; the counters are
// plain relaxed atomics with no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        self.allocs.fetch_add(1, Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Relaxed);
        unsafe { std::alloc::GlobalAlloc::alloc(&std::alloc::System, layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::GlobalAlloc::dealloc(&std::alloc::System, ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        use std::sync::atomic::Ordering::Relaxed;
        self.allocs.fetch_add(1, Relaxed);
        self.bytes.fetch_add(new_size as u64, Relaxed);
        unsafe { std::alloc::GlobalAlloc::realloc(&std::alloc::System, ptr, layout, new_size) }
    }
}
