//! Durable checkpoints: serialize a wait-free snapshot to disk and
//! rebuild a tree from it in O(n), without per-key CAS descents.
//!
//! ## On-disk layout
//!
//! A checkpoint *directory* holds numbered **generations**, each a
//! self-contained, immutable checkpoint:
//!
//! ```text
//! <dir>/
//!   gen-000001/
//!     shard-0000.seg    one sorted run per shard (a single tree is
//!     shard-0001.seg    shard count 1)
//!     MANIFEST          shard count, partitioner config, per-segment
//!                       entry counts + CRCs; itself CRC'd
//!     COMMIT            written (and fsync'd) last: the manifest CRC
//!   gen-000002/
//!     ...
//! ```
//!
//! Every segment is a length-prefixed sorted run of little-endian
//! `(u64 key, u64 value)` pairs with a magic/version header and a
//! trailing CRC-32 over everything before it. The `COMMIT` marker is
//! written *after* the segments and manifest are durable, mirroring the
//! "write the commit record last" idiom the sharded snapshot's
//! descending capture order enables (DESIGN §6): a generation without a
//! valid `COMMIT` never existed as far as [`restore`] is concerned, so
//! a crash mid-checkpoint leaves the previous complete checkpoint
//! loadable.
//!
//! ## Failure discipline
//!
//! Readers validate *everything* (magic, version, declared lengths,
//! CRC, sortedness, shard count) before any entry reaches a tree — a
//! torn or truncated segment produces a typed [`CheckpointError`],
//! never a partially-loaded map. [`restore`](PnbBst::restore) walks
//! generations newest-first and loads the newest one that validates
//! end-to-end; the typed error surfaces only when no generation loads.
//!
//! [`restore`]: PnbBst::restore

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;

use crossbeam_utils::CachePadded;

use crate::key::SKey;
use crate::stats::Stats;
use crate::tree::PnbBst;

/// Segment file magic (`PNBS`).
const SEG_MAGIC: [u8; 4] = *b"PNBS";
/// Manifest file magic (`PNBM`).
const MANIFEST_MAGIC: [u8; 4] = *b"PNBM";
/// Commit-marker magic (`PNBC`).
const COMMIT_MAGIC: [u8; 4] = *b"PNBC";
/// Format version stamped into every segment and manifest.
const FORMAT_VERSION: u32 = 1;
/// Committed generations kept by [`prune_generations`]; older ones are
/// deleted after each successful checkpoint.
const RETAINED_GENERATIONS: usize = 2;

/// Partitioner tag recorded for single-tree (unsharded) checkpoints.
pub const PARTITIONER_NONE: u32 = 0;

/// What loading or writing a checkpoint can fail with.
///
/// Every variant names the file or directory it refers to, so a
/// corrupt-checkpoint report is actionable without a debugger.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error (create, read, write, fsync, rename).
    Io(io::Error),
    /// A segment, manifest or commit file does not start with its magic.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file's format version is not one this build reads.
    BadVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found in its header.
        found: u32,
    },
    /// The file ends before its header-declared length (torn write).
    Truncated {
        /// The offending file.
        path: PathBuf,
    },
    /// The trailing CRC-32 does not match the file's contents.
    CrcMismatch {
        /// The offending file.
        path: PathBuf,
    },
    /// A segment's entries are not strictly ascending by key.
    UnsortedRun {
        /// The offending segment.
        path: PathBuf,
    },
    /// The generation has no `COMMIT` marker (or a stale one): the
    /// checkpoint never completed.
    MissingCommitMarker {
        /// The uncommitted generation directory.
        dir: PathBuf,
    },
    /// The manifest's shard count disagrees with the segment files
    /// actually present in the generation.
    ShardCountMismatch {
        /// The generation directory.
        dir: PathBuf,
        /// Shard count declared by the manifest.
        manifest: u32,
        /// Segment files found on disk.
        found: u32,
    },
    /// The manifest records a partitioner configuration the caller's
    /// map type cannot adopt.
    PartitionerMismatch {
        /// The generation directory.
        dir: PathBuf,
        /// Partitioner tag found in the manifest.
        found: u32,
    },
    /// A key in a shard's segment does not route to that shard under
    /// the manifest's partitioner configuration.
    MisroutedKey {
        /// The offending segment.
        path: PathBuf,
        /// The shard index the segment belongs to.
        shard: u32,
        /// The key that routes elsewhere.
        key: u64,
    },
    /// The directory contains no loadable committed generation.
    NoCheckpoint {
        /// The checkpoint directory.
        dir: PathBuf,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { path } => {
                write!(f, "bad magic in {}", path.display())
            }
            CheckpointError::BadVersion { path, found } => {
                write!(
                    f,
                    "unsupported format version {found} in {} (this build reads {FORMAT_VERSION})",
                    path.display()
                )
            }
            CheckpointError::Truncated { path } => {
                write!(f, "truncated file {}", path.display())
            }
            CheckpointError::CrcMismatch { path } => {
                write!(f, "CRC mismatch in {}", path.display())
            }
            CheckpointError::UnsortedRun { path } => {
                write!(f, "segment {} is not strictly ascending", path.display())
            }
            CheckpointError::MissingCommitMarker { dir } => {
                write!(f, "no valid COMMIT marker in {}", dir.display())
            }
            CheckpointError::ShardCountMismatch {
                dir,
                manifest,
                found,
            } => {
                write!(
                    f,
                    "manifest in {} declares {manifest} shard(s) but {found} segment file(s) exist",
                    dir.display()
                )
            }
            CheckpointError::PartitionerMismatch { dir, found } => {
                write!(
                    f,
                    "manifest in {} records partitioner tag {found}, which this map type cannot adopt",
                    dir.display()
                )
            }
            CheckpointError::MisroutedKey { path, shard, key } => {
                write!(
                    f,
                    "key {key} in {} does not route to shard {shard} under the manifest's partitioner",
                    path.display()
                )
            }
            CheckpointError::NoCheckpoint { dir } => {
                write!(f, "no loadable committed checkpoint in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What a completed checkpoint reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation number the checkpoint committed as.
    pub generation: u64,
    /// Total entries written across all segments.
    pub entries: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — hand-rolled so the offline workspace needs
// no new dependency; the table is built at compile time.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the checksum every
/// checkpoint file trails with.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// The segment file name for shard `index` inside a generation.
pub fn segment_path(gen_dir: &Path, index: u32) -> PathBuf {
    gen_dir.join(format!("shard-{index:04}.seg"))
}

/// Serialize one sorted run to `path` and fsync it. Returns the CRC-32
/// of the whole file (recorded in the manifest so a reader can verify
/// segments against the manifest as well as against themselves).
///
/// `entries` must be strictly ascending by key — the writer asserts it,
/// because a silently unsorted segment would poison the O(n) bulk load.
pub fn write_segment(path: &Path, entries: &[(u64, u64)]) -> Result<u32, CheckpointError> {
    assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "write_segment requires strictly ascending keys"
    );
    let mut buf = Vec::with_capacity(16 + entries.len() * 16 + 4);
    buf.extend_from_slice(&SEG_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (k, v) in entries {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    let mut f = File::create(path)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    Ok(crc)
}

/// Read and fully validate one segment: magic, version, declared
/// length, CRC, strict sortedness. Nothing is returned unless the whole
/// file checks out — a torn segment is a typed error, never a partial
/// run.
pub fn read_segment(path: &Path) -> Result<Vec<(u64, u64)>, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(CheckpointError::Truncated { path: path.into() });
    }
    if bytes[..4] != SEG_MAGIC {
        return Err(CheckpointError::BadMagic { path: path.into() });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::BadVersion {
            path: path.into(),
            found: version,
        });
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let body_end = 16usize
        .checked_add(count.checked_mul(16).ok_or(CheckpointError::Truncated {
            path: path.to_path_buf(),
        })?)
        .ok_or(CheckpointError::Truncated {
            path: path.to_path_buf(),
        })?;
    if bytes.len() < body_end + 4 {
        return Err(CheckpointError::Truncated { path: path.into() });
    }
    let stored = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
    if crc32(&bytes[..body_end]) != stored {
        return Err(CheckpointError::CrcMismatch { path: path.into() });
    }
    let mut entries = Vec::with_capacity(count);
    let mut prev: Option<u64> = None;
    for i in 0..count {
        let off = 16 + i * 16;
        let k = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().expect("8 bytes"));
        if prev.is_some_and(|p| p >= k) {
            return Err(CheckpointError::UnsortedRun { path: path.into() });
        }
        prev = Some(k);
        entries.push((k, v));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Manifest + commit marker
// ---------------------------------------------------------------------------

/// Per-segment record in a [`Manifest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Entries in the segment.
    pub entries: u64,
    /// CRC-32 of the whole segment file.
    pub crc: u32,
}

/// The generation's table of contents: shard count, the (opaque at this
/// layer) partitioner configuration, and one [`SegmentMeta`] per shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Shards in the checkpointed map (1 for a single tree).
    pub shard_count: u32,
    /// Partitioner tag ([`PARTITIONER_NONE`] for a single tree; the
    /// sharded front-end defines its own tags).
    pub partitioner_tag: u32,
    /// Partitioner parameter (meaning depends on the tag).
    pub partitioner_param: u64,
    /// One record per shard, index-aligned with the segment files.
    pub segments: Vec<SegmentMeta>,
}

/// Write the generation's `MANIFEST` (fsync'd). Returns the manifest
/// file's CRC-32 — the value [`write_commit`] seals the generation with.
pub fn write_manifest(gen_dir: &Path, m: &Manifest) -> Result<u32, CheckpointError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&m.shard_count.to_le_bytes());
    buf.extend_from_slice(&m.partitioner_tag.to_le_bytes());
    buf.extend_from_slice(&m.partitioner_param.to_le_bytes());
    for s in &m.segments {
        buf.extend_from_slice(&s.entries.to_le_bytes());
        buf.extend_from_slice(&s.crc.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    let path = gen_dir.join("MANIFEST");
    let mut f = File::create(&path)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    Ok(crc)
}

/// Read and validate the generation's `MANIFEST`; returns the manifest
/// and its file CRC (to check the commit marker against).
pub fn read_manifest(gen_dir: &Path) -> Result<(Manifest, u32), CheckpointError> {
    let path = gen_dir.join("MANIFEST");
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 24 {
        return Err(CheckpointError::Truncated { path });
    }
    if bytes[..4] != MANIFEST_MAGIC {
        return Err(CheckpointError::BadMagic { path });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::BadVersion {
            path,
            found: version,
        });
    }
    let shard_count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let partitioner_tag = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let partitioner_param = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let body_end = 24 + shard_count as usize * 12;
    if bytes.len() < body_end + 4 {
        return Err(CheckpointError::Truncated { path });
    }
    let stored = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
    if crc32(&bytes[..body_end]) != stored {
        return Err(CheckpointError::CrcMismatch { path });
    }
    let mut segments = Vec::with_capacity(shard_count as usize);
    for i in 0..shard_count as usize {
        let off = 24 + i * 12;
        segments.push(SegmentMeta {
            entries: u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes")),
            crc: u32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4 bytes")),
        });
    }
    Ok((
        Manifest {
            shard_count,
            partitioner_tag,
            partitioner_param,
            segments,
        },
        stored,
    ))
}

/// Seal a generation: write `COMMIT` carrying the manifest CRC, fsync
/// it, then fsync the generation directory so the marker's existence is
/// durable. Called strictly after every segment and the manifest are on
/// disk — the marker's presence implies the whole generation.
pub fn write_commit(gen_dir: &Path, manifest_crc: u32) -> Result<(), CheckpointError> {
    let mut buf = Vec::with_capacity(8);
    buf.extend_from_slice(&COMMIT_MAGIC);
    buf.extend_from_slice(&manifest_crc.to_le_bytes());
    let mut f = File::create(gen_dir.join("COMMIT"))?;
    f.write_all(&buf)?;
    f.sync_all()?;
    // Make the directory entry itself durable (on platforms where
    // opening a directory for sync is not supported this is best-effort).
    if let Ok(d) = File::open(gen_dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Whether `gen_dir` holds a valid `COMMIT` marker matching
/// `manifest_crc`.
fn commit_matches(gen_dir: &Path, manifest_crc: u32) -> bool {
    let mut bytes = Vec::new();
    match File::open(gen_dir.join("COMMIT")).and_then(|mut f| f.read_to_end(&mut bytes)) {
        Ok(_) => {
            bytes.len() >= 8
                && bytes[..4] == COMMIT_MAGIC
                && u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) == manifest_crc
        }
        Err(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Generation directories
// ---------------------------------------------------------------------------

fn gen_number(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?.parse().ok()
}

/// Every `gen-NNNNNN` subdirectory of `dir`, sorted **descending** by
/// generation number (the order [`restore`](PnbBst::restore) probes).
pub fn generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in rd {
        let entry = entry?;
        if let Some(n) = entry.file_name().to_str().and_then(gen_number) {
            if entry.file_type()?.is_dir() {
                out.push((n, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|g| std::cmp::Reverse(g.0));
    Ok(out)
}

/// Create the next generation directory under `dir` and return it with
/// its number. The `create_dir` is the atomic claim: two concurrent
/// checkpointers cannot both own one generation number.
pub fn begin_generation(dir: &Path) -> Result<(u64, PathBuf), CheckpointError> {
    fs::create_dir_all(dir)?;
    let mut next = generations(dir)?.first().map_or(1, |(n, _)| n + 1);
    loop {
        let path = dir.join(format!("gen-{next:06}"));
        match fs::create_dir(&path) {
            Ok(()) => return Ok((next, path)),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => next += 1,
            Err(e) => return Err(e.into()),
        }
    }
}

/// Delete committed generations older than the newest
/// `RETAINED_GENERATIONS` (2) ones. Uncommitted directories are left
/// alone — one may belong to a checkpoint still in flight, and crash
/// debris is bounded (at most one per crash). Removal is best-effort:
/// errors are ignored — a straggler directory costs disk, not
/// correctness.
pub fn prune_generations(dir: &Path) -> Result<(), CheckpointError> {
    let mut committed_seen = 0usize;
    for (_, path) in &generations(dir)? {
        let committed = read_manifest(path)
            .map(|(_, crc)| commit_matches(path, crc))
            .unwrap_or(false);
        if committed {
            committed_seen += 1;
            if committed_seen > RETAINED_GENERATIONS {
                let _ = fs::remove_dir_all(path);
            }
        }
    }
    Ok(())
}

/// A fully validated generation: its manifest plus every shard's
/// entries (each strictly ascending by key), all in memory.
pub type LoadedGeneration = (Manifest, Vec<Vec<(u64, u64)>>);

/// Fully load and validate one generation: commit marker, manifest,
/// shard-count vs files present, per-segment CRCs (against both the
/// file and the manifest), sortedness. Returns the manifest and every
/// shard's entries — all in memory before anything touches a tree.
pub fn load_generation(gen_dir: &Path) -> Result<LoadedGeneration, CheckpointError> {
    let (manifest, manifest_crc) = read_manifest(gen_dir)?;
    if !commit_matches(gen_dir, manifest_crc) {
        return Err(CheckpointError::MissingCommitMarker {
            dir: gen_dir.into(),
        });
    }
    // The manifest's shard count must agree with the files on disk.
    let mut present = 0u32;
    for entry in fs::read_dir(gen_dir)? {
        let name = entry?.file_name();
        if name
            .to_str()
            .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".seg"))
        {
            present += 1;
        }
    }
    if present != manifest.shard_count {
        return Err(CheckpointError::ShardCountMismatch {
            dir: gen_dir.into(),
            manifest: manifest.shard_count,
            found: present,
        });
    }
    let mut shards = Vec::with_capacity(manifest.shard_count as usize);
    for (i, meta) in manifest.segments.iter().enumerate() {
        let path = segment_path(gen_dir, i as u32);
        let entries = read_segment(&path)?;
        if entries.len() as u64 != meta.entries {
            return Err(CheckpointError::Truncated { path });
        }
        // Cross-check the segment against the manifest's recorded CRC
        // (a swapped-in file with a self-consistent CRC still fails).
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let file_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if file_crc != meta.crc {
            return Err(CheckpointError::CrcMismatch { path });
        }
        shards.push(entries);
    }
    Ok((manifest, shards))
}

/// Walk `dir`'s generations newest-first and return the first one that
/// validates end-to-end. Generations that fail (uncommitted, torn,
/// corrupt) are skipped; the *first* failure is surfaced as the typed
/// error when nothing loads at all.
pub fn load_latest(dir: &Path) -> Result<LoadedGeneration, CheckpointError> {
    let mut first_err: Option<CheckpointError> = None;
    for (_, gen_dir) in generations(dir)? {
        match load_generation(&gen_dir) {
            Ok(loaded) => return Ok(loaded),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    Err(first_err.unwrap_or(CheckpointError::NoCheckpoint { dir: dir.into() }))
}

/// Write one complete generation under `dir`: segments, manifest,
/// commit marker (in that order, each durable before the next), then
/// prune old generations. `shards[i]` must be strictly ascending.
pub fn write_generation(
    dir: &Path,
    partitioner_tag: u32,
    partitioner_param: u64,
    shards: &[Vec<(u64, u64)>],
) -> Result<CheckpointReport, CheckpointError> {
    let (generation, gen_dir) = begin_generation(dir)?;
    let mut segments = Vec::with_capacity(shards.len());
    let mut total = 0u64;
    for (i, entries) in shards.iter().enumerate() {
        let crc = write_segment(&segment_path(&gen_dir, i as u32), entries)?;
        segments.push(SegmentMeta {
            entries: entries.len() as u64,
            crc,
        });
        total += entries.len() as u64;
    }
    let manifest = Manifest {
        shard_count: shards.len() as u32,
        partitioner_tag,
        partitioner_param,
        segments,
    };
    let manifest_crc = write_manifest(&gen_dir, &manifest)?;
    write_commit(&gen_dir, manifest_crc)?;
    prune_generations(dir)?;
    Ok(CheckpointReport {
        generation,
        entries: total,
    })
}

// ---------------------------------------------------------------------------
// O(n) bulk load
// ---------------------------------------------------------------------------

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Build a tree from strictly ascending entries in O(n), without
    /// per-key CAS descents: the balanced leaf-oriented shape is
    /// constructed directly (every internal node's key is the smallest
    /// key of its right subtree, matching the insert shapes), with the
    /// same `∞₁`/`∞₂` sentinel scaffolding as [`PnbBst::new`]. All
    /// nodes carry `seq = 0` and no `prev` history — the restored tree
    /// starts a fresh phase timeline.
    ///
    /// # Panics
    ///
    /// If the keys are not strictly ascending (the on-disk readers
    /// validate sortedness before calling this).
    pub fn from_sorted(entries: Vec<(K, V)>) -> Self {
        use crate::info::{Info, InfoPtr, NodePtr};
        use crate::node::Node;

        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly ascending keys"
        );
        let dummy: InfoPtr<K, V> = Box::into_raw(Box::new(Info::dummy()));
        // One leaf per entry, in key order. `Box::into_raw`, exactly
        // like `PnbBst::new`, so `Drop`'s `Box::from_raw` teardown and
        // the update-time retire rules stay correct for these nodes.
        let leaves: Vec<NodePtr<K, V>> = entries
            .into_iter()
            .map(|(k, v)| {
                Box::into_raw(Box::new(Node::leaf(
                    SKey::Fin(k),
                    Some(v),
                    0,
                    std::ptr::null(),
                    dummy,
                ))) as NodePtr<K, V>
            })
            .collect();

        // Balanced recursion: split the run in half; the internal key
        // is the right half's leftmost (= smallest) key, so left-subtree
        // keys are < key and right-subtree keys are >= key — the
        // leaf-oriented BST invariant `check_invariants` asserts.
        fn build<K: Ord + Clone + 'static, V: Clone + 'static>(
            leaves: &[NodePtr<K, V>],
            dummy: InfoPtr<K, V>,
        ) -> NodePtr<K, V> {
            if leaves.len() == 1 {
                return leaves[0];
            }
            let mid = leaves.len() / 2;
            // SAFETY: just allocated above, exclusively owned until the
            // tree is assembled.
            let key = unsafe { (*leaves[mid]).key.clone() };
            let left = build(&leaves[..mid], dummy);
            let right = build(&leaves[mid..], dummy);
            Box::into_raw(Box::new(Node::internal(
                key,
                0,
                std::ptr::null(),
                left,
                right,
                dummy,
            )))
        }

        let inf1_leaf: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(
            SKey::Inf1,
            None,
            0,
            std::ptr::null(),
            dummy,
        )));
        let inf2_leaf: NodePtr<K, V> = Box::into_raw(Box::new(Node::leaf(
            SKey::Inf2,
            None,
            0,
            std::ptr::null(),
            dummy,
        )));
        // Finite keys all compare below ∞₁: they live in the left
        // subtree of an ∞₁ internal whose right child is the ∞₁
        // sentinel leaf — the same shape a sequence of inserts into a
        // fresh tree converges to.
        let below_root: NodePtr<K, V> = if leaves.is_empty() {
            inf1_leaf
        } else {
            let finite = build(&leaves, dummy);
            Box::into_raw(Box::new(Node::internal(
                SKey::Inf1,
                0,
                std::ptr::null(),
                finite,
                inf1_leaf,
                dummy,
            )))
        };
        let root: NodePtr<K, V> = Box::into_raw(Box::new(Node::internal(
            SKey::Inf2,
            0,
            std::ptr::null(),
            below_root,
            inf2_leaf,
            dummy,
        )));
        PnbBst {
            root,
            counter: CachePadded::new(AtomicU64::new(0)),
            dummy,
            stats: Stats::default(),
            combine: crate::combine::PubList::new(),
        }
    }
}

impl PnbBst<u64, u64> {
    /// Checkpoint the tree to `dir`: take a wait-free [`snapshot`]
    /// (updates keep running), serialize the frozen cut as one sorted
    /// segment, and commit it as a new generation. Returns the
    /// generation number and entry count.
    ///
    /// [`snapshot`]: PnbBst::snapshot
    pub fn checkpoint(&self, dir: &Path) -> Result<CheckpointReport, CheckpointError> {
        let entries = self.snapshot().to_vec();
        write_generation(dir, PARTITIONER_NONE, 0, &[entries])
    }

    /// Rebuild a tree from the newest loadable checkpoint generation in
    /// `dir` (single-tree checkpoints only: a sharded checkpoint is
    /// rejected with [`CheckpointError::ShardCountMismatch`] — restore
    /// it with the sharded front-end instead). The tree is bulk-loaded
    /// in O(n) via [`PnbBst::from_sorted`].
    pub fn restore(dir: &Path) -> Result<Self, CheckpointError> {
        let (manifest, mut shards) = load_latest(dir)?;
        if manifest.shard_count != 1 {
            return Err(CheckpointError::ShardCountMismatch {
                dir: dir.into(),
                manifest: manifest.shard_count,
                found: 1,
            });
        }
        Ok(PnbBst::from_sorted(shards.remove(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pnbbst-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create test dir");
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn from_sorted_builds_a_valid_balanced_tree() {
        for n in [0usize, 1, 2, 3, 7, 8, 100, 1000] {
            let entries: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 3, k)).collect();
            let t = PnbBst::from_sorted(entries.clone());
            assert_eq!(t.check_invariants(), n, "n={n}");
            assert_eq!(t.snapshot().to_vec(), entries, "n={n}");
            for (k, v) in &entries {
                assert_eq!(t.get(k), Some(*v));
            }
            assert_eq!(t.get(&(n as u64 * 3 + 1)), None);
        }
    }

    #[test]
    fn restored_tree_accepts_updates_and_scans() {
        // The bulk-loaded nodes must work with the full CAS/helping
        // machinery, not just reads.
        let t = PnbBst::from_sorted((0..500u64).map(|k| (k * 2, k)).collect());
        let h = t.pin();
        assert!(h.insert(1, 999)); // between bulk-loaded keys
        assert!(!h.insert(0, 1)); // duplicate of a bulk-loaded key
        assert_eq!(h.upsert(4, 42), Some(2));
        assert!(h.delete(&2));
        assert_eq!(h.range(0..=10).count(), 6); // 0,1,4,6,8,10
        let snap = h.snapshot();
        assert!(h.delete(&0));
        assert_eq!(snap.get(&0), Some(0)); // persistence still works
        assert_eq!(t.check_invariants(), 499);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted_input() {
        let _ = PnbBst::from_sorted(vec![(5u64, 0u64), (3, 0)]);
    }

    #[test]
    fn segment_roundtrip_and_validation() {
        let d = tmpdir("seg");
        let path = d.join("shard-0000.seg");
        let entries: Vec<(u64, u64)> = (0..100).map(|k| (k * 7, k + 1)).collect();
        let crc = write_segment(&path, &entries).expect("write");
        assert_eq!(read_segment(&path).expect("read"), entries);

        // Flip one payload byte: CRC mismatch, typed.
        let mut bytes = fs::read(&path).unwrap();
        bytes[40] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CheckpointError::CrcMismatch { .. })
        ));

        // Truncate the tail: typed, not a short read.
        write_segment(&path, &entries).expect("rewrite");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CheckpointError::Truncated { .. })
        ));

        // Wrong magic.
        let mut bytes = Vec::from(*b"XXXX");
        bytes.extend_from_slice(&[0u8; 32]);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CheckpointError::BadMagic { .. })
        ));
        let _ = (crc, fs::remove_dir_all(&d));
    }

    #[test]
    fn checkpoint_restore_roundtrip_single_tree() {
        let d = tmpdir("roundtrip");
        let t: PnbBst<u64, u64> = PnbBst::new();
        for k in 0..1000u64 {
            t.insert(k * 5, k);
        }
        let report = t.checkpoint(&d).expect("checkpoint");
        assert_eq!(report.generation, 1);
        assert_eq!(report.entries, 1000);
        let r = PnbBst::restore(&d).expect("restore");
        assert_eq!(r.check_invariants(), 1000);
        assert_eq!(r.snapshot().to_vec(), t.snapshot().to_vec());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let d = tmpdir("empty");
        let t: PnbBst<u64, u64> = PnbBst::new();
        t.checkpoint(&d).expect("checkpoint");
        let r = PnbBst::restore(&d).expect("restore");
        assert_eq!(r.check_invariants(), 0);
        assert!(r.insert(1, 1));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn uncommitted_generation_is_invisible() {
        let d = tmpdir("uncommitted");
        let t: PnbBst<u64, u64> = PnbBst::new();
        t.insert(1, 10);
        t.checkpoint(&d).expect("gen 1");
        // Simulate a crash mid-checkpoint: a newer generation with a
        // segment but no COMMIT marker.
        let torn = d.join("gen-000002");
        fs::create_dir(&torn).unwrap();
        write_segment(&segment_path(&torn, 0), &[(9, 9)]).unwrap();
        let r = PnbBst::restore(&d).expect("prior checkpoint loads");
        assert_eq!(r.snapshot().to_vec(), vec![(1, 10)]);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_commit_with_no_prior_is_typed() {
        let d = tmpdir("nocommit");
        let gen = d.join("gen-000001");
        fs::create_dir(&gen).unwrap();
        let crc = write_segment(&segment_path(&gen, 0), &[(1, 1)]).unwrap();
        write_manifest(
            &gen,
            &Manifest {
                shard_count: 1,
                partitioner_tag: PARTITIONER_NONE,
                partitioner_param: 0,
                segments: vec![SegmentMeta { entries: 1, crc }],
            },
        )
        .unwrap();
        assert!(matches!(
            PnbBst::restore(&d),
            Err(CheckpointError::MissingCommitMarker { .. })
        ));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_dir_is_no_checkpoint() {
        let d = tmpdir("nockpt");
        assert!(matches!(
            PnbBst::<u64, u64>::restore(&d),
            Err(CheckpointError::NoCheckpoint { .. })
        ));
        // A directory that does not even exist reports the same.
        assert!(matches!(
            PnbBst::<u64, u64>::restore(&d.join("missing")),
            Err(CheckpointError::NoCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn generations_accumulate_and_prune() {
        let d = tmpdir("prune");
        let t: PnbBst<u64, u64> = PnbBst::new();
        for round in 0..5u64 {
            t.insert(round, round);
            let report = t.checkpoint(&d).expect("checkpoint");
            assert_eq!(report.generation, round + 1);
            assert_eq!(report.entries, round + 1);
        }
        // Retention keeps the newest two committed generations only.
        let gens = generations(&d).unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].0, 5);
        assert_eq!(gens[1].0, 4);
        let r = PnbBst::restore(&d).expect("restore newest");
        assert_eq!(r.check_invariants(), 5);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn snapshot_cut_is_what_lands_on_disk() {
        // Writes racing the checkpoint may or may not be included, but
        // the cut itself is frozen: checkpoint from a quiesced tree,
        // mutate afterwards, restore — the checkpoint must show the
        // pre-mutation state.
        let d = tmpdir("cut");
        let t: PnbBst<u64, u64> = PnbBst::new();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        t.checkpoint(&d).expect("checkpoint");
        for k in 0..100u64 {
            t.delete(&k);
        }
        let r = PnbBst::restore(&d).expect("restore");
        assert_eq!(r.check_invariants(), 100);
        let _ = fs::remove_dir_all(&d);
    }
}
