//! `Info` objects and the update-word encoding (paper Figure 2, lines 1–14).
//!
//! Every update attempt allocates one `Info` object describing the whole
//! multi-word transaction it wants to perform: which nodes to freeze (flag
//! or mark), the expected old values of their `update` fields, and the
//! child-pointer swing (`par`, `old_child` → `new_child`). The `Info`
//! object is published by the first *freeze CAS* and from then on any
//! thread can complete ("help") or abort the attempt by driving its state
//! machine:
//!
//! ```text
//!        handshake ok            all frozen + child CAS
//!   ⊥ ───────────────► Try ───────────────────────────► Commit
//!   │                    │
//!   │ handshake failed   │ some freeze CAS lost
//!   ▼                    ▼
//! Abort ◄───────────── Abort
//! ```
//!
//! The paper stores `{Flag, Mark} × Info*` in a single CAS word (the
//! `Update` record). We reproduce that with a tagged pointer: the low bit
//! of the `Info` pointer is the [`FreezeTag`].
//!
//! # Reclamation
//!
//! The paper assumes garbage collection. Here each `Info` carries a
//! reference count of *node-update-field references* plus one creation
//! reference (see `DESIGN.md` §3): a successful freeze CAS transfers a
//! reference from the displaced `Info` to the installed one, and retiring
//! a node releases the reference held by its (permanently marked) update
//! field. The count uses an increment-before-CAS discipline so it never
//! goes negative, and a `retired` flag makes retirement idempotent.

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU8};

use crate::node::Node;

/// Raw pointer to a tree node (owned by the tree / epoch collector).
pub(crate) type NodePtr<K, V> = *const Node<K, V>;
/// Raw pointer to an `Info` object.
pub(crate) type InfoPtr<K, V> = *const Info<K, V>;

/// The paper's `{Flag, Mark}` discriminant, stored as the low tag bit of
/// the `Info` pointer inside a node's `update` word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub(crate) enum FreezeTag {
    /// The node's child pointer is about to change but the node stays in
    /// the tree.
    Flag = 0,
    /// The node is about to be removed from the (current) tree. Marking is
    /// permanent if the attempt commits (paper Lemma 23).
    Mark = 1,
}

impl FreezeTag {
    #[inline]
    pub(crate) fn from_bit(bit: usize) -> Self {
        if bit & 1 == 0 {
            FreezeTag::Flag
        } else {
            FreezeTag::Mark
        }
    }

    #[inline]
    pub(crate) fn bit(self) -> usize {
        self as usize
    }
}

/// A decoded update word: `(tag, info)` — the paper's `Update` record.
///
/// Two words are equal iff both the tag and the pointer are equal, which
/// is exactly single-word CAS equality on the packed representation.
pub(crate) struct UpdateWord<K, V> {
    pub tag: FreezeTag,
    pub info: InfoPtr<K, V>,
}

// Manual Copy/Clone: derives would demand K: Clone etc. even though we
// only hold raw pointers.
impl<K, V> Clone for UpdateWord<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for UpdateWord<K, V> {}

impl<K, V> PartialEq for UpdateWord<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && std::ptr::eq(self.info, other.info)
    }
}
impl<K, V> Eq for UpdateWord<K, V> {}

impl<K, V> std::fmt::Debug for UpdateWord<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UpdateWord({:?}, {:p})", self.tag, self.info)
    }
}

impl<K, V> UpdateWord<K, V> {
    pub(crate) fn new(tag: FreezeTag, info: InfoPtr<K, V>) -> Self {
        UpdateWord { tag, info }
    }
}

/// `Info.state` values (paper line 6). `u8` backing for `AtomicU8`.
pub(crate) mod state {
    /// `⊥` — attempt created, handshake not yet performed.
    pub const UNDECIDED: u8 = 0;
    /// Handshake succeeded; freezing in progress.
    pub const TRY: u8 = 1;
    /// Child CAS performed; the update took effect.
    pub const COMMIT: u8 = 2;
    /// Attempt aborted (handshake failed or a freeze CAS lost).
    pub const ABORT: u8 = 3;
}

/// Which operation created an `Info` object. Determines the shape of the
/// replacement subtree (and therefore what gets retired on commit or freed
/// on abort).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpKind {
    /// `Insert`: `new_child` is a fresh internal node with two fresh
    /// leaves; `old_child` is the replaced leaf.
    Insert,
    /// `Delete`: `new_child` is a fresh copy of the sibling; `old_child`
    /// is the parent being spliced out together with both its children.
    Delete,
    /// `Upsert`'s replacement shape: `new_child` is a single fresh leaf
    /// carrying the new value (`prev` = the old leaf); `old_child` is the
    /// replaced leaf. The smallest of the three shapes — one node in, one
    /// node out, same freeze-validate-CAS protocol.
    Replace,
}

/// Maximum number of nodes an attempt freezes (4, for `Delete`:
/// `[gp, p, l, sibling]`).
pub(crate) const MAX_NODES: usize = 4;

/// The paper's `Info` record (Figure 2, lines 5–14) plus reclamation
/// bookkeeping.
///
/// All fields except `state`, `refs` and `retired` are immutable after
/// construction (paper Observation 1).
pub(crate) struct Info<K, V> {
    /// State machine; see module docs.
    pub state: AtomicU8,
    /// Sequence number (phase) of the attempt — read from `Counter` at the
    /// start of the attempt and re-checked by the handshake.
    pub seq: u64,
    /// Creating operation kind.
    pub kind: OpKind,
    /// Number of valid entries in `nodes` / `old_update` / `mark`.
    pub len: usize,
    /// Nodes to freeze, in freeze order (`nodes[0]` is frozen by
    /// `Execute`, the rest by `Help`).
    pub nodes: [NodePtr<K, V>; MAX_NODES],
    /// Expected old values for the freeze CAS steps.
    pub old_update: [UpdateWord<K, V>; MAX_NODES],
    /// Whether `nodes[i]` is frozen with `Mark` (to be removed) rather
    /// than `Flag`.
    pub mark: [bool; MAX_NODES],
    /// The node whose child pointer will change (always `nodes[0]`:
    /// `p` for inserts, `gp` for deletes).
    pub par: NodePtr<K, V>,
    /// Expected old value for the child CAS.
    pub old_child: NodePtr<K, V>,
    /// New value for the child CAS; `new_child.prev == old_child`.
    pub new_child: NodePtr<K, V>,
    /// Node-reference count plus one creation reference (see module docs).
    pub refs: AtomicIsize,
    /// Set exactly once by whoever observes `refs == 0`; the winner defers
    /// destruction through the epoch collector.
    pub retired: AtomicBool,
}

impl<K, V> Info<K, V> {
    /// Build an `Info` for an attempt. `refs` starts at 1 — the creation
    /// reference held by the creating operation until its `Execute`
    /// finishes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kind: OpKind,
        nodes: &[NodePtr<K, V>],
        old_update: &[UpdateWord<K, V>],
        mark: &[bool],
        par: NodePtr<K, V>,
        old_child: NodePtr<K, V>,
        new_child: NodePtr<K, V>,
        seq: u64,
    ) -> Self {
        debug_assert_eq!(nodes.len(), old_update.len());
        debug_assert_eq!(nodes.len(), mark.len());
        debug_assert!(nodes.len() <= MAX_NODES && !nodes.is_empty());
        debug_assert!(std::ptr::eq(par, nodes[0]), "par must be nodes[0]");
        let mut n = [std::ptr::null(); MAX_NODES];
        let mut u = [UpdateWord::new(FreezeTag::Flag, std::ptr::null()); MAX_NODES];
        let mut m = [false; MAX_NODES];
        n[..nodes.len()].copy_from_slice(nodes);
        u[..old_update.len()].copy_from_slice(old_update);
        m[..mark.len()].copy_from_slice(mark);
        Info {
            state: AtomicU8::new(state::UNDECIDED),
            seq,
            kind,
            len: nodes.len(),
            nodes: n,
            old_update: u,
            mark: m,
            par,
            old_child,
            new_child,
            refs: AtomicIsize::new(1),
            retired: AtomicBool::new(false),
        }
    }

    /// The per-tree Dummy `Info` (paper line 30): permanently `Abort`, so
    /// `Frozen` on a word pointing at it is always false. `retired` is
    /// preset so the reference-counting machinery can never try to free it
    /// (the tree owns and frees it on drop).
    pub(crate) fn dummy() -> Self {
        Info {
            state: AtomicU8::new(state::ABORT),
            seq: 0,
            kind: OpKind::Insert,
            len: 0,
            nodes: [std::ptr::null(); MAX_NODES],
            old_update: [UpdateWord::new(FreezeTag::Flag, std::ptr::null()); MAX_NODES],
            mark: [false; MAX_NODES],
            par: std::ptr::null(),
            old_child: std::ptr::null(),
            new_child: std::ptr::null(),
            refs: AtomicIsize::new(isize::MAX / 2),
            retired: AtomicBool::new(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn freeze_tag_roundtrip() {
        assert_eq!(FreezeTag::from_bit(0), FreezeTag::Flag);
        assert_eq!(FreezeTag::from_bit(1), FreezeTag::Mark);
        assert_eq!(FreezeTag::Flag.bit(), 0);
        assert_eq!(FreezeTag::Mark.bit(), 1);
        // Only the low bit matters (crossbeam may hand back wider tags).
        assert_eq!(FreezeTag::from_bit(0b10), FreezeTag::Flag);
        assert_eq!(FreezeTag::from_bit(0b11), FreezeTag::Mark);
    }

    #[test]
    fn update_word_equality_is_tag_and_pointer() {
        let a = Info::<i64, ()>::dummy();
        let b = Info::<i64, ()>::dummy();
        let pa: InfoPtr<i64, ()> = &a;
        let pb: InfoPtr<i64, ()> = &b;
        let w1 = UpdateWord::new(FreezeTag::Flag, pa);
        let w2 = UpdateWord::new(FreezeTag::Flag, pa);
        let w3 = UpdateWord::new(FreezeTag::Mark, pa);
        let w4 = UpdateWord::new(FreezeTag::Flag, pb);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3); // same pointer, different tag
        assert_ne!(w1, w4); // same tag, different pointer
    }

    #[test]
    fn dummy_is_aborted_and_unretirable() {
        let d = Info::<u32, u32>::dummy();
        assert_eq!(d.state.load(Ordering::Relaxed), state::ABORT);
        assert!(d.retired.load(Ordering::Relaxed));
        assert_eq!(d.len, 0);
    }

    #[test]
    fn new_info_starts_undecided_with_creation_ref() {
        let d = Info::<u32, u32>::dummy();
        let pd: InfoPtr<u32, u32> = &d;
        let w = UpdateWord::new(FreezeTag::Flag, pd);
        // Fake node pointers: `Info::new` never dereferences them.
        let fake = [1usize as NodePtr<u32, u32>, 2 as NodePtr<u32, u32>];
        let info = Info::new(
            OpKind::Insert,
            &fake,
            &[w, w],
            &[false, true],
            fake[0],
            fake[1],
            3 as NodePtr<u32, u32>,
            7,
        );
        assert_eq!(info.state.load(Ordering::Relaxed), state::UNDECIDED);
        assert_eq!(info.refs.load(Ordering::Relaxed), 1);
        assert!(!info.retired.load(Ordering::Relaxed));
        assert_eq!(info.len, 2);
        assert_eq!(info.seq, 7);
        assert!(info.mark[1] && !info.mark[0]);
    }
}
