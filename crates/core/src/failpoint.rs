//! In-process failpoint hooks (compiled in with the `failpoints`
//! feature; zero-cost otherwise).
//!
//! A test registers a closure under a well-known point name and the
//! production code calls [`hit`] at that point — used to stall the
//! flat-combining drain pass (`"combine::drain"`) and prove the
//! publication protocol cannot wedge behind a stuck combiner. Unlike
//! the server crate's probability-based `PNB_FAILPOINTS` environment
//! hooks, these are deterministic and programmatic: the registering
//! test owns exactly when and how the point fires.

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    type Hook = Arc<dyn Fn() + Send + Sync>;

    fn registry() -> &'static Mutex<HashMap<&'static str, Hook>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Hook>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Install `f` at `point`, replacing any previous hook.
    pub fn set(point: &'static str, f: impl Fn() + Send + Sync + 'static) {
        registry().lock().unwrap().insert(point, Arc::new(f));
    }

    /// Remove the hook at `point` (no-op if none is installed).
    pub fn clear(point: &str) {
        registry().lock().unwrap().remove(point);
    }

    pub(crate) fn hit(point: &str) {
        // Clone out of the lock so a long-running hook (a deliberate
        // stall) never blocks other points.
        let hook = registry().lock().unwrap().get(point).cloned();
        if let Some(h) = hook {
            h();
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, set};

/// Fire the hook at `point`, if one is registered. Compiles to nothing
/// without the `failpoints` feature.
#[inline]
pub(crate) fn hit(point: &str) {
    #[cfg(feature = "failpoints")]
    imp::hit(point);
    #[cfg(not(feature = "failpoints"))]
    let _ = point;
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn hooks_fire_and_clear() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        super::set("test::point", move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        super::hit("test::point");
        super::hit("test::point");
        assert_eq!(n.load(Ordering::Relaxed), 2);
        super::clear("test::point");
        super::hit("test::point");
        assert_eq!(n.load(Ordering::Relaxed), 2);
        super::hit("test::unregistered"); // silently ignored
    }
}
