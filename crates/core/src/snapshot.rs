//! Point-in-time snapshots — the persistence dividend.
//!
//! The paper's range scans already reconstruct the version-`seq` tree
//! `T_seq`; a [`Snapshot`] simply *holds on* to such a version: it ends
//! the current phase (like a scan) and keeps an epoch guard pinned so the
//! nodes of its version cannot be reclaimed. All reads through the
//! snapshot — point lookups, range scans, full iteration — are wait-free
//! and mutually consistent: they all observe exactly the abstract set as
//! of the snapshot's linearization point, no matter how many updates have
//! happened since.
//!
//! This is an *extension* the paper explicitly enables ("in a persistent
//! data structure … one can access any old version", §1) but does not
//! spell out; it reuses `ScanHelper`'s traversal and helping rules, so
//! the same correctness argument (paper Lemma 44) applies.
//!
//! A long-lived snapshot delays epoch reclamation of every node retired
//! after its creation — treat it like holding a read lock on memory
//! (never on other threads' progress).

use crossbeam_epoch::{self as epoch, Guard};
use std::ops::Bound;
use std::sync::atomic::Ordering::{Acquire, SeqCst};

use crate::info::state;
use crate::key::SKey;
use crate::tree::PnbBst;

/// A wait-free, immutable view of a [`PnbBst`] as of its creation.
///
/// Not `Send`: it embeds the creating thread's epoch guard.
///
/// # Example
///
/// ```
/// use pnb_bst::PnbBst;
///
/// let tree: PnbBst<u32, u32> = PnbBst::new();
/// tree.insert(1, 10);
/// let snap = tree.snapshot();
/// tree.insert(2, 20);
/// tree.delete(&1);
/// // The snapshot still shows the old state...
/// assert_eq!(snap.get(&1), Some(10));
/// assert_eq!(snap.get(&2), None);
/// assert_eq!(snap.len(), 1);
/// // ...while the tree has moved on.
/// assert_eq!(tree.get(&1), None);
/// assert_eq!(tree.get(&2), Some(20));
/// ```
pub struct Snapshot<'t, K, V> {
    tree: &'t PnbBst<K, V>,
    guard: Guard,
    seq: u64,
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Take a linearizable snapshot of the current contents. Ends the
    /// current phase exactly like a range scan does.
    pub fn snapshot(&self) -> Snapshot<'_, K, V> {
        let guard = epoch::pin();
        // sc-ok: phase close — a snapshot ends the current phase exactly
        // like a scan (§4.1); scanner half of the handshake pair.
        let seq = self.counter.fetch_add(1, SeqCst); // sc-ok: phase close
        Snapshot {
            tree: self,
            guard,
            seq,
        }
    }
}

impl<K, V> Snapshot<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// The phase this snapshot belongs to (its sequence number).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Wait-free point lookup in the snapshot's version of the tree.
    ///
    /// A degenerate `ScanHelper`: walk version-`seq` children toward the
    /// key, helping in-progress updates along the path so that every
    /// update of phase ≤ `seq` is observed.
    pub fn get(&self, key: &K) -> Option<V> {
        let guard = &self.guard;
        let mut node = unsafe { &*self.tree.root };
        loop {
            if node.leaf {
                return if node.key.fin_eq(key) {
                    node.value.clone()
                } else {
                    None
                };
            }
            // Scanner-side load (`load_update_scan`): this walk reads
            // the closed phase `seq`, same obligations as `ScanHelper`.
            let w = node.load_update_scan(guard);
            // SAFETY: update words point to live Infos while pinned.
            // Acquire: pairs with the AcqRel state transitions.
            let st = unsafe { (*w.info).state.load(Acquire) };
            if st == state::UNDECIDED || st == state::TRY {
                self.tree.help(w.info, guard);
            }
            let child = self
                .tree
                .read_child(node, node.key.fin_lt(key), self.seq, guard);
            // SAFETY: read_child returns a valid node under our guard.
            node = unsafe { child.deref() };
        }
    }

    /// Whether `key` was present when the snapshot was taken.
    pub fn contains(&self, key: &K) -> bool {
        // Cheap enough: a value clone is avoided by comparing on the leaf.
        let guard = &self.guard;
        let mut node = unsafe { &*self.tree.root };
        loop {
            if node.leaf {
                return node.key.fin_eq(key);
            }
            let w = node.load_update_scan(guard);
            // SAFETY: live under our pinned guard; Acquire pairs with
            // the AcqRel state transitions.
            let st = unsafe { (*w.info).state.load(Acquire) };
            if st == state::UNDECIDED || st == state::TRY {
                self.tree.help(w.info, guard);
            }
            let child = self
                .tree
                .read_child(node, node.key.fin_lt(key), self.seq, guard);
            node = unsafe { child.deref() };
        }
    }

    /// Range query `[lo, hi]` within the snapshot (ascending order).
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Included(lo), Bound::Included(hi), |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Visitor-style range query within the snapshot.
    pub fn range_scan_with<F: FnMut(&K, &V)>(&self, lo: Bound<&K>, hi: Bound<&K>, mut f: F) {
        self.tree.scan_tree(self.seq, lo, hi, &mut f, &self.guard);
    }

    /// Lazy, wait-free range iteration within the snapshot over any
    /// [`RangeBounds`](std::ops::RangeBounds) — the snapshot's phase is
    /// already closed, so (unlike [`Handle::range`](crate::Handle::range))
    /// this does not advance the counter and any number of iterations
    /// observe the same version.
    pub fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> crate::Range<'_, K, V> {
        let (lo, hi) = crate::iter::cloned_bounds(&range);
        crate::Range::new(self.tree, &self.guard, self.seq, lo, hi)
    }

    /// Lazy iteration over the whole snapshot (`range(..)`), ascending.
    pub fn iter(&self) -> crate::Range<'_, K, V> {
        self.range(..)
    }

    /// All key/value pairs in the snapshot, ascending.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |_, _| n += 1);
        n
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys only, ascending.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |k, _| {
            out.push(k.clone())
        });
        out
    }

    fn first_in_bounds(&self, lo: Bound<&K>, hi: Bound<&K>, desc: bool) -> Option<(K, V)> {
        let mut out = None;
        self.tree.scan_tree_ctl(
            self.seq,
            lo,
            hi,
            desc,
            &mut |k, v| {
                out = Some((k.clone(), v.clone()));
                std::ops::ControlFlow::Break(())
            },
            &self.guard,
        );
        out
    }

    /// Smallest entry in the snapshot.
    pub fn first_key_value(&self) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Unbounded, false)
    }

    /// Largest entry in the snapshot.
    pub fn last_key_value(&self) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Unbounded, true)
    }

    /// Smallest entry with key strictly greater than `key`.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Excluded(key), Bound::Unbounded, false)
    }

    /// Largest entry with key strictly smaller than `key`.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Excluded(key), true)
    }
}

// Silence the unused-import lint for SKey used only in docs above.
#[allow(unused_imports)]
use SKey as _SKeyDocOnly;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_frozen_in_time() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        for k in 0..10 {
            t.insert(k, k);
        }
        let snap = t.snapshot();
        for k in 10..20 {
            t.insert(k, k);
        }
        for k in 0..5 {
            t.delete(&k);
        }
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.keys(), (0..10).collect::<Vec<_>>());
        assert_eq!(t.len(), 15);
        // Point lookups agree with the frozen view.
        assert_eq!(snap.get(&3), Some(3));
        assert!(snap.contains(&3));
        assert_eq!(snap.get(&15), None);
        assert!(!snap.contains(&15));
    }

    #[test]
    fn multiple_snapshots_capture_distinct_versions() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        t.insert(1, 1);
        let s1 = t.snapshot();
        t.insert(2, 2);
        let s2 = t.snapshot();
        t.delete(&1);
        let s3 = t.snapshot();
        assert_eq!(s1.keys(), vec![1]);
        assert_eq!(s2.keys(), vec![1, 2]);
        assert_eq!(s3.keys(), vec![2]);
        assert!(s1.seq() < s2.seq() && s2.seq() < s3.seq());
    }

    #[test]
    fn snapshot_range_queries() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        for k in 0..20 {
            t.insert(k, -k);
        }
        let snap = t.snapshot();
        for k in 0..20 {
            t.delete(&k);
        }
        assert!(t.is_empty());
        assert_eq!(
            snap.range_scan(&5, &8),
            vec![(5, -5), (6, -6), (7, -7), (8, -8)]
        );
        assert_eq!(snap.len(), 20);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_of_empty_tree() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        let snap = t.snapshot();
        t.insert(1, 1);
        assert!(snap.is_empty());
        assert_eq!(snap.get(&1), None);
        assert_eq!(snap.to_vec(), vec![]);
    }
}
