//! `Execute`, `Help` and `CAS-Child` (paper Figure 4, lines 83–128) plus
//! the reclamation machinery the paper leaves to a garbage collector.
//!
//! An update attempt proceeds as:
//!
//! 1. `execute` re-checks that none of the expected old update words is
//!    frozen (helping any that are), allocates the `Info` object and
//!    *publishes* it with the first freeze CAS (flagging `nodes[0]`). The
//!    operation is linearized here if it ultimately commits.
//! 2. `help` — runnable by *any* thread holding the `Info` — performs the
//!    handshake (abort if `Counter` moved since the attempt began, §4.1),
//!    freezes the remaining nodes in order, swings the child pointer, and
//!    resolves the state to `Commit` or `Abort`.
//!
//! # Reclamation protocol (see DESIGN.md §3)
//!
//! * Whoever wins the child CAS retires the unlinked nodes (they are
//!   precisely the permanently-marked ones).
//! * Info objects are reference-counted by node-update-field references
//!   plus one creation reference; `dec_ref` retires at zero, idempotently.
//! * A replacement subtree that never became reachable (attempt failed or
//!   aborted) is freed by its creator — immediately if the `Info` was
//!   never published, deferred otherwise.
//! * Every allocation comes from the per-thread arena pools
//!   ([`crate::arena`]) and every retirement flows back into them via
//!   `defer_recycle`, so a steady-state update loop touches the global
//!   allocator only on pool misses.
//!
//! # Memory orderings
//!
//! The blanket `SeqCst` of the first port is gone; each atomic site now
//! carries the weakest ordering its proof obligation permits, with a
//! one-line invariant comment. `SeqCst` survives only on the scan
//! handshake's store-buffering pair (`sc-ok:` tags; see DESIGN.md §3.5
//! for the full site table).

use crossbeam_epoch::{Guard, Shared};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};

use crate::arena;
use crate::info::{state, FreezeTag, Info, InfoPtr, NodePtr, OpKind, UpdateWord};
use crate::node::{word_shared, Node};
use crate::tree::PnbBst;

/// Result of one `Execute` call: either the attempt failed before its
/// `Info` became visible (retry), or it *published* — from which point
/// the creator must drive it to a decision with
/// [`PnbBst::finish_published`] (immediately in production; after an
/// arbitrary delay in the fault-injection harness, where the gap models
/// a crash).
pub(crate) enum ExecOutcome<K, V> {
    /// The attempt failed pre-publish (a frozen old word, or the first
    /// freeze CAS lost). The replacement subtree has been freed.
    Failed,
    /// The first freeze CAS succeeded: the attempt is visible to every
    /// other thread and any of them may now complete or abort it.
    Published(InfoPtr<K, V>),
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Paper `Execute` (lines 92–106) up to and including the first
    /// freeze CAS. The `Help`/cleanup half lives in
    /// [`finish_published`](Self::finish_published) so the fault-injection
    /// harness can suspend an attempt between the two.
    ///
    /// Takes ownership of `new_child` (for inserts: including its two
    /// fresh leaves) and frees it on failure.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &self,
        kind: OpKind,
        nodes: &[NodePtr<K, V>],
        old_update: &[UpdateWord<K, V>],
        mark: &[bool],
        par: NodePtr<K, V>,
        old_child: NodePtr<K, V>,
        new_child: NodePtr<K, V>,
        seq: u64,
        guard: &Guard,
    ) -> ExecOutcome<K, V> {
        // Lines 96–101: nothing we are about to freeze may currently be
        // frozen; help in-progress operations before failing.
        for &u in old_update {
            if self.frozen(u) {
                // SAFETY: `u.info` valid under guard (see `frozen`).
                // Acquire: must see the Info's fields before Help
                // dereferences them (pairs with the freeze-CAS publish).
                let st = unsafe { (*u.info).state.load(Acquire) };
                if st == state::UNDECIDED || st == state::TRY {
                    self.stats.helps();
                    self.help(u.info, guard);
                }
                self.free_unpublished_new_child(kind, new_child);
                return ExecOutcome::Failed;
            }
        }
        // Line 102: allocate the Info object (refs = 1: creation ref)
        // from the thread-local arena.
        let info: InfoPtr<K, V> = arena::alloc(Info::new(
            kind, nodes, old_update, mark, par, old_child, new_child, seq,
        ));
        // Line 103: first freeze CAS — flag nodes[0]. Increment the
        // prospective field reference *before* the CAS so the count can
        // never dip below the number of live references.
        // SAFETY: we own `info` until it is published.
        // Relaxed: pre-publish, the count is still creation-owned; the
        // publishing CAS below is what transfers it to other threads.
        unsafe { (*info).refs.fetch_add(1, Relaxed) };
        // SAFETY: nodes[0] is reachable (returned by search) and pinned.
        let first = unsafe { &*nodes[0] };
        let new_word = Shared::from(info).with_tag(FreezeTag::Flag.bit());
        match first.update_word().compare_exchange(
            word_shared(old_update[0]),
            new_word,
            // sc-ok: scan-handshake total order (§4.1). This publish is
            // the updater half of the store-buffering pair — it must be
            // SeqCst-ordered against the scan's Counter fetch_add so
            // that an attempt whose handshake read `Counter == seq` is
            // guaranteed visible to the phase-closing scan's traversal.
            // (It also Release-publishes the Info's fields, as any
            // publication CAS must.)
            SeqCst, // sc-ok: scan-handshake publish (see above)
            // Relaxed failure: the observed word is discarded (we free
            // and retry), never dereferenced.
            Relaxed,
            guard,
        ) {
            Ok(_) => {
                // Published. The displaced word loses its field reference.
                self.dec_ref(old_update[0].info, guard);
                ExecOutcome::Published(info)
            }
            Err(_) => {
                self.stats.freeze_cas_failures();
                // Never published: we are the only owner of both the Info
                // and the replacement subtree — recycle immediately.
                arena::free_now(info as *mut Info<K, V>);
                self.free_unpublished_new_child(kind, new_child);
                ExecOutcome::Failed
            }
        }
    }

    /// Drive a *published* attempt to completion: run `Help`, clean up the
    /// replacement subtree if the attempt aborted, and release the
    /// creation reference. Returns whether the attempt committed.
    ///
    /// Also the body of `PausedUpdate::resume` in the testing API.
    pub(crate) fn finish_published(&self, info: InfoPtr<K, V>, guard: &Guard) -> bool {
        let committed = self.help(info, guard);
        if !committed {
            // The replacement subtree never became reachable (Lemma 10:
            // aborted attempts perform no child CAS); defer-free it. Only
            // the creator does this, exactly once.
            // SAFETY: we hold the creation reference, so `info` is alive.
            let (kind, new_child) = unsafe { ((*info).kind, (*info).new_child) };
            self.defer_free_new_child(kind, new_child, guard);
        }
        self.dec_ref(info, guard); // release the creation reference
        committed
    }

    /// Paper `Help(infp)` (lines 107–128). Returns `true` iff the attempt
    /// committed. Callable by any thread; precondition: `infp` is
    /// published and is not the Dummy.
    pub(crate) fn help(&self, infp: InfoPtr<K, V>, guard: &Guard) -> bool {
        debug_assert!(!std::ptr::eq(infp, self.dummy), "Help(Dummy) is forbidden");
        // SAFETY: published Info objects are retired only through the
        // epoch collector; the caller is pinned.
        let info = unsafe { &*infp };

        // Lines 111–113: the handshake. If Counter moved past our phase a
        // range scan may already have traversed (and missed) the part of
        // the tree we are updating — pro-actively abort.
        //
        // sc-ok: scan-handshake total order (§4.1). This re-read is the
        // updater half of the store-buffering pair: if it misses the
        // scan's SeqCst fetch_add, the SeqCst total order forces the
        // scan's later update-word loads to observe our publish CAS (and
        // help us); if it sees the increment, we abort. Both missing —
        // the lost-update outcome — is exactly what SC on all four
        // accesses excludes.
        let counter_now = self.counter.load(SeqCst); // sc-ok: handshake re-read
        if counter_now != info.seq {
            // AcqRel success: the Abort decision gates frees of the
            // replacement subtree; it must not advance before the
            // handshake read nor let later cleanup sink above it.
            // Relaxed failure: the racing transition wins, we re-read
            // state below.
            if info
                .state
                .compare_exchange(state::UNDECIDED, state::ABORT, AcqRel, Relaxed)
                .is_ok()
            {
                self.stats.handshake_aborts();
            }
        } else {
            // AcqRel: Try gates the freeze loop; see state-machine note
            // in DESIGN.md §3.5 (all state transitions are AcqRel so a
            // reader that observes a decision also observes everything
            // sequenced before it — notably the child CAS before
            // Commit).
            let _ = info
                .state
                .compare_exchange(state::UNDECIDED, state::TRY, AcqRel, Relaxed);
        }
        // Line 114. Acquire: pairs with the AcqRel transitions above (a
        // helper may have decided the state concurrently).
        let mut cont = info.state.load(Acquire) == state::TRY;

        // Lines 115–121: freeze the remaining nodes, in order.
        let mut i = 1;
        while cont && i < info.len {
            // SAFETY: nodes in a published Info stay reachable while the
            // attempt is undecided (they are frozen or about to be), and
            // we are pinned.
            let node = unsafe { &*info.nodes[i] };
            let tag = if info.mark[i] {
                FreezeTag::Mark
            } else {
                FreezeTag::Flag
            };
            // Increment-before-CAS (see module docs). Relaxed: we
            // already hold a reference to `info` (it is published), so
            // this is the Arc::clone pattern — no ordering needed to
            // *take* a reference, only to release one.
            info.refs.fetch_add(1, Relaxed);
            match node.update_word().compare_exchange(
                word_shared(info.old_update[i]),
                Shared::from(infp).with_tag(tag.bit()),
                // Release: publishes nothing new (the Info is already
                // published) but must not sink below the `cont` re-read;
                // Release on the RMW also keeps the freeze ordered
                // before the child CAS for helpers that observe it.
                Release,
                // Relaxed failure: the observed word is not dereferenced
                // (the `cont` re-read below decides by pointer equality).
                Relaxed,
                guard,
            ) {
                Ok(_) => {
                    // Reference transferred from the displaced word.
                    self.dec_ref(info.old_update[i].info, guard);
                }
                Err(_) => {
                    self.stats.freeze_cas_failures();
                    self.dec_ref(infp, guard); // undo the speculative inc
                }
            }
            // Line 119: somebody (us or a fellow helper) must have frozen
            // this node for `info`, whatever the tag. Acquire: same-
            // location coherence after our RMW makes the value current;
            // Acquire keeps the subsequent child CAS from hoisting above
            // the confirmation that every freeze landed.
            cont = std::ptr::eq(node.update_word().load(Acquire, guard).as_raw(), infp);
            i += 1;
        }

        if cont {
            // Line 123: the child CAS — the update takes effect.
            let won = self.cas_child(info.par, info.old_child, info.new_child, guard);
            // Line 124: commit write. A CAS from Try keeps the transition
            // single-shot; by Lemma 10 no abort can race with it.
            // AcqRel: a thread that reads Commit (Acquire) must also
            // observe the child CAS sequenced before this transition —
            // scans rely on that chain to read the new child without
            // helping (DESIGN.md §3.5).
            let _ = info
                .state
                .compare_exchange(state::TRY, state::COMMIT, AcqRel, Relaxed);
            if won {
                // Unique winner: retire what the CAS unlinked.
                self.retire_replaced(info, guard);
            }
        } else if info.state.load(Acquire) == state::TRY {
            // Lines 125–126: abort write (a freeze CAS lost the race).
            // AcqRel: the Abort decision gates the creator's deferred
            // free of the never-linked replacement subtree.
            if info
                .state
                .compare_exchange(state::TRY, state::ABORT, AcqRel, Relaxed)
                .is_ok()
            {
                self.stats.freeze_aborts();
            }
        }
        // Line 127. Acquire: pairs with the deciding AcqRel transition.
        info.state.load(Acquire) == state::COMMIT
    }

    /// Paper `CAS-Child` (lines 83–88). Returns whether *our* CAS was the
    /// one that performed the swing.
    pub(crate) fn cas_child(
        &self,
        par: NodePtr<K, V>,
        old: NodePtr<K, V>,
        new: NodePtr<K, V>,
        guard: &Guard,
    ) -> bool {
        // SAFETY: par/new belong to a published Info whose nodes are
        // frozen; both outlive this call under the guard.
        let parent = unsafe { &*par };
        let new_ref = unsafe { &*new };
        debug_assert!(std::ptr::eq(new_ref.prev, old), "new.prev must equal old");
        let field = parent.child_word(new_ref.key < parent.key); // lines 85–87
        field
            .compare_exchange(
                Shared::from(old),
                Shared::from(new),
                // Release: publishes the new subtree — its nodes' cold
                // fields were written before this CAS and become
                // reachable through it (pairs with `load_child`'s
                // Acquire).
                Release,
                // Acquire failure: losing means a fellow helper already
                // swung the pointer; acquiring its Release here is what
                // lets *our* subsequent Commit write carry visibility of
                // the new child to readers that see Commit without
                // helping (DESIGN.md §3.5).
                Acquire,
                guard,
            )
            .is_ok()
    }

    /// Retire the nodes a successful child CAS unlinked from the current
    /// tree: the old leaf for an insert or a replace; the parent and both
    /// its children for a delete. All of them are permanently marked for
    /// `info`.
    fn retire_replaced(&self, info: &Info<K, V>, guard: &Guard) {
        match info.kind {
            OpKind::Insert | OpKind::Replace => {
                self.retire_node(info.old_child, guard);
            }
            OpKind::Delete => {
                // SAFETY: old_child is frozen for `info`; its children are
                // immutable since the freeze (Lemma 24) and are exactly
                // nodes[2] (the deleted leaf) and nodes[3] (the sibling).
                let p = unsafe { &*info.old_child };
                let l = p.load_child(true, guard);
                let r = p.load_child(false, guard);
                self.retire_node(l.as_raw(), guard);
                self.retire_node(r.as_raw(), guard);
                self.retire_node(info.old_child, guard);
            }
        }
    }

    /// Retire one unlinked node: release the Info reference its
    /// (permanently marked, hence immutable — Lemma 23) update field
    /// holds, then defer reclamation *into the arena pools*.
    fn retire_node(&self, node: NodePtr<K, V>, guard: &Guard) {
        // SAFETY: `node` was just unlinked by us; it stays valid under our
        // guard.
        let n = unsafe { &*node };
        let w = n.load_update(guard);
        debug_assert_eq!(w.tag, FreezeTag::Mark, "unlinked nodes are marked");
        self.dec_ref(w.info, guard);
        // SAFETY: `node` is unreachable to operations that pin after this
        // point (DESIGN.md §3); current pinners are protected by epochs.
        // Once ripe, the memory flows back to a thread-local pool.
        unsafe { guard.defer_recycle(Shared::from(node), arena::recycle_raw::<Node<K, V>>) };
    }

    /// Release one reference to `info`; the thread that drops the count
    /// to zero retires it (exactly once — `retired` is a one-shot flag).
    pub(crate) fn dec_ref(&self, info: InfoPtr<K, V>, guard: &Guard) {
        if std::ptr::eq(info, self.dummy) {
            return; // the Dummy is tree-owned and never retired
        }
        // SAFETY: caller holds a reference or is pinned from before any
        // possible retirement.
        let i = unsafe { &*info };
        // AcqRel (the Arc drop pattern): Release orders all our prior
        // uses of the Info before the decrement; Acquire on the final
        // decrement makes every other thread's prior uses visible
        // before the retirement below.
        if i.refs.fetch_sub(1, AcqRel) == 1
            // AcqRel: the count can touch zero more than once (a helper's
            // increment-before-CAS may resurrect it); the swap elects a
            // single retiring thread and orders the election against the
            // deferred destruction.
            && !i.retired.swap(true, AcqRel)
        {
            // SAFETY: count reached zero: no node update field and no
            // creation reference remains; stragglers are pinned. Ripe
            // memory flows back to a thread-local pool.
            unsafe { guard.defer_recycle(Shared::from(info), arena::recycle_raw::<Info<K, V>>) };
        }
    }

    /// Free a replacement subtree that was never published: nobody else
    /// has ever observed these nodes, so immediate recycling is safe.
    pub(crate) fn free_unpublished_new_child(&self, kind: OpKind, new_child: NodePtr<K, V>) {
        unsafe {
            // SAFETY: sole owner; loads use the unprotected guard because
            // the nodes were never shared (Relaxed for the same reason).
            let guard = crossbeam_epoch::unprotected();
            if let OpKind::Insert = kind {
                let n = &*new_child;
                let l = n.load_child(true, guard).as_raw();
                let r = n.load_child(false, guard).as_raw();
                arena::free_now(l as *mut Node<K, V>);
                arena::free_now(r as *mut Node<K, V>);
            }
            // For deletes the copy's children are *shared* live nodes,
            // and a replace's new leaf has none — only the node itself
            // is ours in either case.
            arena::free_now(new_child as *mut Node<K, V>);
        }
    }

    /// Defer-free a replacement subtree whose attempt was published but
    /// aborted. Aborted attempts never perform a child CAS (Lemma 10), so
    /// the subtree never became reachable; deferral covers helpers that
    /// may still hold the pointer.
    pub(crate) fn defer_free_new_child(
        &self,
        kind: OpKind,
        new_child: NodePtr<K, V>,
        guard: &Guard,
    ) {
        unsafe {
            if let OpKind::Insert = kind {
                let n = &*new_child;
                let l = n.load_child(true, guard);
                let r = n.load_child(false, guard);
                guard.defer_recycle(l, arena::recycle_raw::<Node<K, V>>);
                guard.defer_recycle(r, arena::recycle_raw::<Node<K, V>>);
            }
            guard.defer_recycle(Shared::from(new_child), arena::recycle_raw::<Node<K, V>>);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;

    // The state machine and freezing order are exercised end-to-end by
    // the tree tests; here we pin down Execute/Help behaviours that are
    // awkward to reach through the public API alone.

    #[test]
    fn execute_failure_on_lost_first_cas_retries_cleanly() {
        // Two inserts of different keys landing under the same parent
        // must both succeed across retries (one will lose a freeze CAS
        // occasionally under contention; here we just check the
        // sequential path repeatedly).
        let t: PnbBst<u32, u32> = PnbBst::new();
        for k in 0..100 {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.check_invariants(), 100);
    }

    #[test]
    fn help_is_idempotent_on_committed_info() {
        // After a successful insert the parent stays flagged with the
        // committed Info; a later delete on the same neighbourhood must
        // proceed despite that stale flag (Frozen == false on
        // Flag+Commit).
        let t: PnbBst<u32, u32> = PnbBst::new();
        t.insert(10, 1);
        t.insert(20, 2);
        assert!(t.delete(&10));
        assert!(t.delete(&20));
        assert_eq!(t.check_invariants(), 0);
    }

    #[test]
    fn counter_stationary_updates_commit_first_try() {
        // With no scans, the handshake must never abort.
        let t: PnbBst<u32, u32> = PnbBst::new();
        for k in 0..50 {
            t.insert(k, k);
        }
        #[cfg(feature = "stats")]
        {
            assert_eq!(t.stats().handshake_aborts, 0);
        }
        let _ = &t;
    }

    #[test]
    fn cas_child_routes_by_key() {
        // Exercised indirectly: inserting a smaller key then a larger key
        // under the same internal node flips which child field the ichild
        // CAS targets. The structural check verifies placement.
        let t: PnbBst<i64, i64> = PnbBst::new();
        t.insert(100, 0);
        t.insert(50, 0); // left of 100's internal
        t.insert(150, 0); // right side
        t.insert(75, 0);
        t.insert(125, 0);
        assert_eq!(t.check_invariants(), 5);
        let guard = &epoch::pin();
        let seq = t.phase();
        for k in [50, 75, 100, 125, 150] {
            let (_, _, l) = t.search(&k, seq, guard);
            let leaf = unsafe { l.deref() };
            assert_eq!(leaf.key, crate::key::SKey::Fin(k));
        }
    }
}
