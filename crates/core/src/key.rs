//! Key type with the paper's two infinity sentinels.
//!
//! The tree of Fatourou & Ruppert is initialized (Figure 2, lines 28–31)
//! with a root `Internal` node whose key is `∞₂` and two sentinel leaves
//! with keys `∞₁` and `∞₂`, where every finite key is smaller than `∞₁`
//! and `∞₁ < ∞₂`. [`SKey`] encodes exactly that ordering: the derived
//! `Ord` ranks `Fin(_) < Inf1 < Inf2` because of variant order.

use std::cmp::Ordering;

/// A key extended with the paper's `∞₁` / `∞₂` sentinels.
///
/// Only `Fin` keys are ever visible through the public API; the sentinels
/// exist so the tree is always *full* (every internal node has two
/// children) and a search for any finite key terminates at a leaf.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SKey<K> {
    /// A finite application key.
    Fin(K),
    /// The paper's `∞₁`: greater than every finite key.
    Inf1,
    /// The paper's `∞₂`: greater than everything, including `∞₁`.
    Inf2,
}

impl<K> SKey<K> {
    /// Whether this is a finite (application-visible) key.
    #[inline]
    pub fn is_finite(&self) -> bool {
        matches!(self, SKey::Fin(_))
    }

    /// Borrow the finite key, if any.
    #[inline]
    pub fn as_finite(&self) -> Option<&K> {
        match self {
            SKey::Fin(k) => Some(k),
            _ => None,
        }
    }
}

impl<K: Ord> SKey<K> {
    /// Compare a finite query key against this (possibly infinite) key.
    ///
    /// This is the `k < v.key` comparison used by `Search`,
    /// `ValidateLeaf` and `CAS-Child` in the paper: every finite key is
    /// smaller than both sentinels.
    ///
    /// `inline(always)`, as for the two derived predicates below: these
    /// are the most-called functions in the crate (once per level per
    /// search step), and the sentinel match must fuse into the caller's
    /// descent loop rather than become a call per comparison.
    #[inline(always)]
    pub fn cmp_fin(&self, k: &K) -> Ordering {
        match self {
            SKey::Fin(me) => me.cmp(k),
            // Sentinels are greater than any finite key.
            SKey::Inf1 | SKey::Inf2 => Ordering::Greater,
        }
    }

    /// `k < self` for a finite query key `k` (the search descent test).
    #[inline(always)]
    pub fn fin_lt(&self, k: &K) -> bool {
        self.cmp_fin(k) == Ordering::Greater
    }

    /// `k == self` for a finite query key `k`.
    #[inline(always)]
    pub fn fin_eq(&self, k: &K) -> bool {
        self.cmp_fin(k) == Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_ordering() {
        // ∞₁ is larger than every finite key, ∞₂ larger still.
        assert!(SKey::Fin(i64::MAX) < SKey::Inf1::<i64>);
        assert!(SKey::Inf1::<i64> < SKey::Inf2::<i64>);
        assert!(SKey::Fin(0) < SKey::Fin(1));
        assert!(SKey::Fin(i64::MIN) < SKey::Inf2::<i64>);
    }

    #[test]
    fn cmp_fin_against_sentinels() {
        assert_eq!(SKey::Inf1::<u32>.cmp_fin(&u32::MAX), Ordering::Greater);
        assert_eq!(SKey::Inf2::<u32>.cmp_fin(&0), Ordering::Greater);
        assert_eq!(SKey::Fin(5u32).cmp_fin(&5), Ordering::Equal);
        assert_eq!(SKey::Fin(4u32).cmp_fin(&5), Ordering::Less);
        assert_eq!(SKey::Fin(6u32).cmp_fin(&5), Ordering::Greater);
    }

    #[test]
    fn fin_lt_matches_search_semantics() {
        // `fin_lt(k)` answers "does the search for k go left at a node
        // with this key", i.e. k < key.
        assert!(SKey::Fin(10u8).fin_lt(&9));
        assert!(!SKey::Fin(10u8).fin_lt(&10)); // equal goes right
        assert!(!SKey::Fin(10u8).fin_lt(&11));
        assert!(SKey::Inf1::<u8>.fin_lt(&255));
        assert!(SKey::Inf2::<u8>.fin_lt(&255));
    }

    #[test]
    fn finite_accessors() {
        assert!(SKey::Fin(1).is_finite());
        assert!(!SKey::Inf1::<i32>.is_finite());
        assert!(!SKey::Inf2::<i32>.is_finite());
        assert_eq!(SKey::Fin(7).as_finite(), Some(&7));
        assert_eq!(SKey::Inf1::<i32>.as_finite(), None);
    }

    #[test]
    fn derived_ord_is_total_and_consistent_with_cmp_fin() {
        // The derived Ord on SKey must agree with cmp_fin wherever both
        // are defined: for finite x and any key s, x < s ⟺ s.cmp_fin(&x)
        // is Greater. Probe the whole cross product of a small domain.
        let keys = [
            SKey::Fin(i64::MIN),
            SKey::Fin(-1),
            SKey::Fin(0),
            SKey::Fin(1),
            SKey::Fin(i64::MAX),
            SKey::Inf1,
            SKey::Inf2,
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a < b, i < j, "variant order must drive Ord: {a:?} vs {b:?}");
                assert_eq!(a == b, i == j);
                if let SKey::Fin(x) = b {
                    assert_eq!(
                        a.cmp_fin(x),
                        a.cmp(b),
                        "cmp_fin must agree with Ord on finite probes"
                    );
                    assert_eq!(a.fin_lt(x), *a > *b, "fin_lt is `k < self`");
                    assert_eq!(a.fin_eq(x), a == b);
                }
            }
        }
    }

    #[test]
    fn sentinels_never_equal_finite_keys() {
        // Boundary semantics: fin_eq must be false for both sentinels on
        // every probe, including the extremes of the key domain.
        for probe in [u64::MIN, 1, u64::MAX] {
            assert!(!SKey::Inf1::<u64>.fin_eq(&probe));
            assert!(!SKey::Inf2::<u64>.fin_eq(&probe));
            assert_eq!(SKey::Inf1::<u64>.cmp_fin(&probe), Ordering::Greater);
            assert_eq!(SKey::Inf2::<u64>.cmp_fin(&probe), Ordering::Greater);
        }
    }

    #[test]
    fn max_picks_the_internal_key_like_the_paper() {
        // Inserts key the fresh internal node by max(new, old): check the
        // cases the tree relies on, including a sentinel-keyed leaf.
        assert_eq!(std::cmp::max(SKey::Fin(3u32), SKey::Fin(9)), SKey::Fin(9));
        assert_eq!(std::cmp::max(SKey::Fin(u32::MAX), SKey::Inf1), SKey::Inf1);
        assert_eq!(std::cmp::max(SKey::Inf1::<u32>, SKey::Inf2), SKey::Inf2);
    }

    #[test]
    fn non_copy_key_types_work() {
        // K is only required to be Ord + Clone; exercise with String.
        let a = SKey::Fin("apple".to_string());
        let b = SKey::Fin("banana".to_string());
        assert!(a < b);
        assert!(b.fin_lt(&"apricot".to_string()));
        assert!(!a.fin_lt(&"apple".to_string())); // equal goes right
        assert!(SKey::Inf1::<String>.fin_lt(&"zzz".to_string()));
        assert_eq!(a.as_finite().map(String::as_str), Some("apple"));
    }
}
