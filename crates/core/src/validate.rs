//! `ValidateLink` and `ValidateLeaf` (paper Figure 3, lines 49–68).
//!
//! Validation serves two purposes:
//!
//! 1. It guarantees that successful updates are applied to the *latest*
//!    version of the tree (§5.1): the leaf the search arrived at (which
//!    was found by walking version-`seq` children) must still be the
//!    *current* child of its parent, and the parent the current child of
//!    the grandparent.
//! 2. It implements the lightweight helping policy: an operation helps
//!    only updates pending on the parent / grandparent of the leaf it
//!    arrived at.
//!
//! The returned update words double as the expected old values for the
//! freeze CAS steps of `Execute` — reading them *here* and CASing on them
//! *later* is what makes freezing behave like a lock acquired at
//! validation time (paper Lemma 24).

use crossbeam_epoch::{Guard, Shared};

use crate::info::{state, UpdateWord};
use crate::node::Node;
use crate::tree::PnbBst;

/// `(gpupdate, pupdate)` as validated by `ValidateLeaf`; `gpupdate` is
/// `None` iff `p == Root`.
pub(crate) type ValidatedWords<K, V> = (Option<UpdateWord<K, V>>, UpdateWord<K, V>);

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Paper `ValidateLink(parent, child, left)` (lines 49–59): `parent`
    /// must not be frozen, and `child` must be its current `left`/`right`
    /// child. On success returns the parent's update word; on failure
    /// returns `None` (after helping a frozen parent).
    pub(crate) fn validate_link(
        &self,
        parent: &Node<K, V>,
        child: Shared<'_, Node<K, V>>,
        left: bool,
        guard: &Guard,
    ) -> Option<UpdateWord<K, V>> {
        let up = parent.load_update(guard); // line 52
        if self.frozen(up) {
            // lines 53–55: help the operation in progress, then fail.
            // `frozen` ⇒ the info is not the Dummy (its state is Abort).
            self.stats.helps();
            self.help(up.info, guard);
            return None;
        }
        if parent.load_child(left, guard) != child {
            return None; // line 57
        }
        Some(up) // line 58
    }

    /// Paper `ValidateLeaf(gp, p, l, k)` (lines 60–68). Returns
    /// `(gpupdate, pupdate)` on success; `gpupdate` is `None` iff
    /// `p == Root` (in which case `gp` may be null and is not touched).
    pub(crate) fn validate_leaf(
        &self,
        gp: Shared<'_, Node<K, V>>,
        p: &Node<K, V>,
        l: Shared<'_, Node<K, V>>,
        k: &K,
        guard: &Guard,
    ) -> Option<ValidatedWords<K, V>> {
        // line 64: validate the p → l link. `k < p.key` selects the side.
        let pupdate = self.validate_link(p, l, p.key.fin_lt(k), guard)?;
        let p_is_root = std::ptr::eq(p as *const _, self.root);
        let gpupdate = if !p_is_root {
            // line 65: validate the gp → p link.
            debug_assert!(!gp.is_null(), "gp must be non-null when p != Root");
            // SAFETY: search returned gp under the same pinned guard.
            let gp_ref = unsafe { gp.deref() };
            let p_shared = Shared::from(p as *const Node<K, V>);
            Some(self.validate_link(gp_ref, p_shared, gp_ref.key.fin_lt(k), guard)?)
        } else {
            None
        };
        // line 66: re-read both update fields; they must not have changed
        // since the link validations (this pins down the linearization
        // point of read-only outcomes, paper Lemma 41).
        if p.load_update(guard) != pupdate {
            return None;
        }
        if let Some(gpu) = gpupdate {
            let gp_ref = unsafe { gp.deref() };
            if gp_ref.load_update(guard) != gpu {
                return None;
            }
        }
        Some((gpupdate, pupdate))
    }

    /// Paper `Frozen(up)` (lines 89–91): is the node whose update word is
    /// `up` currently frozen? Flagged nodes are frozen while their
    /// operation is undecided or trying; marked nodes additionally stay
    /// frozen forever once the operation commits (marking is permanent,
    /// Lemma 23).
    pub(crate) fn frozen(&self, up: UpdateWord<K, V>) -> bool {
        // SAFETY: `up.info` was read from a reachable node's update field
        // under the caller's guard; Info objects are retired only via the
        // epoch collector, so the reference is valid while pinned.
        // Acquire: pairs with the AcqRel state transitions, so a thread
        // that observes a decision (Commit/Abort) also observes the
        // child CAS / cleanup ordered before it. Staleness here is
        // benign: a conservatively-frozen verdict only causes a retry,
        // and a stale not-frozen verdict is caught by the freeze CAS's
        // expected-value check.
        let st = unsafe { (*up.info).state.load(std::sync::atomic::Ordering::Acquire) };
        match up.tag {
            crate::info::FreezeTag::Flag => st == state::UNDECIDED || st == state::TRY,
            crate::info::FreezeTag::Mark => st != state::ABORT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::{FreezeTag, Info};
    use crossbeam_epoch as epoch;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn frozen_truth_table() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        let info = Info::<i32, i32>::dummy(); // reuse as scratch Info
        let ptr: *const Info<i32, i32> = &info;
        let cases = [
            (FreezeTag::Flag, state::UNDECIDED, true),
            (FreezeTag::Flag, state::TRY, true),
            (FreezeTag::Flag, state::COMMIT, false),
            (FreezeTag::Flag, state::ABORT, false),
            (FreezeTag::Mark, state::UNDECIDED, true),
            (FreezeTag::Mark, state::TRY, true),
            (FreezeTag::Mark, state::COMMIT, true), // permanent mark
            (FreezeTag::Mark, state::ABORT, false),
        ];
        for (tag, st, expect) in cases {
            info.state.store(st, Relaxed);
            let w = UpdateWord::new(tag, ptr);
            assert_eq!(t.frozen(w), expect, "tag={tag:?} state={st}");
        }
    }

    #[test]
    fn validate_leaf_succeeds_on_quiescent_tree() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        t.insert(10, 1);
        t.insert(20, 2);
        let guard = &epoch::pin();
        let (gp, p, l) = t.search(&10, t.phase(), guard);
        let p_ref = unsafe { p.deref() };
        let res = t.validate_leaf(gp, p_ref, l, &10, guard);
        assert!(res.is_some());
        let (gpu, _pu) = res.unwrap();
        // 10's parent is not the root here, so gpupdate must be present.
        assert_eq!(gpu.is_some(), !std::ptr::eq(p.as_raw(), t.root));
    }

    #[test]
    fn validate_link_rejects_stale_child() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        t.insert(10, 1);
        let guard = &epoch::pin();
        // Take the current leaf for key 10, then change the tree so the
        // link is stale.
        let (_, p, l) = t.search(&10, t.phase(), guard);
        let p_ref = unsafe { p.deref() };
        let left = p_ref.key.fin_lt(&10);
        assert!(t.validate_link(p_ref, l, left, guard).is_some());
        // Inserting 5 replaces the leaf under p (or deeper): the old l
        // can no longer be p's current child on that side.
        t.insert(5, 5);
        assert!(t.validate_link(p_ref, l, left, guard).is_none());
    }

    #[test]
    fn invariant_checker_accepts_valid_and_rejects_corrupted() {
        let t: PnbBst<i32, i32> = PnbBst::new();
        for k in [10, 5, 20, 1, 7] {
            assert!(t.insert(k, k));
        }
        // A valid tree passes and reports the key count.
        assert_eq!(t.check_invariants(), 5);

        // Corrupt the structure: swap the root's children so the finite
        // subtree lands on the ∞-ordered right side. The checker must
        // reject (panic on) the broken BST ordering.
        let guard = &epoch::pin();
        // SAFETY: single-threaded test; the root outlives the guard.
        let root = unsafe { &*t.root };
        let l = root.child_word(true).load(Relaxed, guard);
        let r = root.child_word(false).load(Relaxed, guard);
        root.child_word(true).store(r, Relaxed);
        root.child_word(false).store(l, Relaxed);
        let verdict =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.check_invariants()));
        assert!(verdict.is_err(), "corrupted tree must be rejected");
        // Restore the links so teardown walks a sane tree.
        root.child_word(true).store(l, Relaxed);
        root.child_word(false).store(r, Relaxed);
        assert_eq!(t.check_invariants(), 5, "restored tree is valid again");
    }

    #[cfg(feature = "testing-internals")]
    #[test]
    fn validate_leaf_fails_on_frozen_parent() {
        use crate::testing::PauseOutcome;
        let t: PnbBst<i32, i32> = PnbBst::new();
        t.insert(10, 1);
        t.insert(20, 2);
        // Suspend an insert right after its first freeze CAS: the parent
        // of the target leaf is now flagged (frozen, Undecided).
        let op = match t.insert_paused(15, 15) {
            PauseOutcome::Paused(p) => p,
            PauseOutcome::Completed(_) => panic!("fresh key must pause"),
        };
        let guard = &epoch::pin();
        let (gp, p, l) = t.search(&15, t.phase(), guard);
        let p_ref = unsafe { p.deref() };
        // Validation on the frozen neighbourhood must fail — and, per
        // lines 53–55, help the pending operation to completion first.
        assert!(
            t.validate_leaf(gp, p_ref, l, &15, guard).is_none(),
            "frozen parent must fail validation"
        );
        assert!(op.resume(), "the helping validation committed the insert");
        assert_eq!(t.get(&15), Some(15));
        assert_eq!(t.check_invariants(), 3);
    }
}
