//! Flat-combining fallback for contended single-key upserts
//! (DESIGN.md §11.3).
//!
//! Under heavy contention on one leaf, N threads CAS-fight: each failed
//! freeze CAS costs a full re-descent and another round of coherence
//! traffic on the same cache lines. Past a consecutive-failure gate
//! ([`COMBINE_GATE`]), an upsert *publishes* itself on a small per-tree
//! slot array instead; one thread (whoever wins the combiner lock)
//! drains all published records for the same key in a **single**
//! freeze-validate-CAS cycle, installing the last record's value and
//! distributing displaced values along the chain — N updates, one
//! Execute.
//!
//! # Protocol
//!
//! Record states: `PUBLISHED → CLAIMED → DONE` (combiner path) or
//! `PUBLISHED → CANCELLED` (publisher gives up). The two `PUBLISHED`
//! exits race through one CAS each, so a record is either combined
//! exactly once or cancelled exactly once — never both, never neither.
//!
//! Proof obligations (argued in DESIGN.md §11.3):
//!
//! * **No lost updates**: a `DONE` record's value was installed by the
//!   fused Execute (last writer) or displaced into a successor record's
//!   result; a `CANCELLED` record is re-run by its own thread through
//!   the ordinary CAS path. The displaced-value chain of the fused
//!   group preserves upsert's return-value semantics (every committed
//!   write is displaced exactly once, except the final survivor).
//! * **No wedging**: a publisher waiting on a `PUBLISHED` record
//!   cancels after a bounded wait and falls back to the singleton path,
//!   so a combiner stalled *before claiming* (the `combine::drain`
//!   failpoint) blocks nobody. Once `CLAIMED`, the record's completion
//!   rides the lock-free tree protocol; the claim-to-done window
//!   contains no waiting and no failpoints.
//! * **Memory safety**: records are arena-allocated and retired through
//!   the epoch collector *after* the publisher unlinks its slot, so a
//!   combiner that loaded the slot pointer under its guard can always
//!   dereference it, even against a concurrent cancel.

use crossbeam_epoch::{Guard, Shared};
use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32};

use crate::arena;
use crate::tree::PnbBst;

/// Consecutive failed upsert attempts before publishing to the
/// combiner. Low enough to engage quickly on a genuinely hot leaf, high
/// enough that sporadic losses under light contention stay on the
/// (cheaper) direct CAS path.
pub(crate) const COMBINE_GATE: u32 = 3;

/// Publication slots per tree. Contention past ~16 simultaneous
/// publishers just overflows to the direct CAS path (publishing is an
/// optimization, never required for progress).
const SLOTS: usize = 16;

/// Bounded wait (spin-then-yield rounds) on a still-`PUBLISHED` record
/// before cancelling it.
const WAIT_ROUNDS: u32 = 256;

mod state {
    /// Visible to the combiner; cancellable by the publisher.
    pub const PUBLISHED: u32 = 0;
    /// Owned by a combiner; will be applied and become `DONE`.
    pub const CLAIMED: u32 = 1;
    /// Applied; `result` is valid and the publisher may consume it.
    pub const DONE: u32 = 2;
    /// Withdrawn by the publisher; the combiner must skip it.
    pub const CANCELLED: u32 = 3;
}

/// One published upsert: key/value snapshot plus the result slot the
/// combiner fills before the `DONE` transition.
pub(crate) struct CombineRecord<K, V> {
    key: K,
    value: V,
    state: AtomicU32,
    /// Written by the combiner (while `CLAIMED`), read by the publisher
    /// (after observing `DONE` with Acquire): the Release/Acquire pair
    /// on `state` orders the plain accesses.
    result: UnsafeCell<Option<V>>,
}

/// The per-tree publication list: a fixed slot array plus the combiner
/// lock. Zero-contention trees pay one cache line for the lock and
/// never touch the slots.
pub(crate) struct PubList<K, V> {
    slots: [CachePadded<AtomicPtr<CombineRecord<K, V>>>; SLOTS],
    lock: CachePadded<AtomicBool>,
}

// SAFETY: records are shared across threads strictly through the state
// machine above; the UnsafeCell is single-writer (the claiming
// combiner) and single-reader (the publisher, after DONE).
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for PubList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Send for PubList<K, V> {}

impl<K, V> PubList<K, V> {
    pub(crate) fn new() -> Self {
        PubList {
            slots: [const { CachePadded::new(AtomicPtr::new(std::ptr::null_mut())) }; SLOTS],
            lock: CachePadded::new(AtomicBool::new(false)),
        }
    }
}

impl<K, V> Drop for PubList<K, V> {
    fn drop(&mut self) {
        // Publishers always unlink their own slot before returning, so a
        // quiescent tree (`&mut self` in PnbBst::drop) has no records.
        debug_assert!(
            self.slots.iter().all(|s| s.load(Relaxed).is_null()),
            "publication list must be empty at teardown"
        );
    }
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Route one contended upsert through the publication list. Returns
    /// `Some(displaced)` if the update was applied (by us or a fellow
    /// combiner), `None` if it was withdrawn (no slot free, or the
    /// resident combiner stalled) — the caller then retries the direct
    /// CAS path. Never blocks unboundedly on a `PUBLISHED` record.
    pub(crate) fn try_combine(&self, key: &K, value: &V, guard: &Guard) -> Option<Option<V>> {
        let rec: *mut CombineRecord<K, V> = arena::alloc(CombineRecord {
            key: key.clone(),
            value: value.clone(),
            state: AtomicU32::new(state::PUBLISHED),
            result: UnsafeCell::new(None),
        });
        // Publish into any free slot (Release: the CAS publishes the
        // record's fields to combiners that Acquire-load the slot).
        let Some(slot) = self.combine.slots.iter().find(|s| {
            s.load(Relaxed).is_null()
                && s.compare_exchange(std::ptr::null_mut(), rec, Release, Relaxed)
                    .is_ok()
        }) else {
            // All slots busy: withdraw silently (never shared).
            arena::free_now(rec);
            return None;
        };
        // SAFETY: `rec` stays alive until we defer-retire it below; the
        // state machine governs all cross-thread access.
        let rec_ref = unsafe { &*rec };
        loop {
            if rec_ref.state.load(Acquire) == state::DONE {
                return Some(self.consume_record(slot, rec, guard));
            }
            // Try to become the combiner ourselves.
            if self
                .combine
                .lock
                .compare_exchange(false, true, Acquire, Relaxed)
                .is_ok()
            {
                crate::failpoint::hit("combine::drain");
                self.run_combiner(guard);
                self.combine.lock.store(false, Release);
                debug_assert_eq!(
                    rec_ref.state.load(Acquire),
                    state::DONE,
                    "our own drain pass must have applied our record"
                );
                return Some(self.consume_record(slot, rec, guard));
            }
            // A resident combiner exists: wait a bounded while for it to
            // take (or finish) our record.
            let mut round = 0u32;
            while round < WAIT_ROUNDS {
                match rec_ref.state.load(Acquire) {
                    state::DONE => return Some(self.consume_record(slot, rec, guard)),
                    // Claimed: completion now rides the lock-free tree
                    // protocol — reset the patience clock and keep
                    // waiting (cancel is no longer possible).
                    state::CLAIMED => round = 0,
                    _ => {}
                }
                if round < 32 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                round += 1;
            }
            // Patience exhausted with the record still PUBLISHED: the
            // resident combiner is stalled (or saturated). Withdraw and
            // let the caller fall back to the direct CAS path.
            if rec_ref
                .state
                .compare_exchange(state::PUBLISHED, state::CANCELLED, AcqRel, Acquire)
                .is_ok()
            {
                slot.store(std::ptr::null_mut(), Release);
                // SAFETY: unlinked; stragglers that loaded the slot
                // pointer are pinned, hence the deferred retire.
                unsafe {
                    guard.defer_recycle(
                        Shared::from(rec as *const CombineRecord<K, V>),
                        arena::recycle_raw::<CombineRecord<K, V>>,
                    )
                };
                return None;
            }
            // Lost the cancel race: a combiner claimed it — loop back
            // and wait for DONE.
        }
    }

    /// Take the displaced value out of a `DONE` record, unlink the slot
    /// and retire the record.
    fn consume_record(
        &self,
        slot: &AtomicPtr<CombineRecord<K, V>>,
        rec: *mut CombineRecord<K, V>,
        guard: &Guard,
    ) -> Option<V> {
        // SAFETY: DONE (observed with Acquire) means the combiner wrote
        // `result` and will never touch the record again; we are the
        // only publisher.
        let displaced = unsafe { (*(*rec).result.get()).take() };
        slot.store(std::ptr::null_mut(), Release);
        // SAFETY: unlinked; combiners that still hold the pointer are
        // pinned, hence the deferred retire.
        unsafe {
            guard.defer_recycle(
                Shared::from(rec as *const CombineRecord<K, V>),
                arena::recycle_raw::<CombineRecord<K, V>>,
            )
        };
        displaced
    }

    /// One drain pass (combiner lock held): claim every published
    /// record, group by key, and apply each group as a single fused
    /// upsert, chaining displaced values in slot order.
    fn run_combiner(&self, guard: &Guard) {
        let mut claimed: Vec<*const CombineRecord<K, V>> = Vec::with_capacity(SLOTS);
        for slot in &self.combine.slots {
            // Acquire pairs with the publishing CAS: the record's
            // key/value are visible before we claim it.
            let r = slot.load(Acquire);
            if r.is_null() {
                continue;
            }
            // SAFETY: loaded under our guard; even if the publisher
            // cancels and unlinks concurrently, retirement is deferred.
            let rec = unsafe { &*r };
            if rec
                .state
                .compare_exchange(state::PUBLISHED, state::CLAIMED, AcqRel, Relaxed)
                .is_ok()
            {
                claimed.push(r);
            }
        }
        if claimed.is_empty() {
            return;
        }
        // Group records for the same key (stable: slot order within a
        // group fixes the chain order — any serialization of concurrent
        // upserts is linearizable).
        claimed.sort_by(|&a, &b| unsafe { (*a).key.cmp(&(*b).key) });
        let mut i = 0;
        while i < claimed.len() {
            let rec0 = unsafe { &*claimed[i] };
            let mut j = i + 1;
            while j < claimed.len() && unsafe { (*claimed[j]).key == rec0.key } {
                j += 1;
            }
            let group = &claimed[i..j];
            let last = unsafe { &*group[group.len() - 1] };
            // The fused Execute: ONE freeze-validate-CAS cycle installs
            // the last queued value (ungated driver — a combiner must
            // not recurse into combining).
            let displaced0 = self.upsert_plain_in(&last.key, &last.value, guard);
            // Chain the displaced values: record 0 gets the leaf's prior
            // value; record t gets record t-1's write.
            let mut carry = displaced0;
            for &r in group {
                let rec = unsafe { &*r };
                // SAFETY: CLAIMED records are ours alone until DONE.
                unsafe { *rec.result.get() = carry };
                carry = Some(rec.value.clone());
                // Release publishes `result` to the publisher's Acquire.
                rec.state.store(state::DONE, Release);
            }
            self.stats.combined_ops_n(group.len() as u64);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::PnbBst;

    #[test]
    fn try_combine_applies_single_record() {
        // Uncontended: the caller becomes its own combiner, group of 1.
        let t: PnbBst<u32, u32> = PnbBst::new();
        t.insert(5, 50);
        let guard = &crossbeam_epoch::pin();
        assert_eq!(t.try_combine(&5, &51, guard), Some(Some(50)));
        assert_eq!(t.try_combine(&6, &60, guard), Some(None)); // insert shape
        assert_eq!(t.get(&5), Some(51));
        assert_eq!(t.get(&6), Some(60));
        assert_eq!(t.check_invariants(), 2);
    }

    #[test]
    fn combined_upserts_preserve_displacement_chain() {
        // 8 threads hammer one key through try_combine directly: the
        // multiset {initial} ∪ {writes} must equal {displaced} ∪ {final}.
        use std::sync::Arc;
        let t = Arc::new(PnbBst::<u32, u64>::new());
        t.insert(1, 0);
        let per_thread = 200u64;
        let displaced: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..8u64)
                .map(|w| {
                    let t = Arc::clone(&t);
                    s.spawn(move || {
                        let guard = &crossbeam_epoch::pin();
                        let mut got = Vec::new();
                        for i in 0..per_thread {
                            let v = (w << 32) | (i + 1);
                            // Fall back to the plain driver when combining
                            // declines, exactly like the gated driver does.
                            let d = match t.try_combine(&1, &v, guard) {
                                Some(d) => d,
                                None => t.upsert_plain_in(&1, &v, guard),
                            };
                            got.push(d.expect("key stays present"));
                        }
                        got
                    })
                })
                .collect();
            hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let writes: Vec<u64> = (0..8u64)
            .flat_map(|w| (0..per_thread).map(move |i| (w << 32) | (i + 1)))
            .collect();
        let last = t.get(&1).unwrap();
        let mut lhs: Vec<u64> = std::iter::once(0).chain(writes).collect();
        let mut rhs: Vec<u64> = displaced.into_iter().chain(std::iter::once(last)).collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        assert_eq!(lhs, rhs, "every write displaced exactly once");
        assert_eq!(t.check_invariants(), 1);
    }
}
