//! Wait-free range queries: `RangeScan` / `ScanHelper` (paper Figure 4,
//! lines 129–146).
//!
//! A scan atomically fetches-and-increments the shared `Counter`; the
//! fetched value `seq` is its sequence number and the increment closes
//! phase `seq`. The scan then traverses the *version-seq* tree `T_seq`,
//! helping any in-progress update it encounters (this, together with the
//! updaters' handshake, is what makes the scan linearizable at the end of
//! phase `seq` — §4.1).
//!
//! Wait-freedom (paper Theorem 47): `T_seq` contains only nodes created
//! by operations that read `Counter ≤ seq`, and after the increment every
//! *new* update attempt gets a larger sequence number — so the subgraph
//! the scan can possibly traverse is finite and acyclic, regardless of
//! how fast concurrent updates run.
//!
//! The traversal is iterative (explicit stack): the tree is not balanced,
//! so recursion depth could reach O(n).

use crossbeam_epoch::{self as epoch, Guard};
use std::ops::Bound;
use std::sync::atomic::Ordering::{Acquire, SeqCst};

use crate::arena::ScanStack;

use crate::info::state;
use crate::key::SKey;
use crate::node::Node;
use crate::tree::PnbBst;

/// Descent/filter logic for generalized range bounds.
///
/// The paper scans closed intervals `[a, b]` and prunes with
/// `a > key ⇒ right only`, `b < key ⇒ left only`. These helpers implement
/// the same pruning for arbitrary `Bound`s, slightly tightened (at
/// `a == key` the left subtree, whose keys are strictly below `key`,
/// cannot contain a match and is skipped). Pruning may only ever be
/// *conservative*: the per-leaf filter [`bounds_contain`] makes the final
/// decision.
#[inline]
pub(crate) fn skip_left<K: Ord>(lo: &Bound<&K>, key: &SKey<K>) -> bool {
    match lo {
        Bound::Unbounded => false,
        // Left subtree keys are < key; a match needs x >= a (or > a):
        // impossible iff a >= key.
        Bound::Included(a) | Bound::Excluded(a) => !key.fin_lt(a), // a >= key
    }
}

#[inline]
pub(crate) fn skip_right<K: Ord>(hi: &Bound<&K>, key: &SKey<K>) -> bool {
    match hi {
        Bound::Unbounded => false,
        // Right subtree keys are >= key; a match needs x <= b: impossible
        // iff b < key.
        Bound::Included(b) => key.fin_lt(b),
        // ... or x < b: impossible iff b <= key.
        Bound::Excluded(b) => key.cmp_fin(b) != std::cmp::Ordering::Less,
    }
}

/// Whether a finite leaf key lies within the requested bounds.
#[inline]
pub(crate) fn bounds_contain<K: Ord>(lo: &Bound<&K>, hi: &Bound<&K>, k: &K) -> bool {
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(a) => k >= a,
        Bound::Excluded(a) => k > a,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => k <= b,
        Bound::Excluded(b) => k < b,
    };
    lo_ok && hi_ok
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Wait-free range query over the closed interval `[lo, hi]` (the
    /// paper's `RangeScan(a, b)`). Returns the matching key/value pairs
    /// in ascending key order, as of the scan's linearization point (the
    /// end of its phase).
    ///
    /// Compat wrapper: materializes the full result `Vec` and pins an
    /// epoch guard per call. New code should prefer the lazy
    /// [`Handle::range`](crate::Handle::range) (`tree.pin().range(a..=b)`),
    /// which streams matches without allocating the result set.
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Included(lo), Bound::Included(hi), |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Wait-free range query with arbitrary bounds, streaming matches to
    /// a visitor in ascending key order. This is the paper's remark that
    /// a scan "may print keys (or perform some processing of the nodes)"
    /// without materializing a result set.
    pub fn range_scan_with<F: FnMut(&K, &V)>(&self, lo: Bound<&K>, hi: Bound<&K>, mut f: F) {
        let guard = &epoch::pin();
        self.stats.scans();
        // Lines 130–131: seq := Counter; Inc(Counter) — fused into one
        // atomic fetch_add (unique seqs are a legal tie-break, §5.2.5).
        // sc-ok: scan-handshake total order (§4.1) — the scanner half of
        // the store-buffering pair; see `Node::load_update_scan`.
        let seq = self.counter.fetch_add(1, SeqCst); // sc-ok: phase close
        self.scan_tree(seq, lo, hi, &mut f, guard);
    }

    /// Count keys in `[lo, hi]` without cloning (wait-free).
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        let mut n = 0usize;
        self.range_scan_with(Bound::Included(lo), Bound::Included(hi), |_, _| n += 1);
        n
    }

    /// Snapshot the entire contents in ascending key order (wait-free).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |k, v| {
            out.push((k.clone(), v.clone()))
        });
        out
    }

    /// Number of keys currently in the set, observed atomically
    /// (wait-free, O(n) — this is a linearizable scan, not a counter).
    pub fn len(&self) -> usize {
        let mut n = 0usize;
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |_, _| n += 1);
        n
    }

    /// Whether the set is empty (linearizable; see [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The iterative `ScanHelper` (paper lines 134–146) over `T_seq`,
    /// shared by scans and [`Snapshot`](crate::snapshot::Snapshot) reads.
    pub(crate) fn scan_tree<F: FnMut(&K, &V)>(
        &self,
        seq: u64,
        lo: Bound<&K>,
        hi: Bound<&K>,
        f: &mut F,
        guard: &Guard,
    ) {
        self.scan_tree_ctl(
            seq,
            lo,
            hi,
            false,
            &mut |k, v| {
                f(k, v);
                std::ops::ControlFlow::Continue(())
            },
            guard,
        );
    }

    /// Generalized `ScanHelper`: optionally descending
    /// (`desc == true` visits leaves in *descending* key order) and with
    /// early termination (`f` returns `ControlFlow::Break` to stop).
    ///
    /// Early exit keeps the wait-freedom bound (it only shortens the
    /// traversal); order inversion just flips which child is pushed
    /// first. Used by the ordered queries
    /// ([`successor`](Self::successor), [`predecessor`](Self::predecessor),
    /// [`first_key_value`](Self::first_key_value),
    /// [`last_key_value`](Self::last_key_value)).
    pub(crate) fn scan_tree_ctl<F>(
        &self,
        seq: u64,
        lo: Bound<&K>,
        hi: Bound<&K>,
        desc: bool,
        f: &mut F,
        guard: &Guard,
    ) where
        F: FnMut(&K, &V) -> std::ops::ControlFlow<()>,
    {
        // Pooled descent stack: a warm scan performs no global
        // allocation (see `arena::ScanStack`).
        let mut stack: ScanStack<Node<K, V>> = ScanStack::new();
        stack.push(self.root);
        while let Some(n) = stack.pop() {
            // SAFETY: every node on the stack came from the root or from
            // `read_child` under our pinned guard.
            let node = unsafe { &*n };
            if node.leaf {
                // Line 137: {node.key} ∩ [a, b] — sentinels never match.
                if let SKey::Fin(k) = &node.key {
                    if bounds_contain(&lo, &hi, k)
                        && f(k, node.value.as_ref().expect("finite leaf has a value")).is_break()
                    {
                        return;
                    }
                }
                continue;
            }
            // Lines 139–140: help whatever update is in progress here
            // before descending, so the scan observes every update of its
            // own or earlier phases. The SeqCst load is the scanner half
            // of the handshake pair (`load_update_scan`).
            let w = node.load_update_scan(guard);
            // SAFETY: update words point at live Info objects while
            // pinned. Acquire: pairs with the AcqRel state transitions.
            let st = unsafe { (*w.info).state.load(Acquire) };
            if st == state::UNDECIDED || st == state::TRY {
                self.stats.scan_helps();
                self.help(w.info, guard);
            }
            // Lines 141–144: descend into the version-seq children that
            // may intersect the range. The child pushed *last* pops
            // first, so for ascending order push right first.
            let go_left = !skip_left(&lo, &node.key);
            let go_right = !skip_right(&hi, &node.key);
            if desc {
                if go_left {
                    stack.push(self.read_child(node, true, seq, guard).as_raw());
                }
                if go_right {
                    stack.push(self.read_child(node, false, seq, guard).as_raw());
                }
            } else {
                if go_right {
                    stack.push(self.read_child(node, false, seq, guard).as_raw());
                }
                if go_left {
                    stack.push(self.read_child(node, true, seq, guard).as_raw());
                }
            }
        }
    }

    /// First (smallest-key) entry within the given bounds, ascending —
    /// the workhorse behind the ordered queries. Wait-free; advances the
    /// phase like any scan.
    fn first_in_bounds(&self, lo: Bound<&K>, hi: Bound<&K>, desc: bool) -> Option<(K, V)> {
        let guard = &epoch::pin();
        self.stats.scans();
        // sc-ok: phase close — same pair as `range_scan_with`.
        let seq = self.counter.fetch_add(1, SeqCst); // sc-ok: phase close
        let mut out = None;
        self.scan_tree_ctl(
            seq,
            lo,
            hi,
            desc,
            &mut |k, v| {
                out = Some((k.clone(), v.clone()));
                std::ops::ControlFlow::Break(())
            },
            guard,
        );
        out
    }

    /// The smallest key and its value (wait-free, linearizable).
    pub fn first_key_value(&self) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Unbounded, false)
    }

    /// The largest key and its value (wait-free, linearizable).
    pub fn last_key_value(&self) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Unbounded, true)
    }

    /// The smallest entry with key strictly greater than `key`
    /// (wait-free, linearizable).
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Excluded(key), Bound::Unbounded, false)
    }

    /// The largest entry with key strictly smaller than `key`
    /// (wait-free, linearizable).
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        self.first_in_bounds(Bound::Unbounded, Bound::Excluded(key), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> PnbBst<i64, i64> {
        let t = PnbBst::new();
        for k in [8, 3, 10, 1, 6, 14, 4, 7, 13] {
            assert!(t.insert(k, k * 100));
        }
        t
    }

    #[test]
    fn scan_returns_sorted_inclusive_range() {
        let t = populated();
        let r = t.range_scan(&3, &10);
        assert_eq!(
            r,
            vec![(3, 300), (4, 400), (6, 600), (7, 700), (8, 800), (10, 1000)]
        );
    }

    #[test]
    fn scan_full_and_empty_ranges() {
        let t = populated();
        let all: Vec<i64> = t.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(all, vec![1, 3, 4, 6, 7, 8, 10, 13, 14]);
        assert!(t.range_scan(&20, &30).is_empty());
        assert!(t.range_scan(&5, &5).is_empty()); // point query, absent
        assert_eq!(t.range_scan(&6, &6), vec![(6, 600)]); // present
        assert!(t.range_scan(&10, &3).is_empty()); // inverted bounds
    }

    #[test]
    fn scan_excludes_sentinels_with_unbounded_range() {
        let t: PnbBst<i64, i64> = PnbBst::new();
        assert!(t.to_vec().is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn scan_with_exclusive_bounds() {
        let t = populated();
        let mut got = Vec::new();
        t.range_scan_with(Bound::Excluded(&3), Bound::Excluded(&10), |k, _| {
            got.push(*k)
        });
        assert_eq!(got, vec![4, 6, 7, 8]);
        let mut got = Vec::new();
        t.range_scan_with(Bound::Excluded(&1), Bound::Unbounded, |k, _| got.push(*k));
        assert_eq!(got, vec![3, 4, 6, 7, 8, 10, 13, 14]);
        let mut got = Vec::new();
        t.range_scan_with(Bound::Unbounded, Bound::Excluded(&8), |k, _| got.push(*k));
        assert_eq!(got, vec![1, 3, 4, 6, 7]);
    }

    #[test]
    fn each_scan_advances_the_phase() {
        let t = populated();
        let before = t.phase();
        let _ = t.range_scan(&0, &100);
        let _ = t.scan_count(&0, &100);
        let _ = t.len();
        assert_eq!(t.phase(), before + 3);
    }

    #[test]
    fn scan_count_matches_scan_len() {
        let t = populated();
        assert_eq!(t.scan_count(&3, &10), t.range_scan(&3, &10).len());
        assert_eq!(t.scan_count(&-100, &0), 0);
    }

    #[test]
    fn scan_sees_updates_from_earlier_phases() {
        let t: PnbBst<i64, i64> = PnbBst::new();
        t.insert(1, 1);
        let _ = t.range_scan(&0, &10); // close phase 0
        t.insert(2, 2);
        t.delete(&1);
        let r = t.range_scan(&0, &10);
        assert_eq!(r, vec![(2, 2)]);
    }

    #[test]
    fn ordered_queries_match_btreemap() {
        use std::collections::BTreeMap;
        let t = populated();
        let model: BTreeMap<i64, i64> = t.to_vec().into_iter().collect();
        assert_eq!(
            t.first_key_value(),
            model.first_key_value().map(|(k, v)| (*k, *v))
        );
        assert_eq!(
            t.last_key_value(),
            model.last_key_value().map(|(k, v)| (*k, *v))
        );
        for probe in -1..=16 {
            let succ = model.range(probe + 1..).next().map(|(k, v)| (*k, *v));
            let pred = model.range(..probe).next_back().map(|(k, v)| (*k, *v));
            assert_eq!(t.successor(&probe), succ, "successor of {probe}");
            assert_eq!(t.predecessor(&probe), pred, "predecessor of {probe}");
        }
    }

    #[test]
    fn ordered_queries_on_empty_and_single() {
        let t: PnbBst<i64, i64> = PnbBst::new();
        assert_eq!(t.first_key_value(), None);
        assert_eq!(t.last_key_value(), None);
        assert_eq!(t.successor(&0), None);
        assert_eq!(t.predecessor(&0), None);
        t.insert(7, 70);
        assert_eq!(t.first_key_value(), Some((7, 70)));
        assert_eq!(t.last_key_value(), Some((7, 70)));
        assert_eq!(t.successor(&7), None);
        assert_eq!(t.successor(&6), Some((7, 70)));
        assert_eq!(t.predecessor(&7), None);
        assert_eq!(t.predecessor(&8), Some((7, 70)));
    }

    #[test]
    fn descending_scan_reverses_ascending() {
        let t = populated();
        let mut asc = Vec::new();
        let mut desc = Vec::new();
        let guard = &crossbeam_epoch::pin();
        // Relaxed: single-threaded test bump standing in for a scan.
        let seq = t.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        t.scan_tree_ctl(
            seq,
            Bound::Unbounded,
            Bound::Unbounded,
            false,
            &mut |k, _| {
                asc.push(*k);
                std::ops::ControlFlow::Continue(())
            },
            guard,
        );
        t.scan_tree_ctl(
            seq,
            Bound::Unbounded,
            Bound::Unbounded,
            true,
            &mut |k, _| {
                desc.push(*k);
                std::ops::ControlFlow::Continue(())
            },
            guard,
        );
        let mut r = desc.clone();
        r.reverse();
        assert_eq!(asc, r);
        assert!(!asc.is_empty());
    }

    #[test]
    fn early_exit_stops_traversal() {
        let t = populated();
        let mut visited = Vec::new();
        let guard = &crossbeam_epoch::pin();
        // Relaxed: single-threaded test bump standing in for a scan.
        let seq = t.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        t.scan_tree_ctl(
            seq,
            Bound::Unbounded,
            Bound::Unbounded,
            false,
            &mut |k, _| {
                visited.push(*k);
                if visited.len() == 3 {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            },
            guard,
        );
        assert_eq!(visited, vec![1, 3, 4]);
    }

    #[test]
    fn bounds_helpers_truth_table() {
        // skip_left: can the left subtree (keys < key) contain a match?
        assert!(skip_left(&Bound::Included(&5), &SKey::Fin(5)));
        assert!(skip_left(&Bound::Included(&6), &SKey::Fin(5)));
        assert!(!skip_left(&Bound::Included(&4), &SKey::Fin(5)));
        assert!(!skip_left(&Bound::Unbounded, &SKey::Fin(5)));
        assert!(!skip_left(&Bound::Included(&5), &SKey::Inf1));
        // skip_right: can the right subtree (keys >= key) contain a match?
        assert!(skip_right(&Bound::Included(&4), &SKey::Fin(5)));
        assert!(!skip_right(&Bound::Included(&5), &SKey::Fin(5)));
        assert!(skip_right(&Bound::Excluded(&5), &SKey::Fin(5)));
        assert!(!skip_right(&Bound::Excluded(&6), &SKey::Fin(5)));
        assert!(!skip_right(&Bound::Unbounded, &SKey::Fin(5)));
        // A sentinel-keyed internal node: all finite upper bounds skip it.
        assert!(skip_right(&Bound::Included(&i64::MAX), &SKey::Inf1));
        // bounds_contain composes both sides.
        assert!(bounds_contain(
            &Bound::Included(&1),
            &Bound::Included(&3),
            &2
        ));
        assert!(!bounds_contain(
            &Bound::Excluded(&2),
            &Bound::Included(&3),
            &2
        ));
        assert!(!bounds_contain(
            &Bound::Included(&1),
            &Bound::Excluded(&2),
            &2
        ));
        assert!(bounds_contain(&Bound::Unbounded, &Bound::Unbounded, &2));
    }
}
