//! Batched hot-path operations: `multi_get` / `apply_batch` over a
//! shared descent prefix (DESIGN.md §11).
//!
//! A singleton operation pays a full root-to-leaf descent. A batch
//! sorted by key walks the tree in key order, so consecutive operations
//! usually share most of their descent path; this module retains the
//! internal nodes of the previous descent on a pooled stack and resumes
//! from the deepest frame whose subtree still covers the next key.
//!
//! # Why resuming from a retained frame is safe
//!
//! Routing fields (`key`, and a node's position once linked) are
//! immutable (paper Observation 1), so a retained pointer still *routes*
//! correctly — the only hazard is that a retained node has been detached
//! from the current tree by a concurrent (or our own) update. Every
//! detachment in the PNB-BST protocol permanently *marks* the detached
//! node first (mark permanence, paper Lemma 23), and `validate_leaf`
//! fails on any frozen parent/grandparent, so an update or read resumed
//! below a detached frame can never commit: it fails validation,
//! retreats strictly above the frame it resumed from (see
//! [`PrefixStack::retreat`] for why popping just one frame is not
//! enough to guarantee progress) and retries, degenerating to the
//! singleton root descent in the worst case. Prefix reuse is therefore
//! purely a performance device — linearizability is still carried
//! entirely by the freeze-validate-CAS protocol.
//!
//! Each operation in the batch re-reads the phase counter, so a batch
//! does **not** form an atomic multi-op transaction: it linearizes as
//! the sequence of its constituent operations (duplicate keys resolve in
//! batch order thanks to the stable sort).

use crossbeam_epoch::{Guard, Shared};

use crate::arena::ScanStack;
use crate::node::Node;
use crate::search::SearchTriple;
use crate::tree::{AttemptOutcome, PnbBst};

/// One operation in an [`apply_batch`](crate::Handle::apply_batch) call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp<K, V> {
    /// Look up the key (the paper's `Find`).
    Get(K),
    /// Set-semantics insert: succeeds iff the key is absent.
    Insert(K, V),
    /// Atomic insert-or-replace, returning the displaced value.
    Upsert(K, V),
    /// Remove the key, returning its value.
    Delete(K),
}

impl<K, V> BatchOp<K, V> {
    /// The key this operation targets.
    pub fn key(&self) -> &K {
        match self {
            BatchOp::Get(k) | BatchOp::Delete(k) => k,
            BatchOp::Insert(k, _) | BatchOp::Upsert(k, _) => k,
        }
    }
}

/// Per-operation result of a batch, positionally matching the input
/// slice (results are scattered back to submission order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome<V> {
    /// Result of a [`BatchOp::Get`].
    Get(Option<V>),
    /// Result of a [`BatchOp::Insert`]: `true` iff the key was absent.
    Inserted(bool),
    /// Result of a [`BatchOp::Upsert`]: the displaced value.
    Upserted(Option<V>),
    /// Result of a [`BatchOp::Delete`]: the removed value.
    Removed(Option<V>),
}

/// Descent-sharing telemetry for batch calls: how many operations ran
/// and how many of them had to start their descent from the root. The
/// ratio is the direct measure of the prefix sharing the batch API
/// exists for (experiment E13's `ops_per_descent` column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Operations executed.
    pub ops: u64,
    /// Descents that started at the root (no reusable prefix frame).
    pub root_descents: u64,
}

impl BatchReport {
    /// Operations amortized per root descent (`ops == root_descents`
    /// means no sharing happened; higher is better).
    pub fn ops_per_descent(&self) -> f64 {
        if self.root_descents == 0 {
            0.0
        } else {
            self.ops as f64 / self.root_descents as f64
        }
    }

    /// Accumulate another report into this one.
    pub fn merge(&mut self, other: BatchReport) {
        self.ops += other.ops;
        self.root_descents += other.root_descents;
    }
}

/// Retained descent prefix: frames of `(node, hi)` pairs flattened into
/// one pooled [`ScanStack`] buffer (`node` below `hi`). `node` is an
/// internal node on the previous descent path; `hi` is its exclusive
/// upper bound — the nearest ancestor the path went *left* at (null for
/// the root frame, which is never popped). A frame covers key `k` iff
/// `k < hi.key`; bounds tighten monotonically with depth, so checking
/// the top frame suffices.
struct PrefixStack<K, V> {
    buf: ScanStack<Node<K, V>>,
    /// Frame count at the most recent resume point (recorded by
    /// [`PnbBst::descend_shared`] after its bound-popping, before the
    /// descent pushes deeper frames). [`retreat`](Self::retreat) uses it
    /// to guarantee each failed attempt resumes strictly shallower.
    resume: usize,
}

impl<K, V> PrefixStack<K, V> {
    fn new() -> Self {
        PrefixStack {
            buf: ScanStack::new(),
            resume: 0,
        }
    }

    fn frames(&self) -> usize {
        self.buf.len() / 2
    }

    /// Retreat strictly above the last resume point after a failed
    /// attempt. Popping only the top frame would not be enough: the
    /// failed descent re-pushes the frames it traverses, so from a
    /// permanently detached (marked) resume frame a pop-one policy
    /// re-descends the same dead subtree forever. Truncating to one
    /// frame *above* the resume point instead makes every retry resume
    /// strictly shallower, bottoming out at an empty stack — a fresh
    /// root descent — after at most `depth` failures.
    fn retreat(&mut self) {
        let target = self.resume.saturating_sub(1);
        while self.frames() > target {
            self.pop();
        }
    }

    fn is_empty(&self) -> bool {
        self.buf.len() == 0
    }

    #[inline]
    fn push(&mut self, node: *const Node<K, V>, hi: *const Node<K, V>) {
        self.buf.push(node);
        self.buf.push(hi);
    }

    #[inline]
    fn pop(&mut self) {
        self.buf.pop();
        self.buf.pop();
    }

    /// `(node, hi)` of the top frame. Callers check `is_empty` first.
    #[inline]
    fn top(&self) -> (*const Node<K, V>, *const Node<K, V>) {
        let hi = self.buf.peek_from_top(0).expect("non-empty prefix stack");
        let node = self.buf.peek_from_top(1).expect("frames are pairs");
        (node, hi)
    }

    /// The `node` of the frame one below the top (the resume point's
    /// parent), if any.
    #[inline]
    fn parent_of_top(&self) -> Option<*const Node<K, V>> {
        self.buf.peek_from_top(3)
    }
}

/// Consecutive failed attempts on one batch operation before falling
/// back to the gated singleton driver (which may flat-combine).
const BATCH_COMBINE_GATE: u32 = 4;

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Batched `Find` under a caller-provided guard: results in
    /// submission order.
    pub(crate) fn multi_get_in(
        &self,
        keys: &[K],
        guard: &Guard,
        report: &mut BatchReport,
    ) -> Vec<Option<V>> {
        report.ops += keys.len() as u64;
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        let mut stack: PrefixStack<K, V> = PrefixStack::new();
        for &oi in &order {
            let k = &keys[oi as usize];
            loop {
                let seq = self.read_phase();
                let (gp, p, l) = self.descend_shared(k, seq, &mut stack, report, guard);
                // SAFETY: descend_shared returns non-null p and l.
                let p_ref = unsafe { p.deref() };
                if self.validate_leaf(gp, p_ref, l, k, guard).is_some() {
                    let l_ref = unsafe { l.deref() };
                    if l_ref.key.fin_eq(k) {
                        out[oi as usize] = l_ref.value.clone();
                    }
                    break;
                }
                self.stats.validation_failures();
                stack.retreat(); // resume strictly shallower next time
            }
        }
        out
    }

    /// Batched mixed updates under a caller-provided guard: outcomes in
    /// submission order; duplicate keys resolve in batch order (stable
    /// sort).
    pub(crate) fn apply_batch_in(
        &self,
        ops: &[BatchOp<K, V>],
        guard: &Guard,
        report: &mut BatchReport,
    ) -> Vec<BatchOutcome<V>> {
        report.ops += ops.len() as u64;
        let mut order: Vec<u32> = (0..ops.len() as u32).collect();
        order.sort_by(|&a, &b| ops[a as usize].key().cmp(ops[b as usize].key()));
        let mut out: Vec<Option<BatchOutcome<V>>> = (0..ops.len()).map(|_| None).collect();
        let mut stack: PrefixStack<K, V> = PrefixStack::new();
        for &oi in &order {
            let op = &ops[oi as usize];
            out[oi as usize] = Some(self.apply_one_shared(op, &mut stack, report, guard));
        }
        out.into_iter()
            .map(|r| r.expect("every op produced an outcome"))
            .collect()
    }

    /// Drive one batch operation to completion from the shared prefix.
    fn apply_one_shared(
        &self,
        op: &BatchOp<K, V>,
        stack: &mut PrefixStack<K, V>,
        report: &mut BatchReport,
        guard: &Guard,
    ) -> BatchOutcome<V> {
        let mut failures = 0u32;
        loop {
            let k = op.key();
            let seq = self.read_phase();
            let (gp, p, l) = self.descend_shared(k, seq, stack, report, guard);
            match op {
                BatchOp::Get(k) => {
                    let p_ref = unsafe { p.deref() };
                    if self.validate_leaf(gp, p_ref, l, k, guard).is_some() {
                        let l_ref = unsafe { l.deref() };
                        let v = if l_ref.key.fin_eq(k) {
                            l_ref.value.clone()
                        } else {
                            None
                        };
                        return BatchOutcome::Get(v);
                    }
                    self.stats.validation_failures();
                }
                BatchOp::Insert(k, v) => match self.insert_attempt_at(k, v, gp, p, l, seq, guard) {
                    AttemptOutcome::Decided(r) => return BatchOutcome::Inserted(r),
                    AttemptOutcome::Published { info, commit } => {
                        if self.finish_published(info, guard) {
                            return BatchOutcome::Inserted(commit);
                        }
                    }
                    AttemptOutcome::Retry => {}
                },
                BatchOp::Upsert(k, v) => match self.upsert_attempt_at(k, v, gp, p, l, seq, guard) {
                    AttemptOutcome::Decided(r) => return BatchOutcome::Upserted(r),
                    AttemptOutcome::Published { info, commit } => {
                        if self.finish_published(info, guard) {
                            return BatchOutcome::Upserted(commit);
                        }
                    }
                    AttemptOutcome::Retry => {
                        // A hot single key can starve the whole batch;
                        // past the gate, route through the contention-
                        // aware singleton driver (which may combine).
                        if failures + 1 >= BATCH_COMBINE_GATE {
                            return BatchOutcome::Upserted(self.upsert_in(k, v, guard));
                        }
                    }
                },
                BatchOp::Delete(k) => match self.delete_attempt_at(k, gp, p, l, seq, guard) {
                    AttemptOutcome::Decided(r) => return BatchOutcome::Removed(r),
                    AttemptOutcome::Published { info, commit } => {
                        if self.finish_published(info, guard) {
                            // The committed delete detached p (the top
                            // frame): drop it so the next op does not
                            // pay a guaranteed validation failure.
                            stack.pop();
                            return BatchOutcome::Removed(commit);
                        }
                    }
                    AttemptOutcome::Retry => {}
                },
            }
            failures += 1;
            stack.retreat(); // resume strictly shallower next time
        }
    }

    /// Resume a search for `k` from the retained prefix (root descent if
    /// the stack is empty), pushing every internal node traversed.
    ///
    /// Frames are popped first until the top frame's `hi` bound covers
    /// `k`; because the batch is processed in ascending key order, the
    /// direction previously taken at every retained ancestor is still
    /// the direction a fresh search for `k` would take (left-descent
    /// ancestors bound `k` from above via `hi`; right-descent ancestors
    /// have keys `≤` an earlier batch key `≤ k`).
    fn descend_shared<'g>(
        &self,
        k: &K,
        seq: u64,
        stack: &mut PrefixStack<K, V>,
        report: &mut BatchReport,
        guard: &'g Guard,
    ) -> SearchTriple<'g, K, V> {
        if stack.is_empty() {
            stack.push(self.root, std::ptr::null());
            report.root_descents += 1;
        } else {
            loop {
                let (_, hi) = stack.top();
                if hi.is_null() {
                    break; // root frame: covers every key
                }
                // SAFETY: `hi` was reached by a descent under this
                // pinned guard; keys are immutable (Observation 1).
                if unsafe { (*hi).key.fin_lt(k) } {
                    break; // k < hi.key: subtree still covers k
                }
                stack.pop();
            }
        }
        stack.resume = stack.frames(); // retreat target on failure
        let (p_raw, mut hi) = stack.top();
        let mut gp: Shared<'g, Node<K, V>> = match stack.parent_of_top() {
            Some(g) => Shared::from(g),
            None => Shared::null(),
        };
        let mut p: Shared<'g, Node<K, V>> = Shared::from(p_raw);
        // SAFETY: frames hold internal nodes read under this guard.
        let p_ref = unsafe { &*p_raw };
        let mut left = p_ref.key.fin_lt(k);
        let mut l = self.read_child(p_ref, left, seq, guard);
        loop {
            // SAFETY: read_child returns non-null reachable nodes.
            let l_ref = unsafe { l.deref() };
            if l_ref.leaf {
                break;
            }
            // Descending left tightens the bound to the node we leave.
            let child_hi = if left { p.as_raw() } else { hi };
            gp = p;
            p = l;
            hi = child_hi;
            stack.push(p.as_raw(), child_hi);
            left = l_ref.key.fin_lt(k);
            l = self.read_child(l_ref, left, seq, guard);
        }
        (gp, p, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn batch_tree(n: u32) -> PnbBst<u32, u32> {
        let t = PnbBst::new();
        for k in 0..n {
            t.insert(k * 2, k * 20);
        }
        t
    }

    #[test]
    fn multi_get_matches_singletons_and_shares_descents() {
        let t = batch_tree(256);
        let h = t.pin();
        let keys: Vec<u32> = (0..512).collect();
        let (got, report) = h.multi_get_reported(&keys);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(got[i], h.get(k), "key {k}");
        }
        assert_eq!(report.ops, 512);
        assert!(
            report.root_descents < report.ops,
            "a sorted batch over a warm tree must share descents: {report:?}"
        );
    }

    #[test]
    fn multi_get_unsorted_input_keeps_submission_order() {
        let t = batch_tree(64);
        let h = t.pin();
        let keys: Vec<u32> = vec![100, 0, 62, 2, 200, 62];
        let got = h.multi_get(&keys);
        assert_eq!(
            got,
            keys.iter().map(|k| h.get(k)).collect::<Vec<_>>(),
            "results must be scattered back to submission order"
        );
    }

    #[test]
    fn apply_batch_matches_btreemap_oracle() {
        let t: PnbBst<u32, u64> = PnbBst::new();
        let h = t.pin();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut x: u64 = 0xFEED_5EED;
        for round in 0..40 {
            let mut ops = Vec::new();
            for i in 0..50u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let k = ((x >> 33) % 48) as u32;
                let v = round * 1000 + i;
                ops.push(match (x >> 13) % 4 {
                    0 => BatchOp::Get(k),
                    1 => BatchOp::Insert(k, v),
                    2 => BatchOp::Upsert(k, v),
                    _ => BatchOp::Delete(k),
                });
            }
            let outs = h.apply_batch(&ops);
            for (op, out) in ops.iter().zip(&outs) {
                match (op, out) {
                    (BatchOp::Get(k), BatchOutcome::Get(v)) => {
                        assert_eq!(*v, model.get(k).copied(), "get {k}");
                    }
                    (BatchOp::Insert(k, v), BatchOutcome::Inserted(ok)) => {
                        assert_eq!(*ok, !model.contains_key(k), "insert {k}");
                        model.entry(*k).or_insert(*v);
                    }
                    (BatchOp::Upsert(k, v), BatchOutcome::Upserted(old)) => {
                        assert_eq!(*old, model.insert(*k, *v), "upsert {k}");
                    }
                    (BatchOp::Delete(k), BatchOutcome::Removed(old)) => {
                        assert_eq!(*old, model.remove(k), "delete {k}");
                    }
                    _ => panic!("outcome variant must match op variant"),
                }
            }
        }
        assert_eq!(t.check_invariants(), model.len());
        let snap: Vec<(u32, u64)> = h.range(..).collect();
        assert_eq!(snap, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_resolve_in_batch_order() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        let h = t.pin();
        let ops = vec![
            BatchOp::Upsert(7, 1),
            BatchOp::Upsert(7, 2),
            BatchOp::Get(7),
            BatchOp::Delete(7),
            BatchOp::Insert(7, 3),
            BatchOp::Upsert(7, 4),
        ];
        let outs = h.apply_batch(&ops);
        assert_eq!(
            outs,
            vec![
                BatchOutcome::Upserted(None),
                BatchOutcome::Upserted(Some(1)),
                BatchOutcome::Get(Some(2)),
                BatchOutcome::Removed(Some(2)),
                BatchOutcome::Inserted(true),
                BatchOutcome::Upserted(Some(3)),
            ]
        );
        assert_eq!(h.get(&7), Some(4));
    }

    #[test]
    fn batch_of_deletes_drains_the_tree() {
        let t = batch_tree(128);
        let h = t.pin();
        let ops: Vec<BatchOp<u32, u32>> = (0..128).map(|k| BatchOp::Delete(k * 2)).collect();
        let (outs, report) = h.apply_batch_reported(&ops);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(*out, BatchOutcome::Removed(Some(i as u32 * 20)));
        }
        assert_eq!(report.ops, 128);
        assert_eq!(t.check_invariants(), 0);
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let t: PnbBst<u32, u32> = PnbBst::new();
        let h = t.pin();
        let (got, r1) = h.multi_get_reported(&[]);
        assert!(got.is_empty());
        assert_eq!(r1, BatchReport::default());
        assert_eq!(r1.ops_per_descent(), 0.0);
        let (outs, r2) = h.apply_batch_reported(&[]);
        assert!(outs.is_empty());
        assert_eq!(r2, BatchReport::default());
    }

    #[test]
    fn batches_interleave_with_scans_and_snapshots() {
        // Phase bumps between ops of one batch must not confuse the
        // per-op fresh phase reads.
        let t: PnbBst<u32, u32> = PnbBst::new();
        let h = t.pin();
        let ops: Vec<BatchOp<u32, u32>> = (0..64).map(|k| BatchOp::Upsert(k, k)).collect();
        h.apply_batch(&ops);
        let snap = t.snapshot();
        let ops2: Vec<BatchOp<u32, u32>> = (0..64).map(|k| BatchOp::Upsert(k, k + 100)).collect();
        let outs = h.apply_batch(&ops2);
        for (k, out) in outs.iter().enumerate() {
            assert_eq!(*out, BatchOutcome::Upserted(Some(k as u32)));
        }
        // The snapshot still sees the pre-batch values.
        for k in 0..64 {
            assert_eq!(snap.get(&k), Some(k));
        }
        assert_eq!(t.check_invariants(), 64);
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = BatchReport {
            ops: 10,
            root_descents: 2,
        };
        a.merge(BatchReport {
            ops: 6,
            root_descents: 1,
        });
        assert_eq!(a.ops, 16);
        assert_eq!(a.root_descents, 3);
        assert!((a.ops_per_descent() - 16.0 / 3.0).abs() < 1e-9);
    }

    /// Liveness regression: retreating only one frame per validation
    /// failure is not enough, because the failed re-descent pushes the
    /// frames it traverses back — from a permanently detached (marked)
    /// resume frame, a pop-one policy re-walks the same dead subtree
    /// forever. Two update-only writers on a small key space reproduced
    /// the livelock within milliseconds; with the retreat-above-resume
    /// rule every retry chain bottoms out at a fresh root descent.
    #[test]
    fn contended_batches_stay_live_across_detached_prefixes() {
        let t: std::sync::Arc<PnbBst<u32, u32>> = std::sync::Arc::new(PnbBst::new());
        std::thread::scope(|s| {
            for tid in 0..2u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    let h = t.pin();
                    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid + 1);
                    for round in 0..1_500u32 {
                        let mut ops = Vec::with_capacity(4);
                        for _ in 0..4 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let k = ((x >> 33) % 64) as u32;
                            ops.push(if (x >> 13) & 1 == 0 {
                                BatchOp::Insert(k, round)
                            } else {
                                BatchOp::Delete(k)
                            });
                        }
                        h.apply_batch(&ops);
                    }
                });
            }
        });
        t.check_invariants();
    }
}
