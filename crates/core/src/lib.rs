//! # pnb-bst — Persistent Non-Blocking BSTs with Wait-Free Range Queries
//!
//! A faithful Rust implementation of
//!
//! > Panagiota Fatourou and Eric Ruppert. *Persistent Non-Blocking Binary
//! > Search Trees Supporting Wait-Free Range Queries.* FORTH ICS TR 470 /
//! > arXiv:1805.04779 (conference version: SPAA 2019).
//!
//! PNB-BST is a leaf-oriented binary search tree built from single-word
//! CAS that provides:
//!
//! * **non-blocking** (lock-free) [`insert`](PnbBst::insert),
//!   [`delete`](PnbBst::delete) and [`get`](PnbBst::get) — updates on
//!   different parts of the tree run fully in parallel, and searches help
//!   only updates pending at the parent/grandparent of the leaf they
//!   reach;
//! * **wait-free** [`range_scan`](PnbBst::range_scan): every range query
//!   finishes in a bounded number of its own steps regardless of
//!   concurrent updates, by traversing an immutable *version* of the
//!   tree;
//! * **persistence**: old versions remain reconstructible while anyone
//!   needs them, exposed through [`Snapshot`]s;
//! * **linearizability** of all operations, and tolerance of any number
//!   of crash failures (a stalled operation is completed by whoever runs
//!   into it).
//!
//! ## How it works (one paragraph)
//!
//! The tree is made persistent by giving every node a `prev` pointer to
//! the node it replaced and a `seq` number stamped from a global phase
//! counter. A range scan atomically increments the counter — closing the
//! current *phase* — and then walks the version of the tree belonging to
//! its phase, skipping newer nodes by following `prev` pointers. Updates
//! coordinate with scans through a handshake: after an update announces
//! itself (flag CAS), it re-reads the counter and pro-actively aborts if
//! a new phase has begun, so no scan can miss an update from an earlier
//! phase. Multi-node atomicity uses the flag/mark + `Info`-object helping
//! protocol of Ellen et al.'s non-blocking BST, which PNB-BST extends.
//!
//! ## Quick start
//!
//! ```
//! use pnb_bst::PnbBst;
//! use std::sync::Arc;
//!
//! let tree = Arc::new(PnbBst::<u64, String>::new());
//!
//! // Concurrent writers...
//! let handles: Vec<_> = (0..4u64)
//!     .map(|t| {
//!         let tree = Arc::clone(&tree);
//!         std::thread::spawn(move || {
//!             for k in (t * 100)..(t * 100 + 100) {
//!                 tree.insert(k, format!("value-{k}"));
//!             }
//!         })
//!     })
//!     .collect();
//!
//! // ...while a wait-free scan runs safely at any time.
//! let _partial = tree.range_scan(&0, &399);
//!
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(tree.len(), 400);
//! assert_eq!(tree.range_scan(&100, &102).len(), 3);
//! ```
//!
//! ## Sessions
//!
//! The per-call methods above pin and drop an epoch guard on every
//! operation — convenient, but measurable overhead in a hot loop. A
//! pinned session amortizes the guard across any number of operations
//! and unlocks the richer API surface (atomic [`Handle::upsert`], lazy
//! [`Handle::range`] over arbitrary `RangeBounds`):
//!
//! ```
//! use pnb_bst::PnbBst;
//!
//! let tree: PnbBst<u64, u64> = PnbBst::new();
//! let h = tree.pin(); // one epoch pin for the whole session
//! for k in 0..100 {
//!     h.insert(k, k * k);
//! }
//! assert_eq!(h.upsert(7, 0), Some(49)); // atomic insert-or-replace
//! let squares: Vec<u64> = h.range(10..20).map(|(_, v)| v).collect();
//! assert_eq!(squares.len(), 10);
//! ```
//!
//! ## Memory reclamation
//!
//! The paper assumes garbage collection; this crate uses
//! [`crossbeam-epoch`](crossbeam_epoch). Nodes are retired exactly when
//! they leave the *current* tree; version-consistency of in-flight
//! operations is preserved because the phase counter is monotonic (see
//! `DESIGN.md` §3 in the repository for the full argument).
//!
//! Allocation is arena-pooled: every `Node`/`Info` comes from a
//! per-thread free list that the epoch collector itself refills (ripe
//! garbage is *recycled* into pools rather than freed), so steady-state
//! update loops bypass the global allocator and read-only operations
//! never allocate at all (`DESIGN.md` §3.5).
//!
//! ## Feature flags
//!
//! * `stats` — cheap atomic counters for helping/abort/CAS-failure
//!   events, for ablation studies, plus the epoch collector's
//!   process-global counters (`collector_stats`, re-exported from the
//!   reclamation layer). Off by default.
//! * `testing-internals` — deterministic fault injection
//!   (`testing::PausedUpdate`): suspend an update right after it
//!   becomes visible, to exercise helping and crash tolerance.
//! * `failpoints` — programmatic failpoint hooks (`failpoint::set`),
//!   used by the flat-combining battery to stall a combiner at a chosen
//!   point. Off by default; zero-cost when disabled.
//!
//! ## Batched operations
//!
//! [`Handle::multi_get`] and [`Handle::apply_batch`] amortize one epoch
//! pin and a shared descent prefix across a key-sorted batch; see
//! `DESIGN.md` §11 for the linearization contract (a batch is a
//! sequence of singleton operations, not a transaction).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod batch;
mod combine;
#[cfg(feature = "failpoints")]
pub mod failpoint;
#[cfg(not(feature = "failpoints"))]
mod failpoint;
mod handle;
mod help;
mod info;
mod iter;
pub mod key;
mod node;
pub mod persist;
mod scan;
mod search;
mod set;
mod snapshot;
mod stats;
mod tree;
mod validate;

#[cfg(feature = "testing-internals")]
pub mod testing;

pub use batch::{BatchOp, BatchOutcome, BatchReport};
pub use handle::Handle;
pub use iter::Range;
pub use key::SKey;
pub use persist::{CheckpointError, CheckpointReport};
pub use set::PnbBstSet;
pub use snapshot::Snapshot;
pub use stats::StatsSnapshot;
pub use tree::PnbBst;

/// Epoch-collector statistics (bags sealed/freed, advance
/// attempts/successes), re-exported from the reclamation layer. The
/// counters are process-global and monotone: assert on deltas.
#[cfg(feature = "stats")]
pub use crossbeam_epoch::{collector_stats, CollectorStats};

#[cfg(feature = "stats")]
pub use arena::arena_stats;
pub use arena::{trim as arena_trim, ArenaStats};

/// Run `passes` seal-and-collect passes of the epoch collector on the
/// current thread. With no other thread pinned this drains every ripe
/// bag (recycling its memory into the arena pools), which is what
/// measurement harnesses need at workload boundaries so that one
/// structure's deferred garbage is not attributed to the next
/// ([`arena_trim`] then releases the pooled footprint itself).
pub fn collector_drain(passes: usize) {
    for _ in 0..passes {
        crossbeam_epoch::pin().flush();
    }
}
