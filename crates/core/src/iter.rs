//! Lazy, wait-free range iteration over the version-`seq` tree.
//!
//! [`Range`] is the iterator form of the paper's `ScanHelper` (Figure 4,
//! lines 134–146): instead of materializing a `Vec` or driving a
//! visitor, it keeps the explicit traversal stack alive between `next`
//! calls and yields one matching leaf at a time, in ascending key order.
//! Nothing proportional to the result set is ever allocated — the only
//! allocation is the descent stack, which is bounded by the tree height.
//!
//! The wait-freedom argument is unchanged: the iterator's phase was
//! closed when it was created (the counter was incremented, or the
//! [`Snapshot`](crate::Snapshot) it reads from closed one earlier), so
//! the subgraph it can traverse is finite and immutable no matter how
//! fast concurrent updates run. Helping on the way down (lines 139–140)
//! happens per `next` call, exactly as it would inside one long scan.

use crossbeam_epoch::Guard;
use std::iter::FusedIterator;
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::Ordering::{Acquire, SeqCst};

use crate::arena::ScanStack;
use crate::info::state;
use crate::key::SKey;
use crate::node::Node;
use crate::scan::{bounds_contain, skip_left, skip_right};
use crate::tree::PnbBst;

/// Clone a `RangeBounds` into owned start/end bounds.
pub(crate) fn cloned_bounds<K: Clone, R: RangeBounds<K>>(range: &R) -> (Bound<K>, Bound<K>) {
    (range.start_bound().cloned(), range.end_bound().cloned())
}

/// A lazy, wait-free iterator over the key/value pairs of one tree
/// version, in ascending key order.
///
/// Created by [`Handle::range`](crate::Handle::range) /
/// [`Handle::iter`](crate::Handle::iter) (which close the current phase,
/// like a scan) or by [`Snapshot::range`](crate::Snapshot::range) /
/// [`Snapshot::iter`](crate::Snapshot::iter) (which reuse the snapshot's
/// already-closed phase). Yields clones; keys and values never alias
/// tree memory, so items stay valid after the iterator, its handle, or
/// its snapshot are gone.
///
/// Dropping the iterator early is free — traversal work is done in
/// `next`, so `take(n)`/`find(..)` pay only for what they consume.
pub struct Range<'a, K, V> {
    tree: &'a PnbBst<K, V>,
    guard: &'a Guard,
    seq: u64,
    lo: Bound<K>,
    hi: Bound<K>,
    /// Descent stack over the version-`seq` tree; the top is the next
    /// subtree to visit, ascending order ⇒ left pushed last. Pooled
    /// (`arena::ScanStack`): warm iteration allocates nothing.
    stack: ScanStack<Node<K, V>>,
}

impl<'a, K, V> Range<'a, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Build an iterator over the version-`seq` tree. The caller is
    /// responsible for `seq` being a *closed* phase (a counter value that
    /// has already been incremented past), which is what makes the
    /// traversal wait-free.
    pub(crate) fn new(
        tree: &'a PnbBst<K, V>,
        guard: &'a Guard,
        seq: u64,
        lo: Bound<K>,
        hi: Bound<K>,
    ) -> Self {
        let mut stack = ScanStack::new();
        stack.push(tree.root);
        Range {
            tree,
            guard,
            seq,
            lo,
            hi,
            stack,
        }
    }

    /// The phase (sequence number) this iterator reads.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl<K, V> Iterator for Range<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        while let Some(ptr) = self.stack.pop() {
            // SAFETY: every stacked pointer is the root or came from
            // `read_child` under `self.guard`, which outlives `self`.
            let node = unsafe { &*ptr };
            if node.leaf {
                // Line 137: {node.key} ∩ bounds — sentinels never match.
                if let SKey::Fin(k) = &node.key {
                    if bounds_contain(&self.lo.as_ref(), &self.hi.as_ref(), k) {
                        let v = node.value.clone().expect("finite leaf has a value");
                        return Some((k.clone(), v));
                    }
                }
                continue;
            }
            // Lines 139–140: help in-progress updates before descending
            // so this phase's cut stays consistent. SeqCst load: the
            // scanner half of the handshake pair (`load_update_scan`).
            let w = node.load_update_scan(self.guard);
            // SAFETY: update words point at live Infos while pinned.
            // Acquire: pairs with the AcqRel state transitions.
            let st = unsafe { (*w.info).state.load(Acquire) };
            if st == state::UNDECIDED || st == state::TRY {
                self.tree.stats.scan_helps();
                self.tree.help(w.info, self.guard);
            }
            // Lines 141–144: descend into the version-seq children that
            // may intersect the bounds; right first so left pops first.
            if !skip_right(&self.hi.as_ref(), &node.key) {
                self.stack.push(
                    self.tree
                        .read_child(node, false, self.seq, self.guard)
                        .as_raw(),
                );
            }
            if !skip_left(&self.lo.as_ref(), &node.key) {
                self.stack.push(
                    self.tree
                        .read_child(node, true, self.seq, self.guard)
                        .as_raw(),
                );
            }
        }
        None
    }
}

impl<K, V> FusedIterator for Range<'_, K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
}

impl<K, V> std::fmt::Debug for Range<'_, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Range")
            .field("seq", &self.seq)
            .field("pending_subtrees", &self.stack.len())
            .finish()
    }
}

impl<K, V> PnbBst<K, V>
where
    K: Ord + Clone + 'static,
    V: Clone + 'static,
{
    /// Start a lazy range scan under a caller-provided guard: closes the
    /// current phase (fetch-and-increment, paper lines 130–131) and
    /// returns the iterator over its version of the tree.
    pub(crate) fn range_in<'a>(
        &'a self,
        lo: Bound<K>,
        hi: Bound<K>,
        guard: &'a Guard,
    ) -> Range<'a, K, V> {
        self.stats.scans();
        // sc-ok: phase close — the scanner half of the handshake pair
        // (§4.1); see `PnbBst::range_scan_with`.
        let seq = self.counter.fetch_add(1, SeqCst); // sc-ok: phase close
        Range::new(self, guard, seq, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;

    fn populated() -> PnbBst<i64, i64> {
        let t = PnbBst::new();
        for k in [8, 3, 10, 1, 6, 14, 4, 7, 13] {
            assert!(t.insert(k, k * 100));
        }
        t
    }

    #[test]
    fn lazy_range_matches_eager_scan() {
        let t = populated();
        let guard = &epoch::pin();
        let lazy: Vec<(i64, i64)> = t
            .range_in(Bound::Included(3), Bound::Included(10), guard)
            .collect();
        assert_eq!(lazy, t.range_scan(&3, &10));
    }

    #[test]
    fn iterator_is_lazy_and_fused() {
        let t = populated();
        let guard = &epoch::pin();
        let mut it = t.range_in(Bound::Unbounded, Bound::Unbounded, guard);
        assert_eq!(it.next().map(|(k, _)| k), Some(1));
        assert_eq!(it.next().map(|(k, _)| k), Some(3));
        // Abandon early: remaining work is simply never done.
        drop(it);
        let mut it = t.range_in(Bound::Included(100), Bound::Unbounded, guard);
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None); // fused
    }

    #[test]
    fn each_lazy_range_closes_a_phase() {
        let t = populated();
        let before = t.phase();
        let guard = &epoch::pin();
        let _ = t.range_in(Bound::Unbounded, Bound::Unbounded, guard);
        let _ = t.range_in(Bound::Unbounded, Bound::Unbounded, guard);
        assert_eq!(t.phase(), before + 2);
    }

    #[test]
    fn inverted_bounds_yield_empty_without_panicking() {
        let t = populated();
        let guard = &epoch::pin();
        let got: Vec<_> = t
            .range_in(Bound::Included(10), Bound::Included(3), guard)
            .collect();
        assert!(got.is_empty());
        let got: Vec<_> = t
            .range_in(Bound::Excluded(5), Bound::Excluded(5), guard)
            .collect();
        assert!(got.is_empty());
    }
}
