//! [`PnbBstSet`]: the paper's exact interface — a concurrent *set* with
//! `Insert`, `Delete`, `Find` and `RangeScan` — as a thin wrapper over
//! the keyed map [`PnbBst`].

use std::ops::Bound;

use crate::snapshot::Snapshot;
use crate::stats::StatsSnapshot;
use crate::tree::PnbBst;

/// A linearizable concurrent ordered set with non-blocking updates and
/// wait-free range queries (the paper's PNB-BST, set flavour).
///
/// # Example
///
/// ```
/// use pnb_bst::PnbBstSet;
///
/// let set: PnbBstSet<i32> = PnbBstSet::new();
/// assert!(set.insert(3));
/// assert!(set.insert(1));
/// assert!(!set.insert(3)); // already present
/// assert!(set.contains(&1));
/// assert_eq!(set.range_scan(&0, &10), vec![1, 3]);
/// assert!(set.delete(&1));
/// assert!(!set.contains(&1));
/// ```
pub struct PnbBstSet<K> {
    map: PnbBst<K, ()>,
}

impl<K> Default for PnbBstSet<K>
where
    K: Ord + Clone + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K> PnbBstSet<K>
where
    K: Ord + Clone + 'static,
{
    /// Create an empty set.
    pub fn new() -> Self {
        PnbBstSet { map: PnbBst::new() }
    }

    /// Insert `key`; `true` iff it was absent (paper `Insert`).
    pub fn insert(&self, key: K) -> bool {
        self.map.insert(key, ())
    }

    /// Remove `key`; `true` iff it was present (paper `Delete`).
    pub fn delete(&self, key: &K) -> bool {
        self.map.delete(key)
    }

    /// Membership test (paper `Find`).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains(key)
    }

    /// Wait-free range query over `[lo, hi]`, ascending (paper
    /// `RangeScan`).
    pub fn range_scan(&self, lo: &K, hi: &K) -> Vec<K> {
        let mut out = Vec::new();
        self.map
            .range_scan_with(Bound::Included(lo), Bound::Included(hi), |k, _| {
                out.push(k.clone())
            });
        out
    }

    /// Visitor-style wait-free range query with arbitrary bounds.
    pub fn range_scan_with<F: FnMut(&K)>(&self, lo: Bound<&K>, hi: Bound<&K>, mut f: F) {
        self.map.range_scan_with(lo, hi, |k, _| f(k));
    }

    /// Count keys in `[lo, hi]` (wait-free).
    pub fn scan_count(&self, lo: &K, hi: &K) -> usize {
        self.map.scan_count(lo, hi)
    }

    /// All keys, ascending (wait-free snapshot).
    pub fn to_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.range_scan_with(Bound::Unbounded, Bound::Unbounded, |k| out.push(k.clone()));
        out
    }

    /// Linearizable cardinality (O(n) wait-free scan).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Linearizable emptiness test.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Point-in-time snapshot; see [`PnbBst::snapshot`].
    pub fn snapshot(&self) -> Snapshot<'_, K, ()> {
        self.map.snapshot()
    }

    /// Current phase number (diagnostics).
    pub fn phase(&self) -> u64 {
        self.map.phase()
    }

    /// Operation statistics (zeros unless the `stats` feature is on).
    pub fn stats(&self) -> StatsSnapshot {
        self.map.stats()
    }

    /// Access the underlying map (e.g. for snapshot APIs that need it).
    pub fn as_map(&self) -> &PnbBst<K, ()> {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let s: PnbBstSet<u16> = PnbBstSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_vec(), vec![5, 9]);
        assert!(s.delete(&5));
        assert!(!s.delete(&5));
        assert_eq!(s.to_vec(), vec![9]);
    }

    #[test]
    fn set_range_scan() {
        let s: PnbBstSet<i32> = PnbBstSet::new();
        for k in (0..50).step_by(5) {
            s.insert(k);
        }
        assert_eq!(s.range_scan(&10, &30), vec![10, 15, 20, 25, 30]);
        assert_eq!(s.scan_count(&10, &30), 5);
        let mut collected = Vec::new();
        s.range_scan_with(Bound::Excluded(&10), Bound::Excluded(&30), |k| {
            collected.push(*k)
        });
        assert_eq!(collected, vec![15, 20, 25]);
    }

    #[test]
    fn set_snapshot() {
        let s: PnbBstSet<u8> = PnbBstSet::new();
        s.insert(1);
        s.insert(2);
        let snap = s.snapshot();
        s.delete(&1);
        assert_eq!(snap.keys(), vec![1, 2]);
        assert_eq!(s.to_vec(), vec![2]);
    }
}
