//! Optional operation statistics (compiled in with the `stats` feature).
//!
//! Used by the E7 ablation benchmark to observe the paper's coordination
//! mechanisms at work: how often the handshake (§4.1) aborts an attempt,
//! how often operations help one another, and how often freeze CAS steps
//! fail. The counters are shared atomics updated with `Relaxed` ordering;
//! they are feature-gated so they can never perturb the scalability
//! experiments (E1–E6), which build without `stats`.

#[cfg(feature = "stats")]
use crossbeam_utils::CachePadded;
#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of the statistics counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Attempts (iterations of the retry loop) across all updates.
    pub update_attempts: u64,
    /// Attempts aborted by the handshake check (`Counter != seq` in `Help`).
    pub handshake_aborts: u64,
    /// Attempts aborted because a later freeze CAS failed.
    pub freeze_aborts: u64,
    /// Calls to `Help` made on behalf of *another* operation.
    pub helps: u64,
    /// Freeze CAS steps that failed.
    pub freeze_cas_failures: u64,
    /// Validation failures (stale leaf / frozen neighbourhood) causing retry.
    pub validation_failures: u64,
    /// Range scans executed.
    pub scans: u64,
    /// In-progress operations helped by scans specifically.
    pub scan_helps: u64,
    /// Upserts completed through a flat-combining drain pass (counted
    /// per record at the moment a combiner marks it done).
    pub combined_ops: u64,
}

impl StatsSnapshot {
    /// Total aborted attempts (handshake + freeze failures).
    pub fn total_aborts(&self) -> u64 {
        self.handshake_aborts + self.freeze_aborts
    }
}

/// Internal counter block. With the `stats` feature disabled this is a
/// zero-sized type and all recording methods compile to nothing.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    #[cfg(feature = "stats")]
    update_attempts: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    handshake_aborts: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    freeze_aborts: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    helps: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    freeze_cas_failures: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    validation_failures: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    scans: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    scan_helps: CachePadded<AtomicU64>,
    #[cfg(feature = "stats")]
    combined_ops: CachePadded<AtomicU64>,
}

macro_rules! bump_impl {
    ($($name:ident),* $(,)?) => {
        $(
            #[cfg(feature = "stats")]
            #[inline]
            pub(crate) fn $name(&self) {
                self.$name.fetch_add(1, Ordering::Relaxed);
            }
            #[cfg(not(feature = "stats"))]
            #[inline(always)]
            pub(crate) fn $name(&self) {}
        )*
    };
}

impl Stats {
    bump_impl!(
        update_attempts,
        handshake_aborts,
        freeze_aborts,
        helps,
        freeze_cas_failures,
        validation_failures,
        scans,
        scan_helps,
    );

    /// Record `n` operations completed by one combining drain pass.
    #[cfg(feature = "stats")]
    #[inline]
    pub(crate) fn combined_ops_n(&self, n: u64) {
        self.combined_ops.fetch_add(n, Ordering::Relaxed);
    }
    #[cfg(not(feature = "stats"))]
    #[inline(always)]
    pub(crate) fn combined_ops_n(&self, _n: u64) {}

    /// Read all counters. Without the `stats` feature this returns zeros.
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        #[cfg(feature = "stats")]
        {
            StatsSnapshot {
                update_attempts: self.update_attempts.load(Ordering::Relaxed),
                handshake_aborts: self.handshake_aborts.load(Ordering::Relaxed),
                freeze_aborts: self.freeze_aborts.load(Ordering::Relaxed),
                helps: self.helps.load(Ordering::Relaxed),
                freeze_cas_failures: self.freeze_cas_failures.load(Ordering::Relaxed),
                validation_failures: self.validation_failures.load(Ordering::Relaxed),
                scans: self.scans.load(Ordering::Relaxed),
                scan_helps: self.scan_helps.load(Ordering::Relaxed),
                combined_ops: self.combined_ops.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            StatsSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_defaults_to_zero() {
        let s = Stats::default();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counters_record() {
        let s = Stats::default();
        s.update_attempts();
        s.update_attempts();
        s.handshake_aborts();
        s.scans();
        let snap = s.snapshot();
        assert_eq!(snap.update_attempts, 2);
        assert_eq!(snap.handshake_aborts, 1);
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.total_aborts(), 1);
    }
}
